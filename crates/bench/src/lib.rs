//! # ofl-bench
//!
//! The experiment harness: one binary per figure/table of the paper
//! (`fig4_model_performance`, `fig5_transaction_costs`, `fig6_loo`,
//! `table1_payments`, `fig7_time_distribution`) plus four ablations
//! (`ablation_oneshot_vs_fedavg`, `ablation_storage_cost`,
//! `ablation_aggregators`, `ablation_incentives`), and Criterion
//! micro-benchmarks of the substrate hot paths.
//!
//! Each binary prints a paper-style text table and appends a JSON record to
//! `target/experiments/<name>.json` for machine consumption.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::path::PathBuf;

/// Where experiment JSON records are written.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes a JSON record for an experiment.
pub fn write_record<T: Serialize>(name: &str, record: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(record).expect("serializable record");
    std::fs::write(&path, json).expect("write experiment record");
    println!("\n[record written to {}]", path.display());
}

/// Writes the durable perf-trajectory record `BENCH_<name>.json` at the
/// repository root, where CI uploads it as an artifact — one file per
/// bench, overwritten per run, so the repo carries a machine-readable
/// performance trajectory instead of anecdotes.
pub fn write_bench<T: Serialize>(name: &str, record: &T) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../BENCH_{name}.json"));
    let json = serde_json::to_string_pretty(record).expect("serializable bench record");
    std::fs::write(&path, json).expect("write bench record");
    println!("[bench record written to {}]", path.display());
}

/// Prints a section header.
pub fn header(title: &str) {
    let bar = "=".repeat(title.len().max(8));
    println!("\n{bar}\n{title}\n{bar}");
}

/// Renders an ASCII bar for a unit-interval value.
pub fn bar(fraction: f64, width: usize) -> String {
    let filled = ((fraction.clamp(0.0, 1.0)) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_renders_bounds() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(2.0, 4), "####"); // clamped
    }

    #[test]
    fn experiments_dir_exists() {
        assert!(experiments_dir().is_dir());
    }
}
