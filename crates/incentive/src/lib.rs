//! # ofl-incentive
//!
//! Incentive mechanisms for OFL-W3's Step 7: after aggregating the retrieved
//! models, the model buyer "assesses each participant's marginal
//! contribution, like Leave-one-out (LOO), to pay the calculated tokens".
//!
//! A **value function** `v(S)` maps a participant subset to a utility
//! (test accuracy of the model aggregated from that subset). This crate
//! computes contribution scores from any value function:
//!
//! - [`loo_scores`]: the paper's mechanism — `v(N) − v(N∖{i})`.
//! - [`shapley_monte_carlo`]: sampled Shapley values, the fairness-axiomatic
//!   alternative benchmarked in ablation A4.
//!
//! and converts scores into on-chain payments with
//! [`allocate_payments`], reproducing Table 1.

#![forbid(unsafe_code)]

use ofl_primitives::u256::U256;
use rand::seq::SliceRandom;
use rand::Rng;

/// A per-participant leave-one-out report.
#[derive(Debug, Clone)]
pub struct LooReport {
    /// Utility of the full coalition, `v(N)`.
    pub full_value: f64,
    /// `drop_value[i] = v(N ∖ {i})` — the series plotted in the paper's
    /// Fig 6 (high drop-value ⇒ participant i mattered little).
    pub drop_values: Vec<f64>,
    /// Marginal contributions `max(0, v(N) − v(N∖{i}))`… raw (can be
    /// negative before clamping).
    pub contributions: Vec<f64>,
}

/// Computes leave-one-out contributions over `n` participants.
///
/// `value` is called with participant-index subsets; it is invoked once with
/// the full set and once per leave-one-out subset (n+1 evaluations total).
pub fn loo_scores(n: usize, mut value: impl FnMut(&[usize]) -> f64) -> LooReport {
    let full: Vec<usize> = (0..n).collect();
    let full_value = value(&full);
    let mut drop_values = Vec::with_capacity(n);
    let mut contributions = Vec::with_capacity(n);
    for i in 0..n {
        let subset: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        let v = value(&subset);
        drop_values.push(v);
        contributions.push(full_value - v);
    }
    LooReport {
        full_value,
        drop_values,
        contributions,
    }
}

/// Monte-Carlo Shapley estimation: averages marginal contributions over
/// `samples` random permutations. Costs `samples × n` value evaluations.
pub fn shapley_monte_carlo(
    n: usize,
    samples: usize,
    rng: &mut impl Rng,
    mut value: impl FnMut(&[usize]) -> f64,
) -> Vec<f64> {
    let mut scores = vec![0.0f64; n];
    let empty_value = value(&[]);
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..samples {
        order.shuffle(rng);
        let mut prefix: Vec<usize> = Vec::with_capacity(n);
        let mut prev = empty_value;
        for &i in &order {
            prefix.push(i);
            // Keep the subset sorted so value functions may cache by key.
            let mut key = prefix.clone();
            key.sort_unstable();
            let cur = value(&key);
            scores[i] += cur - prev;
            prev = cur;
        }
    }
    for s in &mut scores {
        *s /= samples as f64;
    }
    scores
}

/// Errors from payment allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaymentError {
    /// No participants.
    NoParticipants,
}

impl core::fmt::Display for PaymentError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PaymentError::NoParticipants => write!(f, "no participants to pay"),
        }
    }
}

impl std::error::Error for PaymentError {}

/// Splits `budget` (wei) across participants proportionally to their
/// non-negative contribution scores — the computation behind the paper's
/// Table 1.
///
/// Negative scores clamp to zero (a participant cannot owe money). If every
/// score is ≤ 0, the budget splits uniformly (everyone supplied a model in
/// good faith). Integer division dust (at most `n−1` wei) is assigned to the
/// highest scorer so the payments sum exactly to `budget`.
pub fn allocate_payments(scores: &[f64], budget: &U256) -> Result<Vec<U256>, PaymentError> {
    if scores.is_empty() {
        return Err(PaymentError::NoParticipants);
    }
    let clamped: Vec<f64> = scores.iter().map(|&s| s.max(0.0)).collect();
    let total: f64 = clamped.iter().sum();
    let weights: Vec<f64> = if total <= 0.0 {
        vec![1.0 / scores.len() as f64; scores.len()]
    } else {
        clamped.iter().map(|&s| s / total).collect()
    };
    // Scale weights to wei using a fixed-point factor to stay in integers.
    const SCALE: u64 = 1_000_000_000; // 1e9 fixed-point
    let mut payments: Vec<U256> = weights
        .iter()
        .map(|&w| {
            let scaled = (w * SCALE as f64).round() as u64;
            budget
                .wrapping_mul(&U256::from(scaled))
                .div_rem(&U256::from(SCALE))
                .0
        })
        .collect();
    // Fix rounding so Σ payments == budget exactly.
    let paid = payments
        .iter()
        .fold(U256::ZERO, |acc, p| acc.wrapping_add(p));
    let top = weights
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    if paid <= *budget {
        let dust = budget.wrapping_sub(&paid);
        payments[top] = payments[top].wrapping_add(&dust);
    } else {
        let excess = paid.wrapping_sub(budget);
        payments[top] = payments[top]
            .checked_sub(&excess)
            .expect("top payment covers rounding excess");
    }
    Ok(payments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_primitives::wei_per_eth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Additive test game: v(S) = Σ w_i. Shapley and LOO both equal w_i.
    fn additive(weights: &'static [f64]) -> impl FnMut(&[usize]) -> f64 {
        move |s: &[usize]| s.iter().map(|&i| weights[i]).sum()
    }

    #[test]
    fn loo_on_additive_game_recovers_weights() {
        let report = loo_scores(4, additive(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(report.full_value, 10.0);
        assert_eq!(report.contributions, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(report.drop_values, vec![9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn loo_detects_useless_participant() {
        // Participant 2 contributes nothing (the paper's "model 7").
        let value = |s: &[usize]| s.iter().filter(|&&i| i != 2).count() as f64;
        let report = loo_scores(4, value);
        assert_eq!(report.contributions[2], 0.0);
        assert!(report.contributions[0] > 0.0);
        // Dropping the useless one leaves the full value: max drop-value.
        let max = report
            .drop_values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(report.drop_values[2], max);
    }

    #[test]
    fn shapley_additive_game_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        let scores = shapley_monte_carlo(3, 200, &mut rng, additive(&[5.0, 1.0, 2.0]));
        for (got, want) in scores.iter().zip(&[5.0, 1.0, 2.0]) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn shapley_efficiency_axiom() {
        // Σ Shapley = v(N) − v(∅) holds per-permutation, hence exactly.
        let value = |s: &[usize]| (s.len() * s.len()) as f64; // superadditive
        let mut rng = StdRng::seed_from_u64(1);
        let scores = shapley_monte_carlo(5, 50, &mut rng, value);
        let total: f64 = scores.iter().sum();
        assert!((total - 25.0).abs() < 1e-9);
    }

    #[test]
    fn shapley_symmetric_players_converge_equal() {
        // v(S) = |S| → every player's Shapley value is exactly 1.
        let value = |s: &[usize]| s.len() as f64;
        let mut rng = StdRng::seed_from_u64(2);
        let scores = shapley_monte_carlo(6, 100, &mut rng, value);
        for s in scores {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn shapley_interaction_game() {
        // v({0,1}) = 1, all other coalitions containing neither pair = 0:
        // complement game → Shapley = 0.5 each.
        let value = |s: &[usize]| {
            if s.contains(&0) && s.contains(&1) {
                1.0
            } else {
                0.0
            }
        };
        let mut rng = StdRng::seed_from_u64(3);
        let scores = shapley_monte_carlo(2, 2000, &mut rng, value);
        assert!((scores[0] - 0.5).abs() < 0.05);
        assert!((scores[1] - 0.5).abs() < 0.05);
    }

    #[test]
    fn payments_sum_to_budget_exactly() {
        let budget = wei_per_eth().div_rem(&U256::from(100u64)).0; // 0.01 ETH
        let scores = vec![0.05, 0.11, 0.02, 0.0, 0.30];
        let payments = allocate_payments(&scores, &budget).unwrap();
        let total = payments
            .iter()
            .fold(U256::ZERO, |acc, p| acc.wrapping_add(p));
        assert_eq!(total, budget);
        // Monotone in scores.
        assert!(payments[4] > payments[1]);
        assert!(payments[1] > payments[0]);
        assert_eq!(payments[3], U256::ZERO);
    }

    #[test]
    fn negative_scores_clamped() {
        let budget = U256::from(1_000_000u64);
        let payments = allocate_payments(&[-1.0, 1.0, 3.0], &budget).unwrap();
        assert_eq!(payments[0], U256::ZERO);
        assert_eq!(payments[1].wrapping_add(&payments[2]), budget);
        assert!(payments[2] > payments[1]);
    }

    #[test]
    fn all_zero_scores_split_uniformly() {
        let budget = U256::from(999u64);
        let payments = allocate_payments(&[0.0, 0.0, 0.0], &budget).unwrap();
        let total = payments
            .iter()
            .fold(U256::ZERO, |acc, p| acc.wrapping_add(p));
        assert_eq!(total, budget);
        // Within 1 wei of each other.
        let min = payments.iter().min().unwrap();
        let max = payments.iter().max().unwrap();
        assert!(max.wrapping_sub(min) <= U256::from(333u64));
    }

    #[test]
    fn empty_participants_rejected() {
        assert_eq!(
            allocate_payments(&[], &U256::from(1u64)).unwrap_err(),
            PaymentError::NoParticipants
        );
    }

    #[test]
    fn paper_scale_payment_table_shape() {
        // Ten owners, 0.01 ETH budget, contributions shaped like Fig 6
        // (models 6–9 contribute least). Payments must order accordingly and
        // sum to the budget, like Table 1.
        let budget = wei_per_eth().div_rem(&U256::from(100u64)).0;
        let contributions = [
            0.016, 0.011, 0.013, 0.016, 0.014, 0.012, 0.005, 0.005, 0.004, 0.004,
        ];
        let payments = allocate_payments(&contributions, &budget).unwrap();
        let total = payments
            .iter()
            .fold(U256::ZERO, |acc, p| acc.wrapping_add(p));
        assert_eq!(total, budget);
        // Strong contributors earn ~3× the weak ones, echoing Table 1's
        // 0.00162 vs 0.00041 spread.
        assert!(payments[0] > payments[8].wrapping_mul(&U256::from(3u64)));
    }
}
