//! Property-based tests for the incentive mechanisms: allocation exactness,
//! monotonicity, Shapley axioms on random additive games, and LOO/Shapley
//! agreement where they provably coincide.

use ofl_incentive::{allocate_payments, loo_scores, shapley_monte_carlo};
use ofl_primitives::u256::U256;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn payments_always_sum_to_budget(
        scores in proptest::collection::vec(-1.0f64..1.0, 1..20),
        budget_raw in 1u64..u64::MAX,
    ) {
        let budget = U256::from(budget_raw);
        let payments = allocate_payments(&scores, &budget).unwrap();
        prop_assert_eq!(payments.len(), scores.len());
        let total = payments.iter().fold(U256::ZERO, |acc, p| acc.wrapping_add(p));
        prop_assert_eq!(total, budget);
    }

    #[test]
    fn payments_monotone_in_scores(
        scores in proptest::collection::vec(0.0f64..1.0, 2..15),
        budget_raw in 1_000_000u64..u64::MAX,
    ) {
        let budget = U256::from(budget_raw);
        let payments = allocate_payments(&scores, &budget).unwrap();
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if scores[i] > scores[j] + 1e-9 {
                    prop_assert!(
                        payments[i] >= payments[j],
                        "score {} > {} but payment {:?} < {:?}",
                        scores[i], scores[j], payments[i], payments[j]
                    );
                }
            }
        }
    }

    #[test]
    fn zero_score_gets_zero_unless_everyone_is_zero(
        positive in proptest::collection::vec(0.01f64..1.0, 1..10),
        budget_raw in 1_000u64..u64::MAX,
    ) {
        let mut scores = positive;
        scores.push(0.0);
        let payments = allocate_payments(&scores, &U256::from(budget_raw)).unwrap();
        prop_assert_eq!(*payments.last().unwrap(), U256::ZERO);
    }

    #[test]
    fn loo_and_shapley_agree_on_additive_games(
        weights in proptest::collection::vec(0.0f64..10.0, 1..8),
        seed in any::<u64>(),
    ) {
        let n = weights.len();
        let w1 = weights.clone();
        let report = loo_scores(n, move |s| s.iter().map(|&i| w1[i]).sum());
        let mut rng = StdRng::seed_from_u64(seed);
        let w2 = weights.clone();
        let shapley = shapley_monte_carlo(n, 30, &mut rng, move |s| {
            s.iter().map(|&i| w2[i]).sum()
        });
        for i in 0..n {
            prop_assert!((report.contributions[i] - weights[i]).abs() < 1e-9);
            prop_assert!((shapley[i] - weights[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn shapley_efficiency_holds_for_any_game(
        table_seed in any::<u64>(),
        n in 2usize..6,
        samples in 5usize..20,
    ) {
        // Random monotone-ish game from a hash of the subset.
        let value = move |s: &[usize]| -> f64 {
            let mut h = table_seed;
            for &i in s {
                h = h.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64);
            }
            s.len() as f64 + (h % 1000) as f64 / 1000.0
        };
        let empty = value(&[]);
        let full: Vec<usize> = (0..n).collect();
        let total_value = value(&full);
        let mut rng = StdRng::seed_from_u64(table_seed ^ 0xabcd);
        let shapley = shapley_monte_carlo(n, samples, &mut rng, value);
        let sum: f64 = shapley.iter().sum();
        // Efficiency is exact per permutation, so exact for the average.
        prop_assert!((sum - (total_value - empty)).abs() < 1e-9);
    }

    #[test]
    fn loo_null_player_scores_zero(
        weights in proptest::collection::vec(0.1f64..5.0, 1..6),
        seed in any::<u64>(),
    ) {
        // Player `n` contributes nothing to any coalition.
        let n = weights.len();
        let value = move |s: &[usize]| -> f64 {
            s.iter().filter(|&&i| i < n).map(|&i| weights[i]).sum()
        };
        let report = loo_scores(n + 1, value);
        prop_assert!(report.contributions[n].abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(seed);
        let value2 = {
            let weights = report.contributions.clone();
            let _ = weights;
            move |s: &[usize]| -> f64 {
                s.iter().filter(|&&i| i < n).map(|&i| 1.0 + i as f64).sum()
            }
        };
        let shapley = shapley_monte_carlo(n + 1, 10, &mut rng, value2);
        prop_assert!(shapley[n].abs() < 1e-12);
    }
}
