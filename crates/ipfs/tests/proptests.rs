//! Property-based tests over content addressing: CID/DAG roundtrip laws,
//! chunking reconstruction, swarm fetch fidelity, and GC safety.

use ofl_ipfs::cid::{Cid, Codec};
use ofl_ipfs::dag::{build_dag, chunk, DagNode, Link};
use ofl_ipfs::swarm::{IpfsNode, Swarm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cid_text_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256), v1 in any::<bool>()) {
        let cid = if v1 {
            Cid::v1_of(Codec::Raw, &data)
        } else {
            Cid::v0_of(&data)
        };
        let s = cid.to_string_form();
        prop_assert_eq!(Cid::parse(&s).unwrap(), cid.clone());
        prop_assert_eq!(Cid::from_bytes(&cid.to_bytes()).unwrap(), cid);
    }

    #[test]
    fn chunks_reassemble(data in proptest::collection::vec(any::<u8>(), 0..4096), size in 1usize..512) {
        let pieces = chunk(&data, size);
        let total: Vec<u8> = pieces.concat();
        prop_assert_eq!(total, data.clone());
        if !data.is_empty() {
            for p in &pieces[..pieces.len() - 1] {
                prop_assert_eq!(p.len(), size);
            }
            prop_assert!(pieces.last().unwrap().len() <= size);
        }
    }

    #[test]
    fn dag_cat_is_identity(
        data in proptest::collection::vec(any::<u8>(), 0..8192),
        chunk_size in 16usize..1024,
    ) {
        let mut node = IpfsNode::new("prop");
        let added = node.add_chunked(&data, chunk_size);
        prop_assert_eq!(node.cat_local(&added.root).unwrap(), data.clone());
        prop_assert_eq!(added.file_size as usize, data.len());
    }

    #[test]
    fn same_content_same_cid_different_content_different_cid(
        a in proptest::collection::vec(any::<u8>(), 1..2048),
        flip in any::<prop::sample::Index>(),
    ) {
        let mut node1 = IpfsNode::new("n1");
        let mut node2 = IpfsNode::new("n2");
        let cid_a1 = node1.add_chunked(&a, 256).root;
        let cid_a2 = node2.add_chunked(&a, 256).root;
        prop_assert_eq!(&cid_a1, &cid_a2);
        let mut b = a.clone();
        let i = flip.index(b.len());
        b[i] ^= 0x01;
        let cid_b = node1.add_chunked(&b, 256).root;
        prop_assert_ne!(cid_a1, cid_b);
    }

    #[test]
    fn fetch_returns_exact_bytes(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        chunk_size in 32usize..512,
    ) {
        let mut swarm = Swarm::spawn("p", 3);
        let root = swarm.node_mut(0).add_chunked(&data, chunk_size).root;
        let (got, stats) = swarm.fetch(2, &root).unwrap();
        prop_assert_eq!(got, data.clone());
        prop_assert!(stats.bytes_fetched >= data.len() as u64);
        // Refetch is free.
        let (_, stats2) = swarm.fetch(2, &root).unwrap();
        prop_assert_eq!(stats2.blocks_fetched, 0);
    }

    #[test]
    fn dag_node_codec_roundtrip(
        sizes in proptest::collection::vec(0u64..1_000_000, 0..20),
    ) {
        let node = DagNode {
            links: sizes
                .iter()
                .enumerate()
                .map(|(i, &size)| Link {
                    cid: Cid::v1_of(Codec::Raw, &i.to_be_bytes()),
                    size,
                })
                .collect(),
        };
        let decoded = DagNode::from_bytes(&node.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &node);
        prop_assert_eq!(decoded.total_size(), sizes.iter().sum::<u64>());
    }

    #[test]
    fn gc_never_breaks_pinned_content(
        keep in proptest::collection::vec(any::<u8>(), 1..4096),
        drop_data in proptest::collection::vec(any::<u8>(), 1..4096),
    ) {
        let mut node = IpfsNode::new("gc");
        let kept = node.add_chunked(&keep, 128).root;
        let dropped = node.add_chunked(&drop_data, 128).root;
        node.store_mut().unpin(&dropped);
        node.store_mut().gc();
        // Pinned content fully readable after GC.
        prop_assert_eq!(node.cat_local(&kept).unwrap(), keep.clone());
        // Unpinned content gone (unless it shares every block with kept).
        if kept != dropped {
            prop_assert!(node.cat_local(&dropped).is_err() || keep == drop_data);
        }
    }

    #[test]
    fn build_dag_block_count_formula(
        len in 0usize..100_000,
        chunk_size in prop::sample::select(vec![256usize, 1024, 4096]),
    ) {
        let data = vec![0xaau8; len];
        let built = build_dag(&data, chunk_size);
        let leaves = if len == 0 { 1 } else { len.div_ceil(chunk_size) };
        if leaves == 1 {
            prop_assert_eq!(built.blocks.len(), 1);
            prop_assert_eq!(built.root.version(), 0);
        } else {
            // leaves + interior nodes; interior count ≥ 1.
            prop_assert!(built.blocks.len() > leaves);
            prop_assert_eq!(built.root.version(), 1);
        }
    }
}
