//! IPFS nodes and the swarm: add/cat/pin plus a bitswap-style block
//! exchange between peers.
//!
//! Networking is simulated: a fetch walks the DAG breadth-first, asking
//! connected peers for each missing block, and returns [`FetchStats`]
//! (blocks, bytes, want-list rounds) that `ofl-netsim` converts into wall
//! time for the paper's Fig 7 overhead breakdown.

use crate::blockstore::{Blockstore, BlockstoreError};
use crate::cid::{Cid, Codec};
use crate::dag::{build_dag, DagNode, CHUNK_SIZE};
use std::collections::HashMap;

/// Result of adding a file to a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddResult {
    /// Root CID (what gets sent to the smart contract).
    pub root: Cid,
    /// Number of blocks the DAG comprises.
    pub blocks: usize,
    /// Total bytes stored (payload + DAG overhead).
    pub bytes_stored: u64,
    /// Original file size.
    pub file_size: u64,
}

/// Transfer statistics from a swarm fetch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Blocks copied from peers (0 if everything was local).
    pub blocks_fetched: usize,
    /// Bytes copied from peers.
    pub bytes_fetched: u64,
    /// Want-list round trips (≥ DAG depth when remote).
    pub rounds: usize,
    /// Which peer served each block count, for diagnostics.
    pub providers: HashMap<String, usize>,
}

/// Errors from node/swarm operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpfsError {
    /// Block missing locally and from every connected peer.
    BlockUnavailable(Cid),
    /// DAG node failed to parse during traversal.
    CorruptDag(Cid),
    /// Underlying store rejected a block.
    Store(BlockstoreError),
    /// Peer id not found in the swarm.
    UnknownPeer(String),
}

impl From<BlockstoreError> for IpfsError {
    fn from(e: BlockstoreError) -> Self {
        IpfsError::Store(e)
    }
}

impl core::fmt::Display for IpfsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IpfsError::BlockUnavailable(cid) => write!(f, "no provider for block {cid}"),
            IpfsError::CorruptDag(cid) => write!(f, "corrupt DAG node {cid}"),
            IpfsError::Store(e) => write!(f, "blockstore: {e}"),
            IpfsError::UnknownPeer(p) => write!(f, "unknown peer {p}"),
        }
    }
}

impl std::error::Error for IpfsError {}

/// One IPFS node: a peer id and a block store.
#[derive(Debug, Clone)]
pub struct IpfsNode {
    /// Peer identifier (human-readable in this simulator).
    pub peer_id: String,
    store: Blockstore,
}

impl IpfsNode {
    /// Creates a node.
    pub fn new(peer_id: impl Into<String>) -> IpfsNode {
        IpfsNode {
            peer_id: peer_id.into(),
            store: Blockstore::new(),
        }
    }

    /// Adds a file: chunks, builds the DAG, stores and pins everything.
    pub fn add(&mut self, data: &[u8]) -> AddResult {
        self.add_chunked(data, CHUNK_SIZE)
    }

    /// Adds with an explicit chunk size (for tests and ablations).
    pub fn add_chunked(&mut self, data: &[u8], chunk_size: usize) -> AddResult {
        let dag = build_dag(data, chunk_size);
        let mut bytes_stored = 0;
        for block in &dag.blocks {
            bytes_stored += block.data.len() as u64;
            self.store
                .put(block.cid.clone(), block.data.clone())
                .expect("freshly built blocks verify");
        }
        self.store.pin(dag.root.clone());
        AddResult {
            root: dag.root,
            blocks: dag.blocks.len(),
            bytes_stored,
            file_size: dag.file_size,
        }
    }

    /// Reassembles a file from local blocks only.
    pub fn cat_local(&self, root: &Cid) -> Result<Vec<u8>, IpfsError> {
        let mut out = Vec::new();
        self.cat_into(root, &mut out)?;
        Ok(out)
    }

    fn cat_into(&self, cid: &Cid, out: &mut Vec<u8>) -> Result<(), IpfsError> {
        let data = self
            .store
            .get(cid)
            .ok_or_else(|| IpfsError::BlockUnavailable(cid.clone()))?;
        if cid.version() == 1 && cid.codec() == Codec::DagPb {
            let node = DagNode::from_bytes(data).map_err(|_| IpfsError::CorruptDag(cid.clone()))?;
            let links = node.links;
            for link in links {
                self.cat_into(&link.cid, out)?;
            }
        } else {
            out.extend_from_slice(data);
        }
        Ok(())
    }

    /// Whether the node holds a block.
    pub fn has_block(&self, cid: &Cid) -> bool {
        self.store.has(cid)
    }

    /// Direct store access (pin management, GC).
    pub fn store_mut(&mut self) -> &mut Blockstore {
        &mut self.store
    }

    /// Read-only store access.
    pub fn store(&self) -> &Blockstore {
        &self.store
    }
}

/// A set of connected IPFS nodes (full mesh, as in the paper's single
/// campus network).
#[derive(Debug, Default)]
pub struct Swarm {
    nodes: Vec<IpfsNode>,
}

impl Swarm {
    /// An empty swarm.
    pub fn new() -> Swarm {
        Swarm::default()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, node: IpfsNode) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Spawns `count` nodes named `prefix-i`.
    pub fn spawn(prefix: &str, count: usize) -> Swarm {
        let mut swarm = Swarm::new();
        for i in 0..count {
            swarm.add_node(IpfsNode::new(format!("{prefix}-{i}")));
        }
        swarm
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the swarm has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node access by index.
    pub fn node(&self, index: usize) -> &IpfsNode {
        &self.nodes[index]
    }

    /// Mutable node access by index.
    pub fn node_mut(&mut self, index: usize) -> &mut IpfsNode {
        &mut self.nodes[index]
    }

    /// Finds a node index by peer id.
    pub fn find(&self, peer_id: &str) -> Result<usize, IpfsError> {
        self.nodes
            .iter()
            .position(|n| n.peer_id == peer_id)
            .ok_or_else(|| IpfsError::UnknownPeer(peer_id.to_string()))
    }

    /// Bitswap-style fetch: node `requester` obtains the full DAG under
    /// `root`, copying missing blocks from whichever peer has them. Returns
    /// the reassembled file and transfer statistics.
    pub fn fetch(
        &mut self,
        requester: usize,
        root: &Cid,
    ) -> Result<(Vec<u8>, FetchStats), IpfsError> {
        let mut stats = FetchStats::default();
        // Breadth-first over the DAG: each level is one want-list round.
        let mut frontier = vec![root.clone()];
        while !frontier.is_empty() {
            stats.rounds += 1;
            let mut next = Vec::new();
            for cid in frontier {
                if !self.nodes[requester].store.has(&cid) {
                    let (provider_idx, data) = self
                        .locate(requester, &cid)
                        .ok_or_else(|| IpfsError::BlockUnavailable(cid.clone()))?;
                    stats.blocks_fetched += 1;
                    stats.bytes_fetched += data.len() as u64;
                    let provider_id = self.nodes[provider_idx].peer_id.clone();
                    *stats.providers.entry(provider_id).or_insert(0) += 1;
                    self.nodes[requester].store.put(cid.clone(), data)?;
                }
                // Expand interior nodes.
                if cid.version() == 1 && cid.codec() == Codec::DagPb {
                    let data = self.nodes[requester].store.get(&cid).expect("just stored");
                    let node = DagNode::from_bytes(data)
                        .map_err(|_| IpfsError::CorruptDag(cid.clone()))?;
                    next.extend(node.links.into_iter().map(|l| l.cid));
                }
            }
            frontier = next;
        }
        // Pin the fetched root so GC keeps it, then reassemble.
        self.nodes[requester].store.pin(root.clone());
        let data = self.nodes[requester].cat_local(root)?;
        Ok((data, stats))
    }

    fn locate(&self, requester: usize, cid: &Cid) -> Option<(usize, Vec<u8>)> {
        for (i, node) in self.nodes.iter().enumerate() {
            if i == requester {
                continue;
            }
            if let Some(data) = node.store.get(cid) {
                return Some((i, data.to_vec()));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_then_local_cat() {
        let mut node = IpfsNode::new("solo");
        let data = vec![0xabu8; 700 * 1024];
        let added = node.add(&data);
        assert_eq!(added.file_size, data.len() as u64);
        assert_eq!(added.blocks, 4); // 3 leaves + root
        assert_eq!(node.cat_local(&added.root).unwrap(), data);
    }

    #[test]
    fn fetch_across_swarm() {
        let mut swarm = Swarm::spawn("peer", 3);
        let data = vec![0x11u8; 317 * 1024]; // paper's model size
        let added = swarm.node_mut(0).add(&data);
        let (fetched, stats) = swarm.fetch(2, &added.root).unwrap();
        assert_eq!(fetched, data);
        assert_eq!(stats.blocks_fetched, 3);
        assert!(stats.bytes_fetched >= data.len() as u64);
        assert_eq!(stats.rounds, 2); // root round + leaves round
        assert_eq!(stats.providers.get("peer-0"), Some(&3));
        // Second fetch is fully local: zero transfer.
        let (_, stats2) = swarm.fetch(2, &added.root).unwrap();
        assert_eq!(stats2.blocks_fetched, 0);
        assert_eq!(stats2.bytes_fetched, 0);
    }

    #[test]
    fn fetch_single_block_file() {
        let mut swarm = Swarm::spawn("peer", 2);
        let added = swarm.node_mut(0).add(b"tiny model");
        let (data, stats) = swarm.fetch(1, &added.root).unwrap();
        assert_eq!(data, b"tiny model");
        assert_eq!(stats.blocks_fetched, 1);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn missing_block_is_error() {
        let mut swarm = Swarm::spawn("peer", 2);
        let phantom = Cid::v0_of(b"never added");
        assert!(matches!(
            swarm.fetch(1, &phantom),
            Err(IpfsError::BlockUnavailable(_))
        ));
    }

    #[test]
    fn fetch_prefers_any_provider() {
        // Block lives on two nodes; fetch succeeds and reports one of them.
        let mut swarm = Swarm::spawn("peer", 4);
        let data = b"replicated".to_vec();
        let root = swarm.node_mut(0).add(&data).root;
        swarm.node_mut(1).add(&data);
        let (_, stats) = swarm.fetch(3, &root).unwrap();
        assert_eq!(stats.providers.values().sum::<usize>(), 1);
    }

    #[test]
    fn ten_owners_one_buyer_scenario() {
        // The paper's demo: 10 model owners add models; the buyer fetches
        // all of them.
        let mut swarm = Swarm::spawn("owner", 10);
        let buyer = swarm.add_node(IpfsNode::new("buyer"));
        let mut roots = Vec::new();
        for i in 0..10 {
            let model = vec![i as u8; 317 * 1024];
            roots.push(swarm.node_mut(i).add(&model).root);
        }
        let mut total_bytes = 0;
        for (i, root) in roots.iter().enumerate() {
            let (data, stats) = swarm.fetch(buyer, root).unwrap();
            assert_eq!(data, vec![i as u8; 317 * 1024]);
            total_bytes += stats.bytes_fetched;
        }
        // ~10 × 317 KB plus DAG overhead.
        assert!(total_bytes > 10 * 317 * 1024);
        assert!(total_bytes < 11 * 317 * 1024);
    }

    #[test]
    fn find_by_peer_id() {
        let swarm = Swarm::spawn("n", 3);
        assert_eq!(swarm.find("n-1").unwrap(), 1);
        assert!(matches!(
            swarm.find("ghost"),
            Err(IpfsError::UnknownPeer(_))
        ));
    }

    #[test]
    fn gc_after_unpin_frees_space() {
        let mut node = IpfsNode::new("gc");
        let added = node.add(&vec![9u8; 400 * 1024]);
        let before = node.store().total_bytes();
        node.store_mut().unpin(&added.root);
        let collected = node.store_mut().gc();
        assert_eq!(collected, added.blocks);
        assert!(node.store().total_bytes() < before);
    }
}
