//! The block store: a content-addressed key-value store with integrity
//! verification on insert, plus pinning and mark-and-sweep garbage
//! collection.

use crate::cid::Cid;
use crate::dag::DagNode;
use std::collections::{HashMap, HashSet, VecDeque};

/// Errors from block-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockstoreError {
    /// Data does not hash to the claimed CID.
    IntegrityMismatch,
    /// Block not present.
    NotFound(Cid),
}

impl core::fmt::Display for BlockstoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BlockstoreError::IntegrityMismatch => write!(f, "block data does not match CID"),
            BlockstoreError::NotFound(cid) => write!(f, "block {cid} not found"),
        }
    }
}

impl std::error::Error for BlockstoreError {}

/// An in-memory content-addressed block store.
#[derive(Debug, Default, Clone)]
pub struct Blockstore {
    blocks: HashMap<Cid, Vec<u8>>,
    pins: HashSet<Cid>,
}

impl Blockstore {
    /// An empty store.
    pub fn new() -> Blockstore {
        Blockstore::default()
    }

    /// Inserts a block after verifying `data` hashes to `cid`.
    pub fn put(&mut self, cid: Cid, data: Vec<u8>) -> Result<(), BlockstoreError> {
        if !cid.hash().verify(&data) {
            return Err(BlockstoreError::IntegrityMismatch);
        }
        self.blocks.insert(cid, data);
        Ok(())
    }

    /// Fetches a block.
    pub fn get(&self, cid: &Cid) -> Option<&[u8]> {
        self.blocks.get(cid).map(Vec::as_slice)
    }

    /// Presence check.
    pub fn has(&self, cid: &Cid) -> bool {
        self.blocks.contains_key(cid)
    }

    /// Number of blocks stored.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.blocks.values().map(|b| b.len() as u64).sum()
    }

    /// Pins a root CID, protecting it (and, transitively, its DAG) from GC.
    pub fn pin(&mut self, cid: Cid) {
        self.pins.insert(cid);
    }

    /// Removes a pin.
    pub fn unpin(&mut self, cid: &Cid) -> bool {
        self.pins.remove(cid)
    }

    /// Whether a CID is directly pinned.
    pub fn is_pinned(&self, cid: &Cid) -> bool {
        self.pins.contains(cid)
    }

    /// All pinned roots.
    pub fn pins(&self) -> impl Iterator<Item = &Cid> {
        self.pins.iter()
    }

    /// Mark-and-sweep GC: removes every block not reachable from a pin.
    /// Returns the number of blocks collected.
    pub fn gc(&mut self) -> usize {
        let mut live: HashSet<Cid> = HashSet::new();
        let mut queue: VecDeque<Cid> = self.pins.iter().cloned().collect();
        while let Some(cid) = queue.pop_front() {
            if !live.insert(cid.clone()) {
                continue;
            }
            if let Some(data) = self.blocks.get(&cid) {
                // Interior nodes reference children; leaves don't parse.
                if cid.codec() == crate::cid::Codec::DagPb && cid.version() == 1 {
                    if let Ok(node) = DagNode::from_bytes(data) {
                        for link in node.links {
                            queue.push_back(link.cid);
                        }
                    }
                }
            }
        }
        let before = self.blocks.len();
        self.blocks.retain(|cid, _| live.contains(cid));
        before - self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{build_dag, CHUNK_SIZE};

    #[test]
    fn put_get_roundtrip() {
        let mut store = Blockstore::new();
        let cid = Cid::v0_of(b"data");
        store.put(cid.clone(), b"data".to_vec()).unwrap();
        assert_eq!(store.get(&cid), Some(&b"data"[..]));
        assert!(store.has(&cid));
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 4);
    }

    #[test]
    fn integrity_enforced() {
        let mut store = Blockstore::new();
        let cid = Cid::v0_of(b"honest");
        assert_eq!(
            store.put(cid, b"tampered".to_vec()),
            Err(BlockstoreError::IntegrityMismatch)
        );
        assert!(store.is_empty());
    }

    #[test]
    fn gc_keeps_pinned_dag() {
        let mut store = Blockstore::new();
        // A multi-block file, pinned.
        let keep = vec![1u8; 300 * 1024];
        let kept_dag = build_dag(&keep, CHUNK_SIZE);
        for b in &kept_dag.blocks {
            store.put(b.cid.clone(), b.data.clone()).unwrap();
        }
        store.pin(kept_dag.root.clone());
        // An unpinned file.
        let drop_data = vec![2u8; 300 * 1024];
        let dropped_dag = build_dag(&drop_data, CHUNK_SIZE);
        for b in &dropped_dag.blocks {
            store.put(b.cid.clone(), b.data.clone()).unwrap();
        }
        let collected = store.gc();
        assert_eq!(collected, dropped_dag.blocks.len());
        for b in &kept_dag.blocks {
            assert!(store.has(&b.cid), "pinned DAG block must survive GC");
        }
        for b in &dropped_dag.blocks {
            assert!(!store.has(&b.cid));
        }
    }

    #[test]
    fn unpin_then_gc_collects() {
        let mut store = Blockstore::new();
        let cid = Cid::v0_of(b"ephemeral");
        store.put(cid.clone(), b"ephemeral".to_vec()).unwrap();
        store.pin(cid.clone());
        assert_eq!(store.gc(), 0);
        assert!(store.unpin(&cid));
        assert!(!store.unpin(&cid)); // idempotent
        assert_eq!(store.gc(), 1);
        assert!(!store.has(&cid));
    }

    #[test]
    fn gc_on_empty_store() {
        let mut store = Blockstore::new();
        assert_eq!(store.gc(), 0);
    }
}
