//! Content Identifiers (CIDs), versions 0 and 1.
//!
//! - **CIDv0**: a bare sha2-256 multihash, rendered base58btc (`Qm…`,
//!   46 characters). This is what the paper's Step 3 refers to as the
//!   "32-byte Content Identifier".
//! - **CIDv1**: `<version><content-codec><multihash>`, rendered as
//!   multibase base32 (`b…`).

use crate::multihash::{Multihash, MultihashError};
use ofl_primitives::{base32, base58, varint};

/// Content codecs we use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Codec {
    /// Raw binary leaf block.
    Raw,
    /// DAG node (stands in for dag-pb).
    DagPb,
}

impl Codec {
    /// Multicodec number.
    pub fn code(&self) -> u64 {
        match self {
            Codec::Raw => 0x55,
            Codec::DagPb => 0x70,
        }
    }

    /// Parses a multicodec number.
    pub fn from_code(code: u64) -> Option<Codec> {
        match code {
            0x55 => Some(Codec::Raw),
            0x70 => Some(Codec::DagPb),
            _ => None,
        }
    }
}

/// A CID: version, codec, multihash.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cid {
    version: u8,
    codec: Codec,
    hash: Multihash,
}

/// Errors from CID parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CidError {
    /// Not valid base58/base32 text.
    BadEncoding,
    /// Binary structure malformed.
    BadStructure,
    /// Multihash malformed.
    Multihash(MultihashError),
    /// Unknown codec.
    UnknownCodec(u64),
    /// CIDv0 must be a 32-byte sha2-256 multihash.
    InvalidV0,
    /// Unsupported CID version.
    UnsupportedVersion(u64),
}

impl From<MultihashError> for CidError {
    fn from(e: MultihashError) -> Self {
        CidError::Multihash(e)
    }
}

impl core::fmt::Display for CidError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CidError::BadEncoding => write!(f, "invalid multibase text"),
            CidError::BadStructure => write!(f, "malformed CID structure"),
            CidError::Multihash(e) => write!(f, "multihash: {e}"),
            CidError::UnknownCodec(c) => write!(f, "unknown codec {c:#x}"),
            CidError::InvalidV0 => write!(f, "CIDv0 must be a sha2-256 multihash"),
            CidError::UnsupportedVersion(v) => write!(f, "unsupported CID version {v}"),
        }
    }
}

impl std::error::Error for CidError {}

impl Cid {
    /// Builds a CIDv0 (requires sha2-256).
    pub fn new_v0(hash: Multihash) -> Result<Cid, CidError> {
        if hash.code() != 0x12 || hash.digest().len() != 32 {
            return Err(CidError::InvalidV0);
        }
        Ok(Cid {
            version: 0,
            codec: Codec::DagPb,
            hash,
        })
    }

    /// Builds a CIDv1.
    pub fn new_v1(codec: Codec, hash: Multihash) -> Cid {
        Cid {
            version: 1,
            codec,
            hash,
        }
    }

    /// CIDv0 of `data` (sha2-256). The standard "add a file" identifier.
    pub fn v0_of(data: &[u8]) -> Cid {
        Cid::new_v0(Multihash::sha2_256(data)).expect("sha2-256 is valid for v0")
    }

    /// CIDv1 of `data` with the given codec.
    pub fn v1_of(codec: Codec, data: &[u8]) -> Cid {
        Cid::new_v1(codec, Multihash::sha2_256(data))
    }

    /// CID version (0 or 1).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Content codec.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// The multihash.
    pub fn hash(&self) -> &Multihash {
        &self.hash
    }

    /// The 32-byte digest (what OFL-W3 sends to the smart contract).
    pub fn digest(&self) -> &[u8] {
        self.hash.digest()
    }

    /// Binary form: v0 = bare multihash; v1 = varint version ‖ codec ‖ mh.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self.version {
            0 => self.hash.to_bytes(),
            _ => {
                let mut out = Vec::new();
                varint::encode_into(1, &mut out);
                varint::encode_into(self.codec.code(), &mut out);
                out.extend_from_slice(&self.hash.to_bytes());
                out
            }
        }
    }

    /// Parses the binary form.
    pub fn from_bytes(input: &[u8]) -> Result<Cid, CidError> {
        // CIDv0: exactly a sha2-256 multihash (0x12 0x20 …, 34 bytes).
        if input.len() == 34 && input[0] == 0x12 && input[1] == 0x20 {
            return Cid::new_v0(Multihash::from_bytes(input)?);
        }
        let (version, n1) = varint::decode(input).map_err(|_| CidError::BadStructure)?;
        if version != 1 {
            return Err(CidError::UnsupportedVersion(version));
        }
        let (codec_num, n2) = varint::decode(&input[n1..]).map_err(|_| CidError::BadStructure)?;
        let codec = Codec::from_code(codec_num).ok_or(CidError::UnknownCodec(codec_num))?;
        let hash = Multihash::from_bytes(&input[n1 + n2..])?;
        Ok(Cid {
            version: 1,
            codec,
            hash,
        })
    }

    /// Textual form: base58btc for v0 (`Qm…`), multibase base32 for v1
    /// (`b…`).
    pub fn to_string_form(&self) -> String {
        match self.version {
            0 => base58::encode(&self.to_bytes()),
            _ => format!("b{}", base32::encode(&self.to_bytes())),
        }
    }

    /// Parses the textual form.
    pub fn parse(s: &str) -> Result<Cid, CidError> {
        if s.len() == 46 && s.starts_with("Qm") {
            let bytes = base58::decode(s).map_err(|_| CidError::BadEncoding)?;
            return Cid::from_bytes(&bytes);
        }
        if let Some(rest) = s.strip_prefix('b') {
            let bytes = base32::decode(rest).map_err(|_| CidError::BadEncoding)?;
            return Cid::from_bytes(&bytes);
        }
        Err(CidError::BadEncoding)
    }
}

impl core::fmt::Display for Cid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.to_string_form())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v0_shape() {
        let cid = Cid::v0_of(b"hello ipfs");
        let s = cid.to_string_form();
        assert!(s.starts_with("Qm"), "{s}");
        assert_eq!(s.len(), 46);
        assert_eq!(cid.digest().len(), 32);
    }

    #[test]
    fn v0_text_roundtrip() {
        let cid = Cid::v0_of(b"model-bytes");
        let parsed = Cid::parse(&cid.to_string_form()).unwrap();
        assert_eq!(parsed, cid);
    }

    #[test]
    fn v1_text_roundtrip() {
        for codec in [Codec::Raw, Codec::DagPb] {
            let cid = Cid::v1_of(codec, b"block data");
            let s = cid.to_string_form();
            assert!(s.starts_with('b'), "{s}");
            let parsed = Cid::parse(&s).unwrap();
            assert_eq!(parsed, cid);
        }
    }

    #[test]
    fn binary_roundtrip() {
        let v0 = Cid::v0_of(b"a");
        assert_eq!(Cid::from_bytes(&v0.to_bytes()).unwrap(), v0);
        let v1 = Cid::v1_of(Codec::Raw, b"a");
        assert_eq!(Cid::from_bytes(&v1.to_bytes()).unwrap(), v1);
    }

    #[test]
    fn distinct_content_distinct_cids() {
        assert_ne!(Cid::v0_of(b"model-1"), Cid::v0_of(b"model-2"));
        assert_ne!(Cid::v1_of(Codec::Raw, b"x"), Cid::v1_of(Codec::DagPb, b"x"));
    }

    #[test]
    fn v0_requires_sha256() {
        use crate::multihash::HashCode;
        let ident = Multihash::digest_of(HashCode::Identity, b"short");
        assert_eq!(Cid::new_v0(ident), Err(CidError::InvalidV0));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Cid::parse("not-a-cid").is_err());
        assert!(Cid::parse("Qm000000000000000000000000000000000000000000000").is_err());
        assert!(Cid::parse("").is_err());
        assert!(Cid::parse("bZZZZ").is_err());
    }

    #[test]
    fn known_digest_matches_sha256() {
        let cid = Cid::v0_of(b"hello");
        assert_eq!(cid.digest(), &ofl_primitives::sha256(b"hello"));
    }
}
