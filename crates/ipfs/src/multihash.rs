//! Multihash: self-describing hash digests (`<code><length><digest>`), per
//! the multiformats specification. OFL-W3 only needs `sha2-256` (code 0x12),
//! but `identity` (0x00) is included for inline blocks and tests.

use ofl_primitives::sha256;
use ofl_primitives::varint;

/// Supported hash functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashCode {
    /// Identity: digest = payload (for tiny inline data).
    Identity,
    /// SHA2-256, the IPFS default.
    Sha2_256,
}

impl HashCode {
    /// The multicodec number.
    pub fn code(&self) -> u64 {
        match self {
            HashCode::Identity => 0x00,
            HashCode::Sha2_256 => 0x12,
        }
    }

    /// Parses a multicodec number.
    pub fn from_code(code: u64) -> Option<HashCode> {
        match code {
            0x00 => Some(HashCode::Identity),
            0x12 => Some(HashCode::Sha2_256),
            _ => None,
        }
    }
}

/// A parsed multihash.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Multihash {
    code: u64,
    digest: Vec<u8>,
}

/// Errors from decoding multihashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultihashError {
    /// Varint header malformed.
    BadVarint,
    /// Digest shorter than the declared length.
    Truncated,
    /// Hash code not in our supported set.
    UnsupportedCode(u64),
}

impl core::fmt::Display for MultihashError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MultihashError::BadVarint => write!(f, "malformed varint header"),
            MultihashError::Truncated => write!(f, "digest truncated"),
            MultihashError::UnsupportedCode(c) => write!(f, "unsupported hash code {c:#x}"),
        }
    }
}

impl std::error::Error for MultihashError {}

impl Multihash {
    /// Hashes `data` with the given function.
    pub fn digest_of(code: HashCode, data: &[u8]) -> Multihash {
        let digest = match code {
            HashCode::Identity => data.to_vec(),
            HashCode::Sha2_256 => sha256(data).to_vec(),
        };
        Multihash {
            code: code.code(),
            digest,
        }
    }

    /// SHA2-256 convenience constructor.
    pub fn sha2_256(data: &[u8]) -> Multihash {
        Self::digest_of(HashCode::Sha2_256, data)
    }

    /// The hash-function code.
    pub fn code(&self) -> u64 {
        self.code
    }

    /// The raw digest bytes.
    pub fn digest(&self) -> &[u8] {
        &self.digest
    }

    /// Serializes to `<varint code><varint len><digest>`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.digest.len());
        varint::encode_into(self.code, &mut out);
        varint::encode_into(self.digest.len() as u64, &mut out);
        out.extend_from_slice(&self.digest);
        out
    }

    /// Parses from the front of `input`; returns the multihash and bytes
    /// consumed.
    pub fn from_bytes_prefix(input: &[u8]) -> Result<(Multihash, usize), MultihashError> {
        let (code, n1) = varint::decode(input).map_err(|_| MultihashError::BadVarint)?;
        HashCode::from_code(code).ok_or(MultihashError::UnsupportedCode(code))?;
        let (len, n2) = varint::decode(&input[n1..]).map_err(|_| MultihashError::BadVarint)?;
        let start = n1 + n2;
        let digest = input
            .get(start..start + len as usize)
            .ok_or(MultihashError::Truncated)?;
        Ok((
            Multihash {
                code,
                digest: digest.to_vec(),
            },
            start + len as usize,
        ))
    }

    /// Parses consuming the entire input.
    pub fn from_bytes(input: &[u8]) -> Result<Multihash, MultihashError> {
        let (mh, used) = Self::from_bytes_prefix(input)?;
        if used != input.len() {
            return Err(MultihashError::Truncated);
        }
        Ok(mh)
    }

    /// Verifies that `data` hashes to this multihash.
    pub fn verify(&self, data: &[u8]) -> bool {
        match HashCode::from_code(self.code) {
            Some(code) => Multihash::digest_of(code, data) == *self,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_primitives::hex::to_hex;

    #[test]
    fn sha256_multihash_layout() {
        let mh = Multihash::sha2_256(b"hello");
        let bytes = mh.to_bytes();
        assert_eq!(bytes[0], 0x12);
        assert_eq!(bytes[1], 0x20); // 32-byte digest
        assert_eq!(bytes.len(), 34);
        assert_eq!(
            to_hex(&bytes[2..]),
            "2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824"
        );
    }

    #[test]
    fn roundtrip() {
        let mh = Multihash::sha2_256(b"roundtrip me");
        let parsed = Multihash::from_bytes(&mh.to_bytes()).unwrap();
        assert_eq!(parsed, mh);
    }

    #[test]
    fn prefix_parse_reports_consumed() {
        let mut buf = Multihash::sha2_256(b"x").to_bytes();
        let full = buf.len();
        buf.extend_from_slice(&[0xaa, 0xbb]);
        let (_, used) = Multihash::from_bytes_prefix(&buf).unwrap();
        assert_eq!(used, full);
        assert!(Multihash::from_bytes(&buf).is_err()); // trailing bytes
    }

    #[test]
    fn verify_detects_tamper() {
        let mh = Multihash::sha2_256(b"model weights");
        assert!(mh.verify(b"model weights"));
        assert!(!mh.verify(b"model weightz"));
    }

    #[test]
    fn identity_hash() {
        let mh = Multihash::digest_of(HashCode::Identity, b"tiny");
        assert_eq!(mh.digest(), b"tiny");
        assert!(mh.verify(b"tiny"));
        let parsed = Multihash::from_bytes(&mh.to_bytes()).unwrap();
        assert_eq!(parsed, mh);
    }

    #[test]
    fn unsupported_code_rejected() {
        // 0x13 = sha2-512 (unsupported here)
        let buf = [0x13u8, 0x01, 0xff];
        assert_eq!(
            Multihash::from_bytes(&buf),
            Err(MultihashError::UnsupportedCode(0x13))
        );
    }

    #[test]
    fn truncated_digest_rejected() {
        let buf = [0x12u8, 0x20, 0x01, 0x02];
        assert_eq!(Multihash::from_bytes(&buf), Err(MultihashError::Truncated));
    }
}
