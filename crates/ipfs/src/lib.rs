//! # ofl-ipfs
//!
//! An InterPlanetary File System simulator for the OFL-W3 reproduction.
//! Models are shared by content address: adding a file yields a CID whose
//! digest is what OFL-W3 records on-chain (Steps 2–4 of the paper's
//! workflow), and any peer can later fetch and integrity-verify the content
//! (Steps 5–6).
//!
//! - [`multihash`]: self-describing digests (sha2-256).
//! - [`cid`]: CIDv0 (`Qm…`, base58btc) and CIDv1 (`b…`, base32).
//! - [`dag`]: 256 KiB chunking and the balanced Merkle DAG.
//! - [`blockstore`]: verified content-addressed storage, pinning, GC.
//! - [`swarm`]: nodes and bitswap-style exchange with transfer statistics.
//!
//! ## Example
//!
//! ```
//! use ofl_ipfs::swarm::{IpfsNode, Swarm};
//!
//! let mut swarm = Swarm::new();
//! let owner = swarm.add_node(IpfsNode::new("model-owner"));
//! let buyer = swarm.add_node(IpfsNode::new("model-buyer"));
//!
//! let model_bytes = vec![0u8; 317 * 1024];
//! let added = swarm.node_mut(owner).add(&model_bytes);
//! println!("share this CID on-chain: {}", added.root);
//!
//! let (fetched, stats) = swarm.fetch(buyer, &added.root).unwrap();
//! assert_eq!(fetched, model_bytes);
//! assert!(stats.bytes_fetched > 0);
//! ```

#![forbid(unsafe_code)]

pub mod blockstore;
pub mod cid;
pub mod dag;
pub mod multihash;
pub mod swarm;

pub use cid::Cid;
pub use swarm::{AddResult, FetchStats, IpfsNode, Swarm};
