//! Chunking and the Merkle DAG.
//!
//! Files larger than the chunk size (256 KiB, the IPFS default) are split
//! into raw leaf blocks; a balanced tree of DAG nodes links them together
//! (fanout 174, matching go-ipfs). The 317 KB models of the paper therefore
//! become two leaves plus one root node.
//!
//! DAG nodes use a compact custom serialization (varint-framed) rather than
//! dag-pb protobuf; the framing is self-describing and deterministic, which
//! is all content addressing requires.

use crate::cid::{Cid, Codec};
use ofl_primitives::varint;

/// IPFS default chunk size: 256 KiB.
pub const CHUNK_SIZE: usize = 256 * 1024;

/// go-ipfs default DAG fanout.
pub const FANOUT: usize = 174;

/// Splits data into fixed-size chunks (the trailing chunk may be short).
/// Empty input yields a single empty chunk so that every file has a CID.
pub fn chunk(data: &[u8], chunk_size: usize) -> Vec<&[u8]> {
    assert!(chunk_size > 0, "chunk size must be positive");
    if data.is_empty() {
        return vec![&[]];
    }
    data.chunks(chunk_size).collect()
}

/// A link from a DAG node to a child.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Child CID.
    pub cid: Cid,
    /// Total size of the subtree under the child (file bytes).
    pub size: u64,
}

/// A DAG node: an interior tree node carrying links (leaves are raw blocks,
/// not nodes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DagNode {
    /// Ordered child links.
    pub links: Vec<Link>,
}

/// Errors from DAG node decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Framing malformed.
    BadFraming,
    /// Embedded CID malformed.
    BadCid,
}

impl core::fmt::Display for DagError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DagError::BadFraming => write!(f, "malformed DAG node framing"),
            DagError::BadCid => write!(f, "malformed CID in DAG link"),
        }
    }
}

impl std::error::Error for DagError {}

impl DagNode {
    /// Total file size represented by this node.
    pub fn total_size(&self) -> u64 {
        self.links.iter().map(|l| l.size).sum()
    }

    /// Deterministic serialization:
    /// `varint(n_links) (varint(cid_len) cid varint(size))*`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        varint::encode_into(self.links.len() as u64, &mut out);
        for link in &self.links {
            let cid_bytes = link.cid.to_bytes();
            varint::encode_into(cid_bytes.len() as u64, &mut out);
            out.extend_from_slice(&cid_bytes);
            varint::encode_into(link.size, &mut out);
        }
        out
    }

    /// Parses a serialized node.
    pub fn from_bytes(input: &[u8]) -> Result<DagNode, DagError> {
        let (n, mut pos) = varint::decode(input).map_err(|_| DagError::BadFraming)?;
        let mut links = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (cid_len, used) =
                varint::decode(&input[pos..]).map_err(|_| DagError::BadFraming)?;
            pos += used;
            let end = pos + cid_len as usize;
            let cid_bytes = input.get(pos..end).ok_or(DagError::BadFraming)?;
            let cid = Cid::from_bytes(cid_bytes).map_err(|_| DagError::BadCid)?;
            pos = end;
            let (size, used) = varint::decode(&input[pos..]).map_err(|_| DagError::BadFraming)?;
            pos += used;
            links.push(Link { cid, size });
        }
        if pos != input.len() {
            return Err(DagError::BadFraming);
        }
        Ok(DagNode { links })
    }

    /// The CID of this node (CIDv1, dag codec).
    pub fn cid(&self) -> Cid {
        Cid::v1_of(Codec::DagPb, &self.to_bytes())
    }
}

/// One block produced by [`build_dag`]: its CID and raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockData {
    /// The block's CID.
    pub cid: Cid,
    /// The block payload (chunk bytes or serialized DAG node).
    pub data: Vec<u8>,
}

/// Result of building a DAG from a file.
#[derive(Debug, Clone)]
pub struct BuiltDag {
    /// Root CID — CIDv0 for single-chunk files (matching `ipfs add`'s
    /// classic output), CIDv1 for multi-block files.
    pub root: Cid,
    /// Every block, leaves first, root last.
    pub blocks: Vec<BlockData>,
    /// Original file length.
    pub file_size: u64,
}

/// Builds the balanced DAG for `data`.
pub fn build_dag(data: &[u8], chunk_size: usize) -> BuiltDag {
    let chunks = chunk(data, chunk_size);
    if chunks.len() == 1 {
        // Single block: CIDv0 of the raw content, exactly one block.
        let cid = Cid::v0_of(chunks[0]);
        return BuiltDag {
            root: cid.clone(),
            blocks: vec![BlockData {
                cid,
                data: chunks[0].to_vec(),
            }],
            file_size: data.len() as u64,
        };
    }
    let mut blocks = Vec::new();
    // Leaf layer.
    let mut layer: Vec<Link> = chunks
        .iter()
        .map(|c| {
            let cid = Cid::v1_of(Codec::Raw, c);
            blocks.push(BlockData {
                cid: cid.clone(),
                data: c.to_vec(),
            });
            Link {
                cid,
                size: c.len() as u64,
            }
        })
        .collect();
    // Interior layers until a single root remains.
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(FANOUT));
        for group in layer.chunks(FANOUT) {
            let node = DagNode {
                links: group.to_vec(),
            };
            let bytes = node.to_bytes();
            let cid = node.cid();
            let size = node.total_size();
            blocks.push(BlockData {
                cid: cid.clone(),
                data: bytes,
            });
            next.push(Link { cid, size });
        }
        layer = next;
    }
    BuiltDag {
        root: layer.remove(0).cid,
        blocks,
        file_size: data.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_basics() {
        assert_eq!(chunk(&[], 10), vec![&[] as &[u8]]);
        let data = vec![1u8; 25];
        let chunks = chunk(&data, 10);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2].len(), 5);
        let whole = chunk(&data, 100);
        assert_eq!(whole.len(), 1);
    }

    #[test]
    fn single_chunk_file_is_cidv0() {
        let built = build_dag(b"small file", CHUNK_SIZE);
        assert_eq!(built.root.version(), 0);
        assert_eq!(built.blocks.len(), 1);
        assert_eq!(built.root, Cid::v0_of(b"small file"));
    }

    #[test]
    fn paper_sized_model_two_leaves_one_root() {
        // 317 KB, as reported in §4.4 of the paper.
        let data = vec![0x5au8; 317 * 1024];
        let built = build_dag(&data, CHUNK_SIZE);
        assert_eq!(built.blocks.len(), 3); // 2 leaves + root
        assert_eq!(built.root.version(), 1);
        assert_eq!(built.file_size, 317 * 1024);
        // Root decodes and sizes add up.
        let root_block = built.blocks.last().unwrap();
        let node = DagNode::from_bytes(&root_block.data).unwrap();
        assert_eq!(node.links.len(), 2);
        assert_eq!(node.total_size(), 317 * 1024);
        assert_eq!(node.links[0].size as usize, CHUNK_SIZE);
    }

    #[test]
    fn dag_node_roundtrip() {
        let node = DagNode {
            links: (0..5)
                .map(|i| Link {
                    cid: Cid::v1_of(Codec::Raw, &[i as u8]),
                    size: i * 1000,
                })
                .collect(),
        };
        let parsed = DagNode::from_bytes(&node.to_bytes()).unwrap();
        assert_eq!(parsed, node);
    }

    #[test]
    fn dag_node_rejects_trailing_garbage() {
        let node = DagNode { links: vec![] };
        let mut bytes = node.to_bytes();
        bytes.push(0xff);
        assert_eq!(DagNode::from_bytes(&bytes), Err(DagError::BadFraming));
    }

    #[test]
    fn deterministic_cids() {
        let data = vec![7u8; 600 * 1024];
        let a = build_dag(&data, CHUNK_SIZE);
        let b = build_dag(&data, CHUNK_SIZE);
        assert_eq!(a.root, b.root);
        // One byte flipped → different root.
        let mut tampered = data.clone();
        tampered[123_456] ^= 1;
        let c = build_dag(&tampered, CHUNK_SIZE);
        assert_ne!(a.root, c.root);
    }

    #[test]
    fn deep_tree_when_fanout_exceeded() {
        // More than FANOUT chunks forces a second interior layer.
        let chunk_size = 16;
        let data = vec![1u8; 16 * (FANOUT + 10)];
        let built = build_dag(&data, chunk_size);
        // leaves + ceil(184/174)=2 interior + 1 root
        assert_eq!(built.blocks.len(), (FANOUT + 10) + 2 + 1);
        let root = DagNode::from_bytes(&built.blocks.last().unwrap().data).unwrap();
        assert_eq!(root.links.len(), 2);
        assert_eq!(root.total_size() as usize, data.len());
    }

    #[test]
    fn empty_file_has_cid() {
        let built = build_dag(&[], CHUNK_SIZE);
        assert_eq!(built.blocks.len(), 1);
        assert_eq!(built.file_size, 0);
        assert_eq!(built.root, Cid::v0_of(&[]));
    }
}
