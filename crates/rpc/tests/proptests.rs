//! Property tests for the RPC envelope wire codec and the daemon frame
//! protocol built over it: every request/response/frame the provider
//! boundary can carry must round-trip bit-exactly, and mutations of the
//! framing must decode to *typed* errors, never into a different value.

use ofl_eth::block::{Block, Bloom, Header, Receipt, TxStatus};
use ofl_eth::chain::{CallResult, FilteredLog, LogFilter, PendingTxEvent};
use ofl_eth::evm::LogEntry;
use ofl_netsim::clock::SimDuration;
use ofl_primitives::u256::U256;
use ofl_rpc::frame::{Frame, FrameError, MAX_FRAME_BYTES};
use ofl_rpc::{
    CodecError, FrameTransport, RpcError, RpcMethod, RpcRequest, RpcResponse, RpcResult,
    StreamTransport, SubEvent, SubscriptionKind,
};
use ofl_w3_test_support::{h160_of, h256_of};
use proptest::prelude::*;
use std::io::{Read, Write};

/// Tiny local helpers (no extra crate): deterministic hashes from bytes.
mod ofl_w3_test_support {
    use ofl_primitives::{H160, H256};

    pub fn h160_of(seed: u8) -> H160 {
        H160::from_slice(&[seed; 20])
    }

    pub fn h256_of(seed: u8) -> H256 {
        H256::from_bytes([seed; 32])
    }
}

fn arb_method() -> impl Strategy<Value = RpcMethod> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..512)
            .prop_map(|raw| RpcMethod::SendRawTransaction { raw }),
        any::<u8>().prop_map(|s| RpcMethod::GetTransactionReceipt { hash: h256_of(s) }),
        (
            any::<u8>(),
            any::<u8>(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(f, t, data)| RpcMethod::Call {
                from: h160_of(f),
                to: h160_of(t),
                data,
            }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u8>()),
            proptest::option::of(any::<u8>())
        )
            .prop_map(|(from_block, to_block, addr, topic)| RpcMethod::GetLogs {
                filter: LogFilter {
                    from_block,
                    to_block,
                    address: addr.map(h160_of),
                    topic: topic.map(h256_of),
                },
            }),
        Just(RpcMethod::BlockNumber),
        any::<u8>().prop_map(|s| RpcMethod::GetBalance {
            address: h160_of(s)
        }),
        any::<u8>().prop_map(|s| RpcMethod::GetTransactionCount {
            address: h160_of(s)
        }),
        (
            any::<u8>(),
            proptest::option::of(any::<u8>()),
            proptest::collection::vec(any::<u8>(), 0..128)
        )
            .prop_map(|(f, t, data)| RpcMethod::EstimateGas {
                from: h160_of(f),
                to: t.map(h160_of),
                data,
            }),
        Just(RpcMethod::GasPrice),
        Just(RpcMethod::ChainId),
    ]
}

fn arb_log_entry() -> impl Strategy<Value = LogEntry> {
    (
        any::<u8>(),
        proptest::collection::vec(any::<u8>(), 0..4),
        proptest::collection::vec(any::<u8>(), 0..128),
    )
        .prop_map(|(addr, topics, data)| LogEntry {
            address: h160_of(addr),
            topics: topics.into_iter().map(h256_of).collect(),
            data,
        })
}

fn arb_receipt() -> impl Strategy<Value = Receipt> {
    (
        any::<u8>(),
        0u8..3,
        any::<u64>(),
        any::<u64>(),
        proptest::option::of(any::<u8>()),
        proptest::collection::vec(arb_log_entry(), 0..3),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(
            |(hash, status, gas_used, price, contract, logs, block_number, output)| Receipt {
                tx_hash: h256_of(hash),
                status: match status {
                    0 => TxStatus::Success,
                    1 => TxStatus::Reverted,
                    _ => TxStatus::Failed,
                },
                gas_used,
                effective_gas_price: ofl_primitives::u256::U256::from(price),
                fee: ofl_primitives::u256::U256::from(price)
                    .wrapping_mul(&ofl_primitives::u256::U256::from(gas_used)),
                contract_address: contract.map(h160_of),
                logs,
                block_number,
                output,
            },
        )
}

fn arb_result() -> impl Strategy<Value = RpcResult> {
    prop_oneof![
        any::<u8>().prop_map(|s| RpcResult::TxHash(h256_of(s))),
        proptest::option::of(arb_receipt()).prop_map(RpcResult::Receipt),
        (
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..128),
            any::<u64>()
        )
            .prop_map(|(success, output, gas_used)| RpcResult::Call(CallResult {
                success,
                output,
                gas_used,
            })),
        proptest::collection::vec(
            ((any::<u64>(), any::<u8>(), 0usize..8), arb_log_entry()),
            0..3
        )
        .prop_map(|logs| RpcResult::Logs(
            logs.into_iter()
                .map(|((block_number, tx, log_index), log)| FilteredLog {
                    block_number,
                    tx_hash: h256_of(tx),
                    log_index,
                    log,
                })
                .collect()
        )),
        any::<u64>().prop_map(RpcResult::BlockNumber),
        any::<u64>().prop_map(|b| RpcResult::Balance(ofl_primitives::u256::U256::from(b))),
        any::<u64>().prop_map(RpcResult::TransactionCount),
        any::<u64>().prop_map(RpcResult::GasEstimate),
        any::<u64>().prop_map(|p| RpcResult::GasPrice(ofl_primitives::u256::U256::from(p))),
        any::<u64>().prop_map(RpcResult::ChainId),
    ]
}

fn arb_sub_kind() -> impl Strategy<Value = SubscriptionKind> {
    prop_oneof![
        Just(SubscriptionKind::NewHeads),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::option::of(any::<u8>()),
            proptest::option::of(any::<u8>()),
        )
            .prop_map(
                |(from_block, to_block, addr, topic)| SubscriptionKind::Logs {
                    filter: LogFilter {
                        from_block,
                        to_block,
                        address: addr.map(h160_of),
                        topic: topic.map(h256_of),
                    },
                }
            ),
        Just(SubscriptionKind::PendingTxs),
    ]
}

fn arb_pending_tx_event() -> impl Strategy<Value = PendingTxEvent> {
    (
        any::<u8>(),
        any::<u8>(),
        proptest::option::of(any::<u8>()),
        proptest::option::of(any::<u32>()),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(hash, sender, to, selector, tip, nonce)| PendingTxEvent {
            hash: h256_of(hash),
            sender: h160_of(sender),
            to: to.map(h160_of),
            selector: selector.map(u32::to_le_bytes),
            tip: U256::from(tip),
            nonce,
        })
}

fn arb_sub_event() -> impl Strategy<Value = SubEvent> {
    prop_oneof![
        (any::<u8>(), any::<u64>(), any::<u64>(), any::<u8>()).prop_map(
            |(parent, number, timestamp, tx)| SubEvent::NewHead(Box::new(Block {
                header: Header {
                    parent_hash: h256_of(parent),
                    number,
                    timestamp,
                    coinbase: h160_of(7),
                    gas_used: 21_000,
                    gas_limit: 30_000_000,
                    base_fee: U256::from(number),
                    tx_root: h256_of(tx),
                    bloom: Bloom::default(),
                },
                tx_hashes: vec![h256_of(tx)],
            }))
        ),
        ((any::<u64>(), any::<u8>(), 0usize..8), arb_log_entry()).prop_map(
            |((block_number, tx, log_index), log)| SubEvent::Log(FilteredLog {
                block_number,
                tx_hash: h256_of(tx),
                log_index,
                log,
            })
        ),
        arb_pending_tx_event().prop_map(SubEvent::PendingTx),
    ]
}

fn arb_rpc_error() -> impl Strategy<Value = RpcError> {
    prop_oneof![
        Just(RpcError::Timeout),
        "[a-z ]{0,40}".prop_map(RpcError::Rejected),
        Just(RpcError::RateLimited),
        Just(RpcError::UnexpectedResponse),
        "[a-z ]{0,40}".prop_map(RpcError::Transport),
    ]
}

/// An in-memory daemon double for the pipelined request-id protocol: it
/// accepts [`Frame::Request`] envelopes on `write`, and on `read` answers
/// *everything currently pending* as [`Frame::Reply`]s echoing each
/// request's inner frame — but in a permuted order (rotated, optionally
/// reversed). A correct client must match replies to callers by id, not
/// by arrival order.
struct PermutedEcho {
    inbox: Vec<u8>,
    pending: Vec<(u64, Frame)>,
    outbox: Vec<u8>,
    rotate: usize,
    reverse: bool,
    seen_ids: Vec<u64>,
    /// How many [`Frame::Notify`] pushes to write *ahead of* each reply —
    /// the daemon's ordering contract (a reply's pushes are already on the
    /// wire when the reply lands). Zero keeps the reply-only behaviour.
    pushes_per_reply: usize,
    /// Every push written, in wire order, for the test to compare against.
    pushes_written: Vec<Frame>,
}

impl PermutedEcho {
    fn new(rotate: usize, reverse: bool) -> PermutedEcho {
        PermutedEcho {
            inbox: Vec::new(),
            pending: Vec::new(),
            outbox: Vec::new(),
            rotate,
            reverse,
            seen_ids: Vec::new(),
            pushes_per_reply: 0,
            pushes_written: Vec::new(),
        }
    }

    fn with_pushes(rotate: usize, reverse: bool, pushes_per_reply: usize) -> PermutedEcho {
        PermutedEcho {
            pushes_per_reply,
            ..PermutedEcho::new(rotate, reverse)
        }
    }
}

impl Write for PermutedEcho {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.inbox.extend_from_slice(buf);
        loop {
            match Frame::decode(&self.inbox) {
                Ok((Frame::Request { id, frame, .. }, consumed)) => {
                    self.inbox.drain(..consumed);
                    self.seen_ids.push(id);
                    self.pending.push((id, *frame));
                }
                Ok((other, _)) => {
                    panic!("pipelined client must wrap everything in Request, got {other:?}")
                }
                Err(_) => break, // incomplete frame: wait for more bytes
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Read for PermutedEcho {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.outbox.is_empty() {
            if self.pending.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "client read with nothing outstanding",
                ));
            }
            let mut batch = std::mem::take(&mut self.pending);
            let n = batch.len();
            batch.rotate_left(self.rotate % n);
            if self.reverse {
                batch.reverse();
            }
            for (id, frame) in batch {
                for p in 0..self.pushes_per_reply {
                    let push = Frame::Notify {
                        session: 0,
                        sub_id: 1 + p as u64,
                        seq: self.pushes_written.len() as u64,
                        event: SubEvent::PendingTx(PendingTxEvent {
                            hash: h256_of(id as u8),
                            sender: h160_of(p as u8),
                            to: None,
                            selector: None,
                            tip: U256::from(id),
                            nonce: id,
                        }),
                    };
                    self.outbox.extend_from_slice(&push.encode());
                    self.pushes_written.push(push);
                }
                self.outbox.extend_from_slice(
                    &Frame::Reply {
                        id,
                        frame: Box::new(frame),
                    }
                    .encode(),
                );
            }
        }
        let n = buf.len().min(self.outbox.len());
        buf[..n].copy_from_slice(&self.outbox[..n]);
        self.outbox.drain(..n);
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_wire_roundtrip(id in any::<u64>(), method in arb_method()) {
        let request = RpcRequest { id, method };
        let decoded = RpcRequest::decode(&request.encode());
        prop_assert_eq!(decoded, Ok(request));
    }

    #[test]
    fn response_wire_roundtrip(
        id in any::<u64>(),
        cost_us in any::<u64>(),
        result in prop_oneof![
            arb_result().prop_map(Ok),
            arb_rpc_error().prop_map(Err),
        ],
    ) {
        let response = RpcResponse {
            id,
            result,
            cost: SimDuration::from_micros(cost_us),
        };
        let decoded = RpcResponse::decode(&response.encode());
        prop_assert_eq!(decoded, Ok(response));
    }

    #[test]
    fn request_decode_rejects_truncation_and_trailing(
        id in any::<u64>(),
        method in arb_method(),
        extra in 1usize..16,
    ) {
        let raw = RpcRequest { id, method }.encode();
        // Truncated framing never decodes — and the failure is typed.
        prop_assert!(matches!(
            RpcRequest::decode(&raw[..raw.len() - 1]),
            Err(CodecError::Truncated { .. } | CodecError::LengthOverflow { .. })
        ));
        // Trailing garbage never decodes (the envelope is exact).
        let mut padded = raw.clone();
        padded.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(matches!(
            RpcRequest::decode(&padded),
            Err(CodecError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn response_decode_rejects_truncation(
        id in any::<u64>(),
        result in arb_result(),
    ) {
        let raw = RpcResponse { id, result: Ok(result), cost: SimDuration::ZERO }.encode();
        prop_assert!(RpcResponse::decode(&raw[..raw.len() - 1]).is_err());
    }

    #[test]
    fn payload_sizes_are_stable(method in arb_method()) {
        // The latency decorator prices from payload_bytes; it must be a
        // pure function of the envelope.
        let a = method.payload_bytes();
        let b = method.clone().payload_bytes();
        prop_assert_eq!(a, b);
    }

    // ------------------------------------------------------------------
    // Frame protocol: the transport framing the rpcd daemon speaks.
    // ------------------------------------------------------------------

    #[test]
    fn single_request_frames_roundtrip(id in any::<u64>(), method in arb_method()) {
        let frame = Frame::Execute(RpcRequest { id, method });
        let wire = frame.encode();
        let (decoded, consumed) = Frame::decode(&wire).expect("frame decodes");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn batch_frames_roundtrip(
        methods in proptest::collection::vec(arb_method(), 0..12),
    ) {
        // A whole batch is ONE frame; it must scatter back intact and in
        // order, however many envelopes ride inside.
        let requests: Vec<RpcRequest> = methods
            .into_iter()
            .enumerate()
            .map(|(i, method)| RpcRequest::new(i as u64, method))
            .collect();
        let frame = Frame::Batch(requests);
        let (decoded, _) = Frame::decode(&frame.encode()).expect("batch decodes");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn batch_response_frames_roundtrip(
        results in proptest::collection::vec(
            prop_oneof![arb_result().prop_map(Ok), arb_rpc_error().prop_map(Err)],
            0..8,
        ),
    ) {
        let responses: Vec<RpcResponse> = results
            .into_iter()
            .enumerate()
            .map(|(i, result)| RpcResponse {
                id: i as u64,
                result,
                cost: SimDuration::from_micros(i as u64 * 17),
            })
            .collect();
        let frame = Frame::BatchResponse(responses);
        let (decoded, _) = Frame::decode(&frame.encode()).expect("batch response decodes");
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn truncated_frames_never_decode(id in any::<u64>(), method in arb_method(), cut in 1usize..9) {
        let wire = Frame::Execute(RpcRequest { id, method }).encode();
        let cut = cut.min(wire.len() - 1);
        // Any strict prefix fails: either the header is incomplete or the
        // length prefix promises more payload than remains.
        prop_assert!(Frame::decode(&wire[..wire.len() - cut]).is_err());
    }

    #[test]
    fn oversized_and_garbage_frames_are_typed_rejections(
        declared in (MAX_FRAME_BYTES + 1)..u32::MAX,
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        // An over-cap length prefix is refused before any allocation.
        let mut wire = Frame::Shutdown.encode();
        wire[4..8].copy_from_slice(&declared.to_le_bytes());
        prop_assert_eq!(Frame::decode(&wire), Err(FrameError::TooLarge { declared }));

        // A correctly-framed garbage payload decodes to a typed codec
        // error (the daemon answers these in-band), never a panic.
        let mut framed = Vec::new();
        framed.extend_from_slice(&ofl_rpc::frame::FRAME_MAGIC.to_le_bytes());
        framed.extend_from_slice(&ofl_rpc::PROTOCOL_VERSION.to_le_bytes());
        framed.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        framed.extend_from_slice(&garbage);
        if let Err(e) = Frame::decode(&framed) {
            prop_assert!(matches!(e, FrameError::Codec(_)));
        }
        // (An Ok is possible only when the bytes happen to spell a valid
        // frame — which is exactly what the roundtrip tests cover.)
    }

    // ------------------------------------------------------------------
    // Request-id envelopes: the pipelined / multi-session protocol.
    // ------------------------------------------------------------------

    #[test]
    fn request_and_reply_envelopes_roundtrip(
        id in any::<u64>(),
        session in any::<u64>(),
        method in arb_method(),
        result in arb_result(),
        cost_us in any::<u64>(),
    ) {
        let request = Frame::Request {
            id,
            session,
            frame: Box::new(Frame::Execute(RpcRequest { id, method })),
        };
        let wire = request.encode();
        let (decoded, consumed) = Frame::decode(&wire).expect("request envelope decodes");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(decoded, request);

        let reply = Frame::Reply {
            id,
            frame: Box::new(Frame::Response(RpcResponse {
                id,
                result: Ok(result),
                cost: SimDuration::from_micros(cost_us),
            })),
        };
        let wire = reply.encode();
        let (decoded, consumed) = Frame::decode(&wire).expect("reply envelope decodes");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(decoded, reply);
    }

    #[test]
    fn interleaved_request_id_frames_roundtrip(
        tagged in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), arb_method()),
            1..16,
        ),
    ) {
        // Many sessions' envelopes interleaved back-to-back on one byte
        // stream — exactly what a `SessionMux` connection carries — must
        // decode one by one with ids and session tags intact.
        let frames: Vec<Frame> = tagged
            .into_iter()
            .enumerate()
            .map(|(i, (id, session, method))| Frame::Request {
                id,
                session,
                frame: Box::new(Frame::Execute(RpcRequest::new(i as u64, method))),
            })
            .collect();
        let mut wire = Vec::new();
        for frame in &frames {
            wire.extend_from_slice(&frame.encode());
        }
        let mut offset = 0;
        for expected in &frames {
            let (decoded, consumed) =
                Frame::decode(&wire[offset..]).expect("next interleaved frame decodes");
            prop_assert_eq!(&decoded, expected);
            offset += consumed;
        }
        prop_assert_eq!(offset, wire.len());
    }

    #[test]
    fn pipelined_replies_match_callers_out_of_order(
        methods in proptest::collection::vec(arb_method(), 1..24),
        window in 1usize..32,
        rotate in 0usize..24,
        reverse in any::<bool>(),
    ) {
        // However the daemon orders its replies within the window, the
        // pipelined transport must hand each caller *its own* answer.
        let frames: Vec<Frame> = methods
            .into_iter()
            .enumerate()
            .map(|(i, method)| Frame::Execute(RpcRequest::new(i as u64, method)))
            .collect();
        let mut transport = StreamTransport::new(PermutedEcho::new(rotate, reverse), "echo");
        let replies = transport
            .roundtrip_many(&frames, window)
            .expect("pipelined roundtrip succeeds");
        // Every reply slots back to the frame that asked for it, in the
        // caller's order, regardless of wire arrival order.
        prop_assert_eq!(replies, frames.clone());
        // And the server really saw one distinct id per request.
        let seen = &transport.stream().seen_ids;
        prop_assert_eq!(seen.len(), frames.len());
        let mut unique = seen.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), frames.len());
    }

    // ------------------------------------------------------------------
    // Subscription frames: the push half of protocol v3.
    // ------------------------------------------------------------------

    #[test]
    fn subscription_frames_roundtrip(
        kind in arb_sub_kind(),
        event in arb_sub_event(),
        sub_id in any::<u64>(),
        session in any::<u64>(),
        seq in any::<u64>(),
    ) {
        // Every subscription-protocol frame — Subscribe, Subscribed,
        // Unsubscribe, Unsubscribed, Notify, Ping — survives the wire with
        // any channel kind and any event payload.
        let frames = vec![
            Frame::Subscribe { kind },
            Frame::Subscribed { sub_id },
            Frame::Unsubscribe { sub_id },
            Frame::Unsubscribed { sub_id },
            Frame::Notify { session, sub_id, seq, event },
            Frame::Ping,
        ];
        for frame in frames {
            let wire = frame.encode();
            let (decoded, consumed) = Frame::decode(&wire).expect("subscription frame decodes");
            prop_assert_eq!(consumed, wire.len());
            prop_assert_eq!(decoded, frame);
        }
    }

    // ------------------------------------------------------------------
    // Admin introspection frames: the v4 Stats/StatsReply pair.
    // ------------------------------------------------------------------

    #[test]
    fn stats_frames_roundtrip(
        sessions in any::<u64>(),
        workers_reaped in any::<u64>(),
        accept_backoffs in any::<u64>(),
        frames_served in any::<u64>(),
        metrics in proptest::collection::vec((".{0,40}", any::<u64>()), 0..24),
    ) {
        // The probe itself is payload-free.
        let wire = Frame::Stats.encode();
        let (decoded, consumed) = Frame::decode(&wire).expect("stats probe decodes");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(decoded, Frame::Stats);
        // The reply carries the counters plus an arbitrary name-ordered
        // metrics snapshot — any name bytes, any values.
        let frame = Frame::StatsReply {
            sessions,
            workers_reaped,
            accept_backoffs,
            frames_served,
            metrics,
        };
        let wire = frame.encode();
        let (decoded, consumed) = Frame::decode(&wire).expect("stats reply decodes");
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn notify_pushes_interleave_with_out_of_order_replies(
        methods in proptest::collection::vec(arb_method(), 1..16),
        window in 1usize..16,
        rotate in 0usize..16,
        reverse in any::<bool>(),
        pushes_per_reply in 1usize..4,
    ) {
        // The daemon writes Notify pushes ahead of the replies that caused
        // them, permuted replies and all. The pipelined transport must still
        // hand each caller its own answer AND park every push, in wire
        // order, for drain_pushes.
        let frames: Vec<Frame> = methods
            .into_iter()
            .enumerate()
            .map(|(i, method)| Frame::Execute(RpcRequest::new(i as u64, method)))
            .collect();
        let mut transport = StreamTransport::new(
            PermutedEcho::with_pushes(rotate, reverse, pushes_per_reply),
            "echo",
        );
        let replies = transport
            .roundtrip_many(&frames, window)
            .expect("pipelined roundtrip succeeds");
        prop_assert_eq!(replies, frames.clone());
        // Every push written before a consumed reply is already parked —
        // none were dropped, reordered, or mistaken for replies.
        let expected = transport.stream().pushes_written.clone();
        prop_assert_eq!(expected.len(), frames.len() * pushes_per_reply);
        let drained = transport.drain_pushes();
        prop_assert_eq!(drained, expected);
        // A second drain is empty: pushes are taken, not copied.
        prop_assert!(transport.drain_pushes().is_empty());
    }
}
