//! # ofl-rpc
//!
//! The node-API boundary of the OFL-W3 stack: everything the marketplace
//! core knows about infrastructure goes through the provider traits defined
//! here, never through concrete chain/swarm structs.
//!
//! - [`envelope`]: typed [`RpcRequest`]/[`RpcResponse`] envelopes with a
//!   canonical wire codec — the thin, decorator-friendly JSON-RPC shape.
//! - [`eth`]: the [`EthApi`] trait (`send_raw_transaction`,
//!   `get_transaction_receipt`, `call`, `get_logs`, `block_number`,
//!   `get_balance`, …) plus [`EthApi::batch`], which answers N requests in
//!   one provider round trip.
//! - [`ipfs`]: the [`IpfsApi`] trait (`add`, `cat`, `pin`).
//! - [`sim`]: the in-process [`SimProvider`] backend over a chain + swarm.
//! - [`pool`]: [`ProviderPool`] — N endpoint stacks (shards) addressed by
//!   [`EndpointId`], with tagged batch fan-out and per-endpoint metering
//!   rolled up into run-level totals.
//! - [`decorators`]: composable providers wrapping any backend —
//!   [`LatencyProvider`] prices netsim timing into each response,
//!   [`FlakyProvider`] injects seeded deterministic drops/timeouts,
//!   [`RateLimitProvider`] answers seeded 429s past a per-slot quota,
//!   [`SpikeProvider`] stalls whole slots at a time, [`ReorderProvider`]
//!   shuffles batch reply arrays (tags intact), and [`MeteredProvider`]
//!   counts per-method calls and virtual-time totals.
//! - [`bindings`]: the [`contract_bindings!`] macro and the generated
//!   [`ModelMarketContract`] handle — typed contract calls with typed
//!   decode errors, no raw selector strings.
//! - [`backstage`]: the simulator's side channel (mining, invariant reads,
//!   failure injection) as wire-able [`BackstageOp`] values instead of
//!   reference accessors.
//! - [`sub`]: the subscription subsystem — typed push channels
//!   ([`SubscriptionKind::NewHeads`], [`SubscriptionKind::Logs`],
//!   [`SubscriptionKind::PendingTxs`]) with monotonic ids and a
//!   deterministic delivery order, routed by a per-backend
//!   [`SubscriptionHub`].
//! - [`frame`] / [`transport`] / [`socket`]: the out-of-process boundary —
//!   versioned length-prefixed [`Frame`]s over any byte stream, and the
//!   [`SocketProvider`] client that serves the whole provider surface from
//!   an `rpcd` daemon while the usual decorators wrap it unchanged.
//!
//! ## Costs travel with values
//!
//! Providers never advance a clock. Decorators *price* work into a
//! [`Billed`] envelope (or `RpcResponse::cost`), and the caller charges the
//! bill to whatever clock or per-participant timeline it owns. This is what
//! lets one provider stack serve both the serial workflow (one global
//! clock) and the discrete-event session engine (many overlapping
//! timelines).

#![forbid(unsafe_code)]

pub mod backstage;
pub mod bindings;
pub mod codec;
pub mod decorators;
pub mod envelope;
pub mod eth;
pub mod frame;
pub mod ipfs;
pub mod pool;
pub mod provider;
pub mod sim;
pub mod socket;
pub mod sub;
pub mod transport;

pub use backstage::{BackstageOp, BackstageReply};
pub use bindings::{AbiArg, AbiRet, BindingError, ModelMarketContract};
pub use codec::CodecError;
pub use decorators::{
    FaultProfile, FlakyProvider, LatencyProvider, MeteredProvider, MethodStats, ProviderMetrics,
    RateLimitProfile, RateLimitProvider, ReorderProfile, ReorderProvider, SpikeProfile,
    SpikeProvider, StaleProfile, StaleReadProvider, SubLagProfile, SubLagProvider,
};
pub use envelope::{match_to_requests, RpcError, RpcMethod, RpcRequest, RpcResponse, RpcResult};
pub use eth::EthApi;
pub use frame::{Frame, FrameError, ProtocolError, MAX_FRAME_BYTES, PROTOCOL_VERSION};
pub use ipfs::IpfsApi;
pub use pool::{EndpointId, ProviderPool};
pub use provider::{build_provider, decorate, EndpointFaults, NodeProvider, Retryable};
pub use sim::SimProvider;
pub use socket::{
    provision_socket_provider, provision_socket_provider_via, SocketProvider, WireMode,
};
pub use sub::{Notification, SubEvent, SubscriptionHub, SubscriptionKind};
pub use transport::{
    FrameTransport, RemoteEndpoint, SessionMux, SessionTransport, StreamTransport, WireCounter,
};

use ofl_netsim::clock::SimDuration;

/// A value together with the virtual time it cost to obtain — the unit the
/// provider stack hands back so *callers* decide which clock pays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Billed<T> {
    /// The result itself.
    pub value: T,
    /// Virtual time priced onto the operation by the decorator stack.
    pub cost: SimDuration,
}

impl<T> Billed<T> {
    /// A cost-free value (what the raw in-process backend returns).
    pub fn free(value: T) -> Billed<T> {
        Billed {
            value,
            cost: SimDuration::ZERO,
        }
    }

    /// Maps the value, keeping the cost.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Billed<U> {
        Billed {
            value: f(self.value),
            cost: self.cost,
        }
    }
}
