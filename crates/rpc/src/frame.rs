//! The node-daemon wire protocol: versioned, length-prefixed [`Frame`]s
//! carrying the full provider surface — Ethereum envelopes (single and
//! batched), IPFS operations, backstage simulator ops, and typed protocol
//! error frames.
//!
//! ```text
//!  ┌───────────┬───────────┬──────────────┬───────────────────────┐
//!  │ magic u16 │ version   │ length u32   │ payload (tag + body)  │
//!  │  0x4F57   │  u16 = 2  │ LE, ≤ 64 MiB │ length bytes          │
//!  └───────────┴───────────┴──────────────┴───────────────────────┘
//! ```
//!
//! Every frame is self-delimiting, so a dispatch loop reads exactly one
//! frame per request and answers with exactly one frame. Malformed payloads
//! decode to a typed [`FrameError`] — the daemon answers those with a
//! [`Frame::Error`] carrying a [`ProtocolError`] instead of dropping the
//! connection, and only gives up on I/O failures or an oversized length
//! prefix (where the stream position itself is lost).
//!
//! ## Pipelining and sessions (v2)
//!
//! Protocol v2 adds the [`Frame::Request`]/[`Frame::Reply`] envelope: any
//! client frame can travel wrapped with a correlation `id` and a `session`
//! number. Replies echo the `id`, so a client may keep **N requests in
//! flight** on one connection and match answers out of order instead of
//! running strict send→recv lockstep. The `session` routes the inner frame
//! to one of several independent backends a single connection can
//! provision — several shards served concurrently over one socket. Bare
//! (unwrapped) v1-style frames keep working and address session 0.
//! [`Frame::Attach`] re-binds to a session that already exists on a
//! persistent daemon (provisioned by an earlier connection) instead of
//! provisioning a fresh one.
//!
//! ## Push streaming (v3)
//!
//! Protocol v3 adds server-initiated push. [`Frame::Subscribe`] registers a
//! typed channel ([`SubscriptionKind`]) and is answered by
//! [`Frame::Subscribed`] carrying the backend-assigned subscription id;
//! after that the daemon interleaves [`Frame::Notify`] frames — each
//! carrying the session, subscription id, chain sequence number, and a
//! [`SubEvent`] — with ordinary replies. The ordering contract: a daemon
//! writes every push a request caused **before** that request's reply, so
//! a client that has received reply N has already buffered every push N
//! triggered. [`Frame::Ping`] is a server keepalive probe (no answer
//! expected) that lets an idle-timeout daemon distinguish a quiet
//! subscriber from a dead peer.

use crate::backstage::{BackstageOp, BackstageReply};
use crate::codec::{bounded_vec, check_count, read_flag, read_option, CodecError, Reader, Writer};
use crate::envelope::{
    read_log_entry, read_receipt, write_log_entry, write_receipt, RpcRequest, RpcResponse,
};
use crate::sub::{SubEvent, SubscriptionKind};
use ofl_eth::block::{Block, Bloom, Header};
use ofl_eth::chain::{ChainConfig, FilteredLog, LogFilter, PendingTxEvent};
use ofl_ipfs::blockstore::BlockstoreError;
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, IpfsError};
use ofl_netsim::clock::SimDuration;
use ofl_primitives::hotpath::{HotPhase, PhaseTimer};
use ofl_primitives::u256::U256;
use ofl_primitives::H160;
use std::io::{Read, Write};

/// First two bytes of every frame: `"OW"` — a cheap way to reject a peer
/// that is not speaking this protocol at all.
pub const FRAME_MAGIC: u16 = 0x4F57;

/// The protocol revision this build speaks. A daemon answers frames from a
/// different revision with a typed [`ProtocolError::Unsupported`] error
/// frame (the stream stays frame-synced, so the conversation survives).
///
/// v2 added the [`Frame::Request`]/[`Frame::Reply`] pipelining envelope and
/// the [`Frame::Attach`]/[`Frame::Attached`] session re-binding pair. v3
/// added push streaming: [`Frame::Subscribe`]/[`Frame::Subscribed`],
/// server-initiated [`Frame::Notify`], [`Frame::Unsubscribe`]/
/// [`Frame::Unsubscribed`], and the [`Frame::Ping`] keepalive probe. v4
/// added the [`Frame::Stats`]/[`Frame::StatsReply`] admin introspection
/// pair.
pub const PROTOCOL_VERSION: u16 = 4;

/// Hard cap on one frame's payload. Large enough for any model upload the
/// marketplace ships, small enough to reject allocation-bomb length
/// prefixes outright.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The underlying stream failed (or reached EOF mid-frame).
    Io(String),
    /// A read deadline elapsed with **no bytes received** — the peer is
    /// quiet, not necessarily gone. Distinct from [`FrameError::Io`] so a
    /// daemon with an idle timeout can probe a quiet subscriber instead of
    /// reaping it.
    Timeout,
    /// The stream did not open with the protocol magic.
    BadMagic {
        /// What arrived instead.
        got: u16,
    },
    /// The peer speaks a different protocol revision.
    Version {
        /// The peer's revision.
        got: u16,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// The declared payload length.
        declared: u32,
    },
    /// The payload failed to decode.
    Codec(CodecError),
    /// The peer answered with a protocol error frame.
    Protocol(ProtocolError),
}

impl From<CodecError> for FrameError {
    fn from(e: CodecError) -> Self {
        FrameError::Codec(e)
    }
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Timeout => write!(f, "read deadline elapsed with no frame"),
            FrameError::BadMagic { got } => {
                write!(
                    f,
                    "bad frame magic {got:#06x} (expected {FRAME_MAGIC:#06x})"
                )
            }
            FrameError::Version { got } => {
                write!(
                    f,
                    "peer speaks protocol v{got}, this build speaks v{PROTOCOL_VERSION}"
                )
            }
            FrameError::TooLarge { declared } => {
                write!(f, "frame declares {declared} bytes (cap {MAX_FRAME_BYTES})")
            }
            FrameError::Codec(e) => write!(f, "frame payload: {e}"),
            FrameError::Protocol(e) => write!(f, "peer protocol error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A typed protocol failure a daemon reports **in-band** as a
/// [`Frame::Error`], keeping the connection alive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame's payload failed to decode (the daemon's view of the
    /// [`CodecError`], rendered so it survives the wire).
    Malformed(String),
    /// A request arrived before the connection was provisioned with a
    /// backend.
    Unprovisioned,
    /// A second [`Frame::Provision`] arrived on an already-backed
    /// connection.
    AlreadyProvisioned,
    /// The frame is valid but this daemon cannot serve it.
    Unsupported(String),
    /// A [`Frame::Attach`] named a session this daemon does not hold.
    NoSuchSession(u64),
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::Malformed(why) => write!(f, "malformed frame: {why}"),
            ProtocolError::Unprovisioned => {
                write!(f, "connection has no backend (send Provision first)")
            }
            ProtocolError::AlreadyProvisioned => {
                write!(f, "connection already has a backend")
            }
            ProtocolError::Unsupported(what) => write!(f, "unsupported: {what}"),
            ProtocolError::NoSuchSession(session) => {
                write!(
                    f,
                    "no session {session} on this daemon (Provision it first)"
                )
            }
        }
    }
}

/// Everything that travels between a [`SocketProvider`](crate::SocketProvider)
/// and an `rpcd` daemon. Client→server frames first, server→client second.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client→server: build this connection's backend — a fresh simulated
    /// node with the given chain parameters and genesis allocation.
    Provision {
        /// Chain parameters.
        chain: ChainConfig,
        /// Genesis balances.
        genesis: Vec<(H160, U256)>,
    },
    /// Client→server: one Ethereum request.
    Execute(RpcRequest),
    /// Client→server: a whole batch in **one** frame round trip.
    Batch(Vec<RpcRequest>),
    /// Client→server: `ipfs add` on a swarm node.
    IpfsAdd {
        /// Node index.
        node: u64,
        /// File bytes.
        data: Vec<u8>,
    },
    /// Client→server: `ipfs cat` on a swarm node.
    IpfsCat {
        /// Node index.
        node: u64,
        /// Root CID.
        cid: Cid,
    },
    /// Client→server: `ipfs pin add` on a swarm node.
    IpfsPin {
        /// Node index.
        node: u64,
        /// Root CID.
        cid: Cid,
    },
    /// Client→server: one backstage simulator op.
    Backstage(BackstageOp),
    /// Client→server: close this connection gracefully.
    Shutdown,
    /// Client→server: any other client frame, wrapped with a correlation
    /// `id` (echoed by the matching [`Frame::Reply`]) and a `session`
    /// number routing it to one of the connection's backends. The envelope
    /// is flat — a `Request` cannot carry another `Request`.
    Request {
        /// Correlation id, echoed by the reply.
        id: u64,
        /// Which of the connection's backends serves the inner frame
        /// (bare frames address session 0).
        session: u64,
        /// The wrapped client frame.
        frame: Box<Frame>,
    },
    /// Client→server: bind this connection to an **existing** session on a
    /// persistent daemon (one provisioned by an earlier connection),
    /// instead of provisioning a fresh backend.
    Attach {
        /// The session to re-bind.
        session: u64,
    },
    /// Client→server: open a push channel on this session's backend.
    /// Answered by [`Frame::Subscribed`].
    Subscribe {
        /// What to watch.
        kind: SubscriptionKind,
    },
    /// Client→server: close a push channel. Answered by
    /// [`Frame::Unsubscribed`].
    Unsubscribe {
        /// The id from [`Frame::Subscribed`].
        sub_id: u64,
    },
    /// Client→server: admin introspection probe — report live daemon
    /// counters and the server's metrics registry. Answered by
    /// [`Frame::StatsReply`]. Read-only: dispatching it mutates no
    /// backend state (beyond the served-frame counters it reports).
    Stats,

    /// Server→client: the backend is up.
    Provisioned,
    /// Server→client: answer to [`Frame::Execute`].
    Response(RpcResponse),
    /// Server→client: answers to [`Frame::Batch`], in request order.
    BatchResponse(Vec<RpcResponse>),
    /// Server→client: answer to [`Frame::IpfsAdd`].
    IpfsAdded {
        /// Virtual cost the server's stack priced (zero for a bare sim).
        cost: SimDuration,
        /// The add result.
        result: AddResult,
    },
    /// Server→client: answer to [`Frame::IpfsCat`].
    IpfsCatted {
        /// Virtual cost the server's stack priced.
        cost: SimDuration,
        /// The fetched bytes and transfer stats, or a typed IPFS failure.
        result: Result<(Vec<u8>, FetchStats), IpfsError>,
    },
    /// Server→client: answer to [`Frame::IpfsPin`].
    IpfsPinned {
        /// Virtual cost the server's stack priced.
        cost: SimDuration,
        /// Pin outcome.
        result: Result<(), IpfsError>,
    },
    /// Server→client: answer to [`Frame::Backstage`].
    BackstageReply(BackstageReply),
    /// Server→client: a typed protocol failure (connection stays up).
    Error(ProtocolError),
    /// Server→client: goodbye (answer to [`Frame::Shutdown`]).
    Goodbye,
    /// Server→client: the answer to a [`Frame::Request`], echoing its
    /// correlation `id`. Replies to pipelined requests may arrive in any
    /// order; the id is what re-associates them.
    Reply {
        /// The request's correlation id.
        id: u64,
        /// The wrapped server frame.
        frame: Box<Frame>,
    },
    /// Server→client: answer to [`Frame::Attach`] — the session exists and
    /// is now bound.
    Attached {
        /// The attached session's current chain height (a cheap liveness
        /// check that the client really re-joined existing state).
        height: u64,
    },
    /// Server→client: answer to [`Frame::Subscribe`].
    Subscribed {
        /// The backend-assigned subscription id (monotonic per session).
        sub_id: u64,
    },
    /// Server→client: one pushed event. Written **before** the reply to
    /// whichever request caused it, never inside a [`Frame::Reply`]
    /// envelope — transports route it to a push sink, not a reply slot.
    Notify {
        /// The session whose backend published the event (0 for bare
        /// connections) — what a [`SessionMux`](crate::SessionMux) keys on.
        session: u64,
        /// The subscription the event matched.
        sub_id: u64,
        /// The backend chain's publish-order sequence number.
        seq: u64,
        /// The event itself.
        event: SubEvent,
    },
    /// Server→client: answer to [`Frame::Unsubscribe`].
    Unsubscribed {
        /// The cancelled id.
        sub_id: u64,
    },
    /// Server→client: keepalive probe for quiet subscribers under an idle
    /// timeout. No answer expected; clients skip it when reading.
    Ping,
    /// Server→client: answer to [`Frame::Stats`] — a live snapshot of the
    /// daemon's counters plus its name-ordered metrics registry.
    StatsReply {
        /// Sessions currently live on the answering daemon (persistent
        /// store entries, or this connection's private backends).
        sessions: u64,
        /// Worker threads reaped after their connections closed.
        workers_reaped: u64,
        /// Accept-retry backoffs the listener has slept through.
        accept_backoffs: u64,
        /// Frames dispatched across all connections since daemon start.
        frames_served: u64,
        /// The server's `ofl_trace::metrics` registry, flattened in name
        /// order (deterministic; see `metrics::snapshot_flat`).
        metrics: Vec<(String, u64)>,
    },
}

// ----------------------------------------------------------------------
// Payload codecs for the compound types that ride in frames.
// ----------------------------------------------------------------------

fn write_chain_config(w: &mut Writer, config: &ChainConfig) {
    w.u64(config.chain_id);
    w.u64(config.block_time);
    w.u64(config.gas_limit);
    w.u256(&config.initial_base_fee);
    w.h160(&config.coinbase);
    w.u64(config.max_wait_slots);
}

fn read_chain_config(r: &mut Reader<'_>) -> Result<ChainConfig, CodecError> {
    Ok(ChainConfig {
        chain_id: r.u64("chain id")?,
        block_time: r.u64("block time")?,
        gas_limit: r.u64("gas limit")?,
        initial_base_fee: r.u256("initial base fee")?,
        coinbase: r.h160("coinbase")?,
        max_wait_slots: r.u64("max wait slots")?,
    })
}

fn write_cid(w: &mut Writer, cid: &Cid) {
    w.bytes(&cid.to_bytes());
}

fn read_cid(r: &mut Reader<'_>) -> Result<Cid, CodecError> {
    let raw = r.bytes("cid")?;
    Cid::from_bytes(&raw).map_err(|_| CodecError::BadTag {
        reading: "cid",
        tag: raw.first().copied().unwrap_or(0),
    })
}

fn write_add_result(w: &mut Writer, result: &AddResult) {
    write_cid(w, &result.root);
    w.u64(result.blocks as u64);
    w.u64(result.bytes_stored);
    w.u64(result.file_size);
}

fn read_add_result(r: &mut Reader<'_>) -> Result<AddResult, CodecError> {
    Ok(AddResult {
        root: read_cid(r)?,
        blocks: r.u64("add blocks")? as usize,
        bytes_stored: r.u64("add bytes stored")?,
        file_size: r.u64("add file size")?,
    })
}

fn write_fetch_stats(w: &mut Writer, stats: &FetchStats) {
    w.u64(stats.blocks_fetched as u64);
    w.u64(stats.bytes_fetched);
    w.u64(stats.rounds as u64);
    // Deterministic wire order for the provider map.
    let mut providers: Vec<(&String, &usize)> = stats.providers.iter().collect();
    providers.sort();
    w.u64(providers.len() as u64);
    for (peer, blocks) in providers {
        w.string(peer);
        w.u64(*blocks as u64);
    }
}

fn read_fetch_stats(r: &mut Reader<'_>) -> Result<FetchStats, CodecError> {
    let blocks_fetched = r.u64("fetch blocks")? as usize;
    let bytes_fetched = r.u64("fetch bytes")?;
    let rounds = r.u64("fetch rounds")? as usize;
    let n = r.u64("fetch provider count")?;
    check_count(n, r, "fetch provider count")?;
    let mut providers = std::collections::HashMap::new();
    for _ in 0..n {
        let peer = r.string("fetch provider peer")?;
        let blocks = r.u64("fetch provider blocks")? as usize;
        providers.insert(peer, blocks);
    }
    Ok(FetchStats {
        blocks_fetched,
        bytes_fetched,
        rounds,
        providers,
    })
}

fn write_ipfs_error(w: &mut Writer, error: &IpfsError) {
    match error {
        IpfsError::BlockUnavailable(cid) => {
            w.u8(0);
            write_cid(w, cid);
        }
        IpfsError::CorruptDag(cid) => {
            w.u8(1);
            write_cid(w, cid);
        }
        IpfsError::Store(BlockstoreError::IntegrityMismatch) => w.u8(2),
        IpfsError::Store(BlockstoreError::NotFound(cid)) => {
            w.u8(3);
            write_cid(w, cid);
        }
        IpfsError::UnknownPeer(peer) => {
            w.u8(4);
            w.string(peer);
        }
    }
}

fn read_ipfs_error(r: &mut Reader<'_>) -> Result<IpfsError, CodecError> {
    Ok(match r.u8("ipfs error tag")? {
        0 => IpfsError::BlockUnavailable(read_cid(r)?),
        1 => IpfsError::CorruptDag(read_cid(r)?),
        2 => IpfsError::Store(BlockstoreError::IntegrityMismatch),
        3 => IpfsError::Store(BlockstoreError::NotFound(read_cid(r)?)),
        4 => IpfsError::UnknownPeer(r.string("unknown peer")?),
        tag => {
            return Err(CodecError::BadTag {
                reading: "ipfs error tag",
                tag,
            })
        }
    })
}

fn write_block(w: &mut Writer, block: &Block) {
    let h = &block.header;
    w.h256(&h.parent_hash);
    w.u64(h.number);
    w.u64(h.timestamp);
    w.h160(&h.coinbase);
    w.u64(h.gas_used);
    w.u64(h.gas_limit);
    w.u256(&h.base_fee);
    w.h256(&h.tx_root);
    w.raw(&h.bloom.0);
    w.u64(block.tx_hashes.len() as u64);
    for hash in &block.tx_hashes {
        w.h256(hash);
    }
}

fn read_block(r: &mut Reader<'_>) -> Result<Block, CodecError> {
    let parent_hash = r.h256("block parent hash")?;
    let number = r.u64("block number")?;
    let timestamp = r.u64("block timestamp")?;
    let coinbase = r.h160("block coinbase")?;
    let gas_used = r.u64("block gas used")?;
    let gas_limit = r.u64("block gas limit")?;
    let base_fee = r.u256("block base fee")?;
    let tx_root = r.h256("block tx root")?;
    let mut bloom = Bloom::default();
    bloom.0.copy_from_slice(r.take(256, "block bloom")?);
    let n = r.u64("block tx count")?;
    check_count(n, r, "block tx count")?;
    let mut tx_hashes = bounded_vec(n);
    for _ in 0..n {
        tx_hashes.push(r.h256("block tx hash")?);
    }
    Ok(Block {
        header: Header {
            parent_hash,
            number,
            timestamp,
            coinbase,
            gas_used,
            gas_limit,
            base_fee,
            tx_root,
            bloom,
        },
        tx_hashes,
    })
}

fn write_log_filter(w: &mut Writer, filter: &LogFilter) {
    w.u64(filter.from_block);
    w.u64(filter.to_block);
    match &filter.address {
        Some(a) => {
            w.u8(1);
            w.h160(a);
        }
        None => w.u8(0),
    }
    match &filter.topic {
        Some(t) => {
            w.u8(1);
            w.h256(t);
        }
        None => w.u8(0),
    }
}

fn read_log_filter(r: &mut Reader<'_>) -> Result<LogFilter, CodecError> {
    Ok(LogFilter {
        from_block: r.u64("filter from_block")?,
        to_block: r.u64("filter to_block")?,
        address: read_option(r, "filter address", Reader::h160)?,
        topic: read_option(r, "filter topic", Reader::h256)?,
    })
}

fn write_sub_kind(w: &mut Writer, kind: &SubscriptionKind) {
    match kind {
        SubscriptionKind::NewHeads => w.u8(0),
        SubscriptionKind::Logs { filter } => {
            w.u8(1);
            write_log_filter(w, filter);
        }
        SubscriptionKind::PendingTxs => w.u8(2),
    }
}

fn read_sub_kind(r: &mut Reader<'_>) -> Result<SubscriptionKind, CodecError> {
    Ok(match r.u8("subscription kind tag")? {
        0 => SubscriptionKind::NewHeads,
        1 => SubscriptionKind::Logs {
            filter: read_log_filter(r)?,
        },
        2 => SubscriptionKind::PendingTxs,
        tag => {
            return Err(CodecError::BadTag {
                reading: "subscription kind tag",
                tag,
            })
        }
    })
}

fn write_filtered_log(w: &mut Writer, fl: &FilteredLog) {
    w.u64(fl.block_number);
    w.h256(&fl.tx_hash);
    w.u64(fl.log_index as u64);
    write_log_entry(w, &fl.log);
}

fn read_filtered_log(r: &mut Reader<'_>) -> Result<FilteredLog, CodecError> {
    Ok(FilteredLog {
        block_number: r.u64("notify log block")?,
        tx_hash: r.h256("notify log tx hash")?,
        log_index: r.u64("notify log index")? as usize,
        log: read_log_entry(r)?,
    })
}

fn write_pending_tx(w: &mut Writer, p: &PendingTxEvent) {
    w.h256(&p.hash);
    w.h160(&p.sender);
    match &p.to {
        Some(to) => {
            w.u8(1);
            w.h160(to);
        }
        None => w.u8(0),
    }
    match &p.selector {
        Some(sel) => {
            w.u8(1);
            w.raw(sel);
        }
        None => w.u8(0),
    }
    w.u256(&p.tip);
    w.u64(p.nonce);
}

fn read_pending_tx(r: &mut Reader<'_>) -> Result<PendingTxEvent, CodecError> {
    let hash = r.h256("pending tx hash")?;
    let sender = r.h160("pending tx sender")?;
    let to = read_option(r, "pending tx to", Reader::h160)?;
    let selector = read_option(r, "pending tx selector", |r, what| {
        let mut sel = [0u8; 4];
        sel.copy_from_slice(r.take(4, what)?);
        Ok(sel)
    })?;
    Ok(PendingTxEvent {
        hash,
        sender,
        to,
        selector,
        tip: r.u256("pending tx tip")?,
        nonce: r.u64("pending tx nonce")?,
    })
}

fn write_sub_event(w: &mut Writer, event: &SubEvent) {
    match event {
        SubEvent::NewHead(block) => {
            w.u8(0);
            write_block(w, block);
        }
        SubEvent::Log(fl) => {
            w.u8(1);
            write_filtered_log(w, fl);
        }
        SubEvent::PendingTx(p) => {
            w.u8(2);
            write_pending_tx(w, p);
        }
    }
}

fn read_sub_event(r: &mut Reader<'_>) -> Result<SubEvent, CodecError> {
    Ok(match r.u8("sub event tag")? {
        0 => SubEvent::NewHead(Box::new(read_block(r)?)),
        1 => SubEvent::Log(read_filtered_log(r)?),
        2 => SubEvent::PendingTx(read_pending_tx(r)?),
        tag => {
            return Err(CodecError::BadTag {
                reading: "sub event tag",
                tag,
            })
        }
    })
}

fn write_backstage_op(w: &mut Writer, op: &BackstageOp) {
    match op {
        BackstageOp::MineSlot { slot_secs } => {
            w.u8(0);
            w.u64(*slot_secs);
        }
        BackstageOp::SlotElapsed => w.u8(1),
        BackstageOp::Height => w.u8(2),
        BackstageOp::Config => w.u8(3),
        BackstageOp::MempoolLen => w.u8(4),
        BackstageOp::TotalSupply => w.u8(5),
        BackstageOp::Burned => w.u8(6),
        BackstageOp::ReceiptOf { hash } => {
            w.u8(7);
            w.h256(hash);
        }
        BackstageOp::IsPending { hash } => {
            w.u8(8);
            w.h256(hash);
        }
        BackstageOp::BalanceOf { address } => {
            w.u8(9);
            w.h160(address);
        }
        BackstageOp::BaseFee => w.u8(10),
        BackstageOp::SpawnIpfsNode { label } => {
            w.u8(11);
            w.string(label);
        }
        BackstageOp::DropIpfsBlock { node, cid } => {
            w.u8(12);
            w.u64(*node);
            write_cid(w, cid);
        }
        BackstageOp::SwarmHas { cid } => {
            w.u8(13);
            write_cid(w, cid);
        }
    }
}

fn read_backstage_op(r: &mut Reader<'_>) -> Result<BackstageOp, CodecError> {
    Ok(match r.u8("backstage op tag")? {
        0 => BackstageOp::MineSlot {
            slot_secs: r.u64("mine slot secs")?,
        },
        1 => BackstageOp::SlotElapsed,
        2 => BackstageOp::Height,
        3 => BackstageOp::Config,
        4 => BackstageOp::MempoolLen,
        5 => BackstageOp::TotalSupply,
        6 => BackstageOp::Burned,
        7 => BackstageOp::ReceiptOf {
            hash: r.h256("receipt-of hash")?,
        },
        8 => BackstageOp::IsPending {
            hash: r.h256("is-pending hash")?,
        },
        9 => BackstageOp::BalanceOf {
            address: r.h160("balance-of address")?,
        },
        10 => BackstageOp::BaseFee,
        11 => BackstageOp::SpawnIpfsNode {
            label: r.string("spawn node label")?,
        },
        12 => BackstageOp::DropIpfsBlock {
            node: r.u64("drop block node")?,
            cid: read_cid(r)?,
        },
        13 => BackstageOp::SwarmHas { cid: read_cid(r)? },
        tag => {
            return Err(CodecError::BadTag {
                reading: "backstage op tag",
                tag,
            })
        }
    })
}

fn write_backstage_reply(w: &mut Writer, reply: &BackstageReply) {
    match reply {
        BackstageReply::Mined(block) => {
            w.u8(0);
            write_block(w, block);
        }
        BackstageReply::SlotAcked => w.u8(1),
        BackstageReply::Height(n) => {
            w.u8(2);
            w.u64(*n);
        }
        BackstageReply::Config(config) => {
            w.u8(3);
            write_chain_config(w, config);
        }
        BackstageReply::MempoolLen(n) => {
            w.u8(4);
            w.u64(*n);
        }
        BackstageReply::Wei(v) => {
            w.u8(5);
            w.u256(v);
        }
        BackstageReply::Receipt(opt) => {
            w.u8(6);
            match opt {
                Some(receipt) => {
                    w.u8(1);
                    write_receipt(w, receipt);
                }
                None => w.u8(0),
            }
        }
        BackstageReply::Flag(flag) => {
            w.u8(7);
            w.u8(*flag as u8);
        }
        BackstageReply::NodeIndex(n) => {
            w.u8(8);
            w.u64(*n);
        }
        BackstageReply::Dropped => w.u8(9),
    }
}

fn read_backstage_reply(r: &mut Reader<'_>) -> Result<BackstageReply, CodecError> {
    Ok(match r.u8("backstage reply tag")? {
        0 => BackstageReply::Mined(Box::new(read_block(r)?)),
        1 => BackstageReply::SlotAcked,
        2 => BackstageReply::Height(r.u64("height")?),
        3 => BackstageReply::Config(read_chain_config(r)?),
        4 => BackstageReply::MempoolLen(r.u64("mempool len")?),
        5 => BackstageReply::Wei(r.u256("wei")?),
        6 => BackstageReply::Receipt(read_option(r, "receipt presence", |r, _| read_receipt(r))?),
        7 => BackstageReply::Flag(read_flag(r, "flag")?),
        8 => BackstageReply::NodeIndex(r.u64("node index")?),
        9 => BackstageReply::Dropped,
        tag => {
            return Err(CodecError::BadTag {
                reading: "backstage reply tag",
                tag,
            })
        }
    })
}

fn write_protocol_error(w: &mut Writer, error: &ProtocolError) {
    match error {
        ProtocolError::Malformed(why) => {
            w.u8(0);
            w.string(why);
        }
        ProtocolError::Unprovisioned => w.u8(1),
        ProtocolError::AlreadyProvisioned => w.u8(2),
        ProtocolError::Unsupported(what) => {
            w.u8(3);
            w.string(what);
        }
        ProtocolError::NoSuchSession(session) => {
            w.u8(4);
            w.u64(*session);
        }
    }
}

fn read_protocol_error(r: &mut Reader<'_>) -> Result<ProtocolError, CodecError> {
    Ok(match r.u8("protocol error tag")? {
        0 => ProtocolError::Malformed(r.string("malformed reason")?),
        1 => ProtocolError::Unprovisioned,
        2 => ProtocolError::AlreadyProvisioned,
        3 => ProtocolError::Unsupported(r.string("unsupported what")?),
        4 => ProtocolError::NoSuchSession(r.u64("missing session")?),
        tag => {
            return Err(CodecError::BadTag {
                reading: "protocol error tag",
                tag,
            })
        }
    })
}

// ----------------------------------------------------------------------
// Frame payload codec + stream framing.
// ----------------------------------------------------------------------

impl Frame {
    /// Encodes the frame payload (tag + body, without the stream header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.write_payload(&mut w);
        w.0
    }

    /// Writes the frame payload (tag + body) into an existing writer — the
    /// allocation-free core shared by [`Frame::encode_payload`] and the
    /// buffer-reusing [`Frame::encode_into`].
    fn write_payload(&self, w: &mut Writer) {
        match self {
            Frame::Provision { chain, genesis } => {
                w.u8(0);
                write_chain_config(w, chain);
                w.u64(genesis.len() as u64);
                for (address, amount) in genesis {
                    w.h160(address);
                    w.u256(amount);
                }
            }
            Frame::Execute(request) => {
                w.u8(1);
                request.write(w);
            }
            Frame::Batch(requests) => {
                w.u8(2);
                w.u64(requests.len() as u64);
                for request in requests {
                    request.write(w);
                }
            }
            Frame::IpfsAdd { node, data } => {
                w.u8(3);
                w.u64(*node);
                w.bytes(data);
            }
            Frame::IpfsCat { node, cid } => {
                w.u8(4);
                w.u64(*node);
                write_cid(w, cid);
            }
            Frame::IpfsPin { node, cid } => {
                w.u8(5);
                w.u64(*node);
                write_cid(w, cid);
            }
            Frame::Backstage(op) => {
                w.u8(6);
                write_backstage_op(w, op);
            }
            Frame::Shutdown => w.u8(7),
            Frame::Request { id, session, frame } => {
                w.u8(8);
                w.u64(*id);
                w.u64(*session);
                w.bytes(&frame.encode_payload());
            }
            Frame::Attach { session } => {
                w.u8(9);
                w.u64(*session);
            }
            Frame::Subscribe { kind } => {
                w.u8(10);
                write_sub_kind(w, kind);
            }
            Frame::Unsubscribe { sub_id } => {
                w.u8(11);
                w.u64(*sub_id);
            }
            Frame::Stats => w.u8(12),
            Frame::Provisioned => w.u8(0x80),
            Frame::Response(response) => {
                w.u8(0x81);
                response.write(w);
            }
            Frame::BatchResponse(responses) => {
                w.u8(0x82);
                w.u64(responses.len() as u64);
                for response in responses {
                    response.write(w);
                }
            }
            Frame::IpfsAdded { cost, result } => {
                w.u8(0x83);
                w.u64(cost.as_micros());
                write_add_result(w, result);
            }
            Frame::IpfsCatted { cost, result } => {
                w.u8(0x84);
                w.u64(cost.as_micros());
                match result {
                    Ok((bytes, stats)) => {
                        w.u8(1);
                        w.bytes(bytes);
                        write_fetch_stats(w, stats);
                    }
                    Err(error) => {
                        w.u8(0);
                        write_ipfs_error(w, error);
                    }
                }
            }
            Frame::IpfsPinned { cost, result } => {
                w.u8(0x85);
                w.u64(cost.as_micros());
                match result {
                    Ok(()) => w.u8(1),
                    Err(error) => {
                        w.u8(0);
                        write_ipfs_error(w, error);
                    }
                }
            }
            Frame::BackstageReply(reply) => {
                w.u8(0x86);
                write_backstage_reply(w, reply);
            }
            Frame::Error(error) => {
                w.u8(0x87);
                write_protocol_error(w, error);
            }
            Frame::Goodbye => w.u8(0x88),
            Frame::Reply { id, frame } => {
                w.u8(0x89);
                w.u64(*id);
                w.bytes(&frame.encode_payload());
            }
            Frame::Attached { height } => {
                w.u8(0x8A);
                w.u64(*height);
            }
            Frame::Subscribed { sub_id } => {
                w.u8(0x8B);
                w.u64(*sub_id);
            }
            Frame::Notify {
                session,
                sub_id,
                seq,
                event,
            } => {
                w.u8(0x8C);
                w.u64(*session);
                w.u64(*sub_id);
                w.u64(*seq);
                write_sub_event(w, event);
            }
            Frame::Unsubscribed { sub_id } => {
                w.u8(0x8D);
                w.u64(*sub_id);
            }
            Frame::Ping => w.u8(0x8E),
            Frame::StatsReply {
                sessions,
                workers_reaped,
                accept_backoffs,
                frames_served,
                metrics,
            } => {
                w.u8(0x8F);
                w.u64(*sessions);
                w.u64(*workers_reaped);
                w.u64(*accept_backoffs);
                w.u64(*frames_served);
                w.u64(metrics.len() as u64);
                for (name, value) in metrics {
                    w.string(name);
                    w.u64(*value);
                }
            }
        }
    }

    /// Decodes a frame payload (tag + body). Trailing bytes are an error.
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, CodecError> {
        let _t = PhaseTimer::start(HotPhase::Codec);
        ofl_trace::trace_event!(
            ofl_trace::Category::Codec,
            "frame.decode",
            "bytes" => payload.len(),
        );
        Frame::decode_payload_at(payload, true)
    }

    /// The payload decoder proper. `envelope` gates the
    /// [`Frame::Request`]/[`Frame::Reply`] wrapper tags: the protocol is
    /// flat (an envelope carries exactly one plain frame), so nested
    /// payloads decode with `envelope = false` and a wrapper-in-wrapper is
    /// a typed codec error rather than unbounded recursion.
    fn decode_payload_at(payload: &[u8], envelope: bool) -> Result<Frame, CodecError> {
        let mut r = Reader::new(payload);
        let frame = match r.u8("frame tag")? {
            0 => {
                let chain = read_chain_config(&mut r)?;
                let n = r.u64("genesis count")?;
                check_count(n, &r, "genesis count")?;
                let mut genesis = bounded_vec(n);
                for _ in 0..n {
                    genesis.push((r.h160("genesis address")?, r.u256("genesis amount")?));
                }
                Frame::Provision { chain, genesis }
            }
            1 => Frame::Execute(RpcRequest::read(&mut r)?),
            2 => {
                let n = r.u64("batch count")?;
                check_count(n, &r, "batch count")?;
                let mut requests = bounded_vec(n);
                for _ in 0..n {
                    requests.push(RpcRequest::read(&mut r)?);
                }
                Frame::Batch(requests)
            }
            3 => Frame::IpfsAdd {
                node: r.u64("ipfs add node")?,
                data: r.bytes("ipfs add data")?,
            },
            4 => Frame::IpfsCat {
                node: r.u64("ipfs cat node")?,
                cid: read_cid(&mut r)?,
            },
            5 => Frame::IpfsPin {
                node: r.u64("ipfs pin node")?,
                cid: read_cid(&mut r)?,
            },
            6 => Frame::Backstage(read_backstage_op(&mut r)?),
            7 => Frame::Shutdown,
            8 if envelope => {
                let id = r.u64("request id")?;
                let session = r.u64("request session")?;
                let inner = r.bytes("request inner frame")?;
                Frame::Request {
                    id,
                    session,
                    frame: Box::new(Frame::decode_payload_at(&inner, false)?),
                }
            }
            9 => Frame::Attach {
                session: r.u64("attach session")?,
            },
            10 => Frame::Subscribe {
                kind: read_sub_kind(&mut r)?,
            },
            11 => Frame::Unsubscribe {
                sub_id: r.u64("unsubscribe id")?,
            },
            12 => Frame::Stats,
            0x80 => Frame::Provisioned,
            0x81 => Frame::Response(RpcResponse::read(&mut r)?),
            0x82 => {
                let n = r.u64("batch response count")?;
                check_count(n, &r, "batch response count")?;
                let mut responses = bounded_vec(n);
                for _ in 0..n {
                    responses.push(RpcResponse::read(&mut r)?);
                }
                Frame::BatchResponse(responses)
            }
            0x83 => Frame::IpfsAdded {
                cost: SimDuration::from_micros(r.u64("ipfs add cost")?),
                result: read_add_result(&mut r)?,
            },
            0x84 => {
                let cost = SimDuration::from_micros(r.u64("ipfs cat cost")?);
                let result = match r.u8("ipfs cat outcome")? {
                    1 => {
                        let bytes = r.bytes("ipfs cat bytes")?;
                        Ok((bytes, read_fetch_stats(&mut r)?))
                    }
                    0 => Err(read_ipfs_error(&mut r)?),
                    tag => {
                        return Err(CodecError::BadTag {
                            reading: "ipfs cat outcome",
                            tag,
                        })
                    }
                };
                Frame::IpfsCatted { cost, result }
            }
            0x85 => {
                let cost = SimDuration::from_micros(r.u64("ipfs pin cost")?);
                let result = match r.u8("ipfs pin outcome")? {
                    1 => Ok(()),
                    0 => Err(read_ipfs_error(&mut r)?),
                    tag => {
                        return Err(CodecError::BadTag {
                            reading: "ipfs pin outcome",
                            tag,
                        })
                    }
                };
                Frame::IpfsPinned { cost, result }
            }
            0x86 => Frame::BackstageReply(read_backstage_reply(&mut r)?),
            0x87 => Frame::Error(read_protocol_error(&mut r)?),
            0x88 => Frame::Goodbye,
            0x89 if envelope => {
                let id = r.u64("reply id")?;
                let inner = r.bytes("reply inner frame")?;
                Frame::Reply {
                    id,
                    frame: Box::new(Frame::decode_payload_at(&inner, false)?),
                }
            }
            0x8A => Frame::Attached {
                height: r.u64("attached height")?,
            },
            0x8B => Frame::Subscribed {
                sub_id: r.u64("subscribed id")?,
            },
            0x8C => Frame::Notify {
                session: r.u64("notify session")?,
                sub_id: r.u64("notify sub id")?,
                seq: r.u64("notify seq")?,
                event: read_sub_event(&mut r)?,
            },
            0x8D => Frame::Unsubscribed {
                sub_id: r.u64("unsubscribed id")?,
            },
            0x8E => Frame::Ping,
            0x8F => {
                let sessions = r.u64("stats sessions")?;
                let workers_reaped = r.u64("stats workers reaped")?;
                let accept_backoffs = r.u64("stats accept backoffs")?;
                let frames_served = r.u64("stats frames served")?;
                let n = r.u64("stats metric count")?;
                check_count(n, &r, "stats metric count")?;
                let mut metrics = bounded_vec(n);
                for _ in 0..n {
                    let name = r.string("stats metric name")?;
                    let value = r.u64("stats metric value")?;
                    metrics.push((name, value));
                }
                Frame::StatsReply {
                    sessions,
                    workers_reaped,
                    accept_backoffs,
                    frames_served,
                    metrics,
                }
            }
            tag => {
                return Err(CodecError::BadTag {
                    reading: "frame tag",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(frame)
    }

    /// Encodes the complete wire form (magic, version, length, payload)
    /// into `out`, **replacing** its contents but reusing its allocation —
    /// a transport that keeps one scratch buffer stops allocating per
    /// frame. Refuses payloads past [`MAX_FRAME_BYTES`] — the peer would
    /// reject them anyway, and a u32 length prefix cannot even represent a
    /// multi-GiB payload without desyncing the stream.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), FrameError> {
        let _t = PhaseTimer::start(HotPhase::Codec);
        out.clear();
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        // Serialize the payload straight after the header, then backpatch
        // the length — no intermediate payload vector.
        let mut w = Writer(std::mem::take(out));
        self.write_payload(&mut w);
        *out = w.0;
        let payload_len = out.len() - 8;
        if payload_len > MAX_FRAME_BYTES as usize {
            return Err(FrameError::TooLarge {
                declared: payload_len.min(u32::MAX as usize) as u32,
            });
        }
        out[4..8].copy_from_slice(&(payload_len as u32).to_le_bytes());
        ofl_trace::trace_event!(
            ofl_trace::Category::Codec,
            "frame.encode",
            "bytes" => payload_len,
        );
        Ok(())
    }

    /// Encodes the complete wire form: magic, version, length, payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Writes the complete wire form to a stream, refusing oversized
    /// payloads **before** any bytes hit the wire (see
    /// [`Frame::encode_into`]).
    pub fn write_to(&self, stream: &mut impl Write) -> Result<(), FrameError> {
        let mut wire = Vec::new();
        self.encode_into(&mut wire)?;
        stream
            .write_all(&wire)
            .and_then(|_| stream.flush())
            .map_err(|e| FrameError::Io(e.to_string()))
    }

    /// Reads exactly one frame from a stream, validating magic, version,
    /// and the length cap before touching the payload.
    pub fn read_from(stream: &mut impl Read) -> Result<Frame, FrameError> {
        let mut header = [0u8; 8];
        // A read deadline elapsing before the *header* starts means a quiet
        // peer, not a broken one — surface it as Timeout so an idle-timeout
        // daemon can probe instead of reap. Mid-frame timeouts (payload
        // below) stay Io: the stream position is lost either way.
        stream.read_exact(&mut header).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                FrameError::Timeout
            } else {
                FrameError::Io(e.to_string())
            }
        })?;
        let magic = u16::from_le_bytes([header[0], header[1]]);
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic { got: magic });
        }
        let declared = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if declared > MAX_FRAME_BYTES {
            return Err(FrameError::TooLarge { declared });
        }
        // The payload is consumed even on a version mismatch, so the stream
        // stays frame-synced and a server can answer the mismatch in-band.
        let mut payload = vec![0u8; declared as usize];
        stream
            .read_exact(&mut payload)
            .map_err(|e| FrameError::Io(e.to_string()))?;
        let version = u16::from_le_bytes([header[2], header[3]]);
        if version != PROTOCOL_VERSION {
            return Err(FrameError::Version { got: version });
        }
        Ok(Frame::decode_payload(&payload)?)
    }

    /// Decodes one complete wire-form frame from a byte slice, returning
    /// the frame and how many bytes it consumed (the in-memory pipe's
    /// entry point; streams use [`Frame::read_from`]).
    pub fn decode(raw: &[u8]) -> Result<(Frame, usize), FrameError> {
        let mut cursor = raw;
        let before = cursor.len();
        let frame = Frame::read_from(&mut cursor)?;
        Ok((frame, before - cursor.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{RpcMethod, RpcResult};
    use ofl_primitives::H256;

    fn cid_of(data: &[u8]) -> Cid {
        Cid::v0_of(data)
    }

    #[test]
    fn frames_roundtrip_through_the_full_wire_form() {
        let frames = vec![
            Frame::Provision {
                chain: ChainConfig::default(),
                genesis: vec![(H160::from_slice(&[3; 20]), U256::from(7u64))],
            },
            Frame::Execute(RpcRequest::new(9, RpcMethod::BlockNumber)),
            Frame::Batch(vec![
                RpcRequest::new(0, RpcMethod::ChainId),
                RpcRequest::new(
                    1,
                    RpcMethod::GetTransactionReceipt {
                        hash: H256::from_bytes([4; 32]),
                    },
                ),
            ]),
            Frame::IpfsAdd {
                node: 2,
                data: vec![1, 2, 3],
            },
            Frame::IpfsCat {
                node: 0,
                cid: cid_of(b"model"),
            },
            Frame::IpfsPin {
                node: 1,
                cid: cid_of(b"model"),
            },
            Frame::Backstage(BackstageOp::MineSlot { slot_secs: 24 }),
            Frame::Backstage(BackstageOp::SpawnIpfsNode {
                label: "owner-3".into(),
            }),
            Frame::Shutdown,
            Frame::Provisioned,
            Frame::Response(RpcResponse {
                id: 9,
                result: Ok(RpcResult::BlockNumber(4)),
                cost: SimDuration::from_millis(3),
            }),
            Frame::IpfsPinned {
                cost: SimDuration::ZERO,
                result: Err(IpfsError::BlockUnavailable(cid_of(b"gone"))),
            },
            Frame::IpfsAdded {
                cost: SimDuration::from_millis(2),
                result: AddResult {
                    root: cid_of(b"model"),
                    blocks: 3,
                    bytes_stored: 700,
                    file_size: 640,
                },
            },
            Frame::IpfsCatted {
                cost: SimDuration::from_millis(5),
                result: Ok((
                    vec![9, 9, 9],
                    FetchStats {
                        blocks_fetched: 3,
                        bytes_fetched: 700,
                        rounds: 2,
                        providers: [("owner-1".to_string(), 2), ("owner-2".to_string(), 1)]
                            .into_iter()
                            .collect(),
                    },
                )),
            },
            Frame::IpfsCatted {
                cost: SimDuration::ZERO,
                result: Err(IpfsError::BlockUnavailable(cid_of(b"gone"))),
            },
            Frame::BackstageReply(BackstageReply::Flag(true)),
            Frame::Error(ProtocolError::Unprovisioned),
            Frame::Error(ProtocolError::NoSuchSession(7)),
            Frame::Goodbye,
            Frame::Request {
                id: 42,
                session: 3,
                frame: Box::new(Frame::Execute(RpcRequest::new(9, RpcMethod::BlockNumber))),
            },
            Frame::Attach { session: 3 },
            Frame::Reply {
                id: 42,
                frame: Box::new(Frame::BackstageReply(BackstageReply::Height(11))),
            },
            Frame::Attached { height: 11 },
            Frame::Subscribe {
                kind: SubscriptionKind::NewHeads,
            },
            Frame::Subscribe {
                kind: SubscriptionKind::Logs {
                    filter: LogFilter::all()
                        .at_address(H160::from_slice(&[7; 20]))
                        .with_topic(H256::from_bytes([8; 32])),
                },
            },
            Frame::Subscribe {
                kind: SubscriptionKind::PendingTxs,
            },
            Frame::Unsubscribe { sub_id: 2 },
            Frame::Subscribed { sub_id: 2 },
            Frame::Notify {
                session: 3,
                sub_id: 2,
                seq: 17,
                event: SubEvent::NewHead(Box::new(Block {
                    header: Header {
                        parent_hash: H256::from_bytes([1; 32]),
                        number: 5,
                        timestamp: 60,
                        coinbase: H160::from_slice(&[2; 20]),
                        gas_used: 21_000,
                        gas_limit: 30_000_000,
                        base_fee: U256::from(7u64),
                        tx_root: H256::from_bytes([3; 32]),
                        bloom: Bloom::default(),
                    },
                    tx_hashes: vec![H256::from_bytes([4; 32])],
                })),
            },
            Frame::Notify {
                session: 0,
                sub_id: 1,
                seq: 18,
                event: SubEvent::Log(FilteredLog {
                    block_number: 5,
                    tx_hash: H256::from_bytes([4; 32]),
                    log_index: 0,
                    log: ofl_eth::evm::LogEntry {
                        address: H160::from_slice(&[7; 20]),
                        topics: vec![H256::from_bytes([8; 32])],
                        data: vec![1, 2, 3],
                    },
                }),
            },
            Frame::Notify {
                session: 1,
                sub_id: 4,
                seq: 19,
                event: SubEvent::PendingTx(PendingTxEvent {
                    hash: H256::from_bytes([9; 32]),
                    sender: H160::from_slice(&[10; 20]),
                    to: Some(H160::from_slice(&[11; 20])),
                    selector: Some([0xde, 0xad, 0xbe, 0xef]),
                    tip: U256::from(12u64),
                    nonce: 13,
                }),
            },
            Frame::Notify {
                session: 1,
                sub_id: 4,
                seq: 20,
                event: SubEvent::PendingTx(PendingTxEvent {
                    hash: H256::from_bytes([9; 32]),
                    sender: H160::from_slice(&[10; 20]),
                    to: None,
                    selector: None,
                    tip: U256::from(0u64),
                    nonce: 0,
                }),
            },
            Frame::Unsubscribed { sub_id: 2 },
            Frame::Ping,
            Frame::Stats,
            Frame::StatsReply {
                sessions: 3,
                workers_reaped: 7,
                accept_backoffs: 1,
                frames_served: 900,
                metrics: vec![
                    ("rpcd.sessions".to_string(), 3),
                    ("sub.queue_depth.1".to_string(), 12),
                ],
            },
        ];
        for frame in frames {
            let wire = frame.encode();
            let (decoded, consumed) = Frame::decode(&wire).expect("decodes");
            assert_eq!(consumed, wire.len());
            assert_eq!(decoded, frame);
        }
    }

    /// Every [`BackstageOp`] variant survives the wire. Keep this list
    /// exhaustive — `ofl-lint` rule W1 checks each variant appears in a
    /// round-trip test.
    #[test]
    fn every_backstage_op_roundtrips() {
        let ops = vec![
            BackstageOp::MineSlot { slot_secs: 36 },
            BackstageOp::SlotElapsed,
            BackstageOp::Height,
            BackstageOp::Config,
            BackstageOp::MempoolLen,
            BackstageOp::TotalSupply,
            BackstageOp::Burned,
            BackstageOp::ReceiptOf {
                hash: H256::from_bytes([7; 32]),
            },
            BackstageOp::IsPending {
                hash: H256::from_bytes([8; 32]),
            },
            BackstageOp::BalanceOf {
                address: H160::from_slice(&[9; 20]),
            },
            BackstageOp::BaseFee,
            BackstageOp::SpawnIpfsNode {
                label: "owner-7".into(),
            },
            BackstageOp::DropIpfsBlock {
                node: 4,
                cid: cid_of(b"weights"),
            },
            BackstageOp::SwarmHas {
                cid: cid_of(b"weights"),
            },
        ];
        for op in ops {
            let frame = Frame::Backstage(op);
            let wire = frame.encode();
            let (decoded, consumed) = Frame::decode(&wire).expect("decodes");
            assert_eq!(consumed, wire.len());
            assert_eq!(decoded, frame);
        }
    }

    /// Every [`BackstageReply`] variant survives the wire (W1-checked,
    /// like the ops above).
    #[test]
    fn every_backstage_reply_roundtrips() {
        use ofl_eth::block::{Receipt, TxStatus};
        let block = Block {
            header: Header {
                parent_hash: H256::from_bytes([1; 32]),
                number: 12,
                timestamp: 144,
                coinbase: H160::from_slice(&[2; 20]),
                gas_used: 42_000,
                gas_limit: 30_000_000,
                base_fee: U256::from(7u64),
                tx_root: H256::from_bytes([3; 32]),
                bloom: Bloom::default(),
            },
            tx_hashes: vec![H256::from_bytes([4; 32])],
        };
        let receipt = Receipt {
            tx_hash: H256::from_bytes([4; 32]),
            status: TxStatus::Success,
            gas_used: 21_000,
            effective_gas_price: U256::from(11u64),
            fee: U256::from(231_000u64),
            contract_address: Some(H160::from_slice(&[5; 20])),
            logs: Vec::new(),
            block_number: 12,
            output: vec![0xAA],
        };
        let replies = vec![
            BackstageReply::Mined(Box::new(block)),
            BackstageReply::SlotAcked,
            BackstageReply::Height(12),
            BackstageReply::Config(ChainConfig::default()),
            BackstageReply::MempoolLen(3),
            BackstageReply::Wei(U256::from(1_000_000u64)),
            BackstageReply::Receipt(Some(receipt)),
            BackstageReply::Receipt(None),
            BackstageReply::Flag(false),
            BackstageReply::NodeIndex(6),
            BackstageReply::Dropped,
        ];
        for reply in replies {
            let frame = Frame::BackstageReply(reply);
            let wire = frame.encode();
            let (decoded, consumed) = Frame::decode(&wire).expect("decodes");
            assert_eq!(consumed, wire.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn bad_magic_version_and_oversized_frames_are_rejected() {
        let mut wire = Frame::Shutdown.encode();
        wire[0] = 0xFF;
        assert!(matches!(
            Frame::decode(&wire),
            Err(FrameError::BadMagic { .. })
        ));

        let mut wire = Frame::Shutdown.encode();
        wire[2] = 0xFF;
        assert_eq!(
            Frame::decode(&wire),
            Err(FrameError::Version { got: 0x00FF })
        );

        let mut wire = Frame::Shutdown.encode();
        wire[4..8].copy_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert_eq!(
            Frame::decode(&wire),
            Err(FrameError::TooLarge {
                declared: MAX_FRAME_BYTES + 1
            })
        );
    }

    #[test]
    fn nested_envelopes_are_rejected_not_recursed() {
        // The protocol is flat: a Request inside a Request (or a Reply
        // inside a Reply) must decode to a typed error, never recurse.
        let inner = Frame::Request {
            id: 1,
            session: 0,
            frame: Box::new(Frame::Shutdown),
        };
        let nested = Frame::Request {
            id: 2,
            session: 0,
            frame: Box::new(inner),
        };
        assert!(matches!(
            Frame::decode(&nested.encode()),
            Err(FrameError::Codec(CodecError::BadTag { tag: 8, .. }))
        ));
        let reply_nested = Frame::Reply {
            id: 2,
            frame: Box::new(Frame::Reply {
                id: 1,
                frame: Box::new(Frame::Goodbye),
            }),
        };
        assert!(matches!(
            Frame::decode(&reply_nested.encode()),
            Err(FrameError::Codec(CodecError::BadTag { tag: 0x89, .. }))
        ));
    }

    #[test]
    fn truncated_and_garbage_payloads_are_typed_codec_errors() {
        let wire = Frame::Execute(RpcRequest::new(1, RpcMethod::GasPrice)).encode();
        assert!(matches!(
            Frame::decode(&wire[..wire.len() - 1]),
            Err(FrameError::Io(_)) // length prefix promises more bytes
        ));
        // Garbage *payload* with a valid header decodes to a codec error.
        let garbage = Frame::decode(
            &[
                &FRAME_MAGIC.to_le_bytes()[..],
                &PROTOCOL_VERSION.to_le_bytes()[..],
                &3u32.to_le_bytes()[..],
                &[0xEE, 0x01, 0x02],
            ]
            .concat(),
        );
        assert!(matches!(
            garbage,
            Err(FrameError::Codec(CodecError::BadTag { .. }))
        ));
        // A Notify whose event bytes are cut short is a typed codec error.
        let notify = Frame::Notify {
            session: 0,
            sub_id: 1,
            seq: 2,
            event: SubEvent::PendingTx(PendingTxEvent {
                hash: H256::from_bytes([9; 32]),
                sender: H160::from_slice(&[10; 20]),
                to: None,
                selector: Some([1, 2, 3, 4]),
                tip: U256::from(5u64),
                nonce: 6,
            }),
        };
        let mut payload = notify.encode_payload();
        payload.truncate(payload.len() - 1);
        assert!(matches!(
            Frame::decode_payload(&payload),
            Err(CodecError::Truncated { .. })
        ));
        // A Subscribe with an unknown kind tag is rejected, not guessed.
        let mut payload = Frame::Subscribe {
            kind: SubscriptionKind::PendingTxs,
        }
        .encode_payload();
        *payload.last_mut().unwrap() = 0x77;
        assert!(matches!(
            Frame::decode_payload(&payload),
            Err(CodecError::BadTag {
                reading: "subscription kind tag",
                ..
            })
        ));
    }

    #[test]
    fn a_read_deadline_maps_to_timeout_not_io() {
        // A reader that reports WouldBlock before any byte arrives — what a
        // socket with a read timeout does while the peer is merely quiet.
        struct Quiet;
        impl Read for Quiet {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
            }
        }
        assert_eq!(Frame::read_from(&mut Quiet), Err(FrameError::Timeout));
        // EOF (or any other failure) stays an Io error: the peer is gone.
        let empty: &[u8] = &[];
        assert!(matches!(
            Frame::read_from(&mut { empty }),
            Err(FrameError::Io(_))
        ));
    }
}
