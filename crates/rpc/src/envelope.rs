//! Typed request/response envelopes for the Ethereum JSON-RPC surface.
//!
//! Every provider call travels as an [`RpcRequest`] and comes back as an
//! [`RpcResponse`]. The envelope is what makes the provider boundary thin
//! and swappable: decorators can price, drop, or count requests without
//! knowing what they mean, and a batch of N requests is just a slice — one
//! wire round trip regardless of N.
//!
//! The envelopes also have a canonical wire encoding ([`RpcRequest::encode`]
//! / [`RpcResponse::encode`]) standing in for the JSON framing of a real
//! endpoint; the round-trip property tests in `tests/proptests.rs` pin it.
//! Decoding returns a typed [`CodecError`] on malformed input, so the
//! transport layer (and the `rpcd` daemon built on it) can answer garbage
//! with a protocol error frame instead of dropping the connection.

use crate::codec::{bounded_vec, check_count, read_option, CodecError, Reader, Writer};
use ofl_eth::block::{Receipt, TxStatus};
use ofl_eth::chain::{CallResult, FilteredLog, LogFilter};
use ofl_eth::evm::LogEntry;
use ofl_netsim::clock::SimDuration;
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};

/// One provider call: a correlation id plus the typed method payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcRequest {
    /// Correlation id echoed back in the matching [`RpcResponse`].
    pub id: u64,
    /// The method and its parameters.
    pub method: RpcMethod,
}

impl RpcRequest {
    /// Builds a request.
    pub fn new(id: u64, method: RpcMethod) -> RpcRequest {
        RpcRequest { id, method }
    }
}

/// The JSON-RPC methods the OFL-W3 core needs from a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcMethod {
    /// `eth_sendRawTransaction`: broadcast a signed raw transaction.
    SendRawTransaction {
        /// The `0x02`-typed raw transaction bytes.
        raw: Vec<u8>,
    },
    /// `eth_getTransactionReceipt`: poll for a mined receipt.
    GetTransactionReceipt {
        /// Transaction hash.
        hash: H256,
    },
    /// `eth_call`: free read-only execution.
    Call {
        /// Caller address.
        from: H160,
        /// Contract address.
        to: H160,
        /// ABI calldata.
        data: Vec<u8>,
    },
    /// `eth_getLogs`: filtered event query.
    GetLogs {
        /// Address/topic/block-range filter.
        filter: LogFilter,
    },
    /// `eth_blockNumber`: current chain head.
    BlockNumber,
    /// `eth_getBalance`: account balance.
    GetBalance {
        /// Account queried.
        address: H160,
    },
    /// `eth_getTransactionCount`: account nonce.
    GetTransactionCount {
        /// Account queried.
        address: H160,
    },
    /// `eth_estimateGas`: gas units a prospective transaction would use —
    /// what a wallet calls before signing.
    EstimateGas {
        /// Prospective sender.
        from: H160,
        /// Recipient (`None` = contract deployment).
        to: Option<H160>,
        /// Prospective calldata.
        data: Vec<u8>,
    },
    /// `eth_gasPrice`: the node's gas-price oracle. Our simulated node
    /// reports the current base fee; tips are the wallet's own policy.
    GasPrice,
    /// `eth_chainId`: the chain's replay-protection id.
    ChainId,
}

impl RpcMethod {
    /// The canonical JSON-RPC method name (used as the metering key).
    pub fn name(&self) -> &'static str {
        match self {
            RpcMethod::SendRawTransaction { .. } => "eth_sendRawTransaction",
            RpcMethod::GetTransactionReceipt { .. } => "eth_getTransactionReceipt",
            RpcMethod::Call { .. } => "eth_call",
            RpcMethod::GetLogs { .. } => "eth_getLogs",
            RpcMethod::BlockNumber => "eth_blockNumber",
            RpcMethod::GetBalance { .. } => "eth_getBalance",
            RpcMethod::GetTransactionCount { .. } => "eth_getTransactionCount",
            RpcMethod::EstimateGas { .. } => "eth_estimateGas",
            RpcMethod::GasPrice => "eth_gasPrice",
            RpcMethod::ChainId => "eth_chainId",
        }
    }

    /// Approximate request payload size in bytes (what rides on the wire
    /// beyond the fixed envelope framing) — the latency decorator's input.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            RpcMethod::SendRawTransaction { raw } => raw.len() as u64,
            RpcMethod::GetTransactionReceipt { .. } => 32,
            RpcMethod::Call { data, .. } => 40 + data.len() as u64,
            RpcMethod::GetLogs { .. } => 72,
            RpcMethod::BlockNumber => 0,
            RpcMethod::GetBalance { .. } => 20,
            RpcMethod::GetTransactionCount { .. } => 20,
            RpcMethod::EstimateGas { to, data, .. } => {
                20 + if to.is_some() { 20 } else { 0 } + data.len() as u64
            }
            RpcMethod::GasPrice => 0,
            RpcMethod::ChainId => 0,
        }
    }
}

/// A provider's answer: the echoed id, the typed result (or error), and the
/// virtual time the decorators priced onto this request. Costs are *carried*,
/// never applied — the caller decides which clock or timeline pays.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcResponse {
    /// Correlation id from the request.
    pub id: u64,
    /// Typed result or transport/node error.
    pub result: Result<RpcResult, RpcError>,
    /// Virtual time this request cost (priced by decorators; zero at the
    /// in-process backend).
    pub cost: SimDuration,
}

/// Typed results, one variant per [`RpcMethod`].
#[derive(Debug, Clone, PartialEq)]
pub enum RpcResult {
    /// Hash of an accepted transaction.
    TxHash(H256),
    /// Receipt, or `None` while the transaction is unmined.
    Receipt(Option<Receipt>),
    /// Read-only execution result.
    Call(CallResult),
    /// Matching logs.
    Logs(Vec<FilteredLog>),
    /// Chain height.
    BlockNumber(u64),
    /// Account balance in wei.
    Balance(U256),
    /// Account nonce.
    TransactionCount(u64),
    /// Estimated gas units.
    GasEstimate(u64),
    /// Gas-price oracle answer (the simulated node's current base fee).
    GasPrice(U256),
    /// Chain id.
    ChainId(u64),
}

impl RpcResult {
    /// Approximate response payload size in bytes — the latency decorator's
    /// input for the return leg.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            RpcResult::TxHash(_) => 32,
            RpcResult::Receipt(None) => 8,
            RpcResult::Receipt(Some(r)) => {
                160 + r.output.len() as u64
                    + r.logs
                        .iter()
                        .map(|l| 20 + 32 * l.topics.len() as u64 + l.data.len() as u64)
                        .sum::<u64>()
            }
            RpcResult::Call(c) => 16 + c.output.len() as u64,
            RpcResult::Logs(logs) => logs
                .iter()
                .map(|f| 60 + 32 * f.log.topics.len() as u64 + f.log.data.len() as u64)
                .sum(),
            RpcResult::BlockNumber(_) => 8,
            RpcResult::Balance(_) => 32,
            RpcResult::TransactionCount(_) => 8,
            RpcResult::GasEstimate(_) => 8,
            RpcResult::GasPrice(_) => 32,
            RpcResult::ChainId(_) => 8,
        }
    }
}

/// Transport- and node-level failures. Execution-level failures (reverts)
/// are *not* errors here — they come back as data, exactly as JSON-RPC
/// reports them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// The request was dropped or the provider never answered in time.
    Timeout,
    /// The node rejected the request (bad nonce, underpriced, …).
    Rejected(String),
    /// The endpoint refused the request for quota reasons (HTTP 429); the
    /// priced cost is the client's back-off before it may try again.
    RateLimited,
    /// The response variant did not match the request method.
    UnexpectedResponse,
    /// The wire to an out-of-process endpoint failed (connection error,
    /// protocol error frame, or a malformed reply). Not transient: a broken
    /// socket will not heal inside a retry loop.
    Transport(String),
}

impl core::fmt::Display for RpcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RpcError::Timeout => write!(f, "rpc request timed out"),
            RpcError::Rejected(why) => write!(f, "rpc request rejected: {why}"),
            RpcError::RateLimited => write!(f, "rpc request rate-limited (429)"),
            RpcError::UnexpectedResponse => write!(f, "rpc response shape mismatch"),
            RpcError::Transport(why) => write!(f, "rpc transport failed: {why}"),
        }
    }
}

impl std::error::Error for RpcError {}

// ----------------------------------------------------------------------
// Wire codec. A compact binary framing standing in for JSON-RPC's text
// framing: tag bytes, little-endian u64 lengths, raw hash/address bytes.
// ----------------------------------------------------------------------

impl RpcRequest {
    /// Canonical wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.write(&mut w);
        w.0
    }

    /// Canonical wire encoding into an existing buffer — `out` is
    /// **replaced** but its allocation is reused, so per-message encode
    /// stops allocating on hot paths.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let mut w = Writer(std::mem::take(out));
        self.write(&mut w);
        *out = w.0;
    }

    pub(crate) fn write(&self, w: &mut Writer) {
        w.u64(self.id);
        match &self.method {
            RpcMethod::SendRawTransaction { raw } => {
                w.u8(0);
                w.bytes(raw);
            }
            RpcMethod::GetTransactionReceipt { hash } => {
                w.u8(1);
                w.h256(hash);
            }
            RpcMethod::Call { from, to, data } => {
                w.u8(2);
                w.h160(from);
                w.h160(to);
                w.bytes(data);
            }
            RpcMethod::GetLogs { filter } => {
                w.u8(3);
                w.u64(filter.from_block);
                w.u64(filter.to_block);
                match &filter.address {
                    Some(a) => {
                        w.u8(1);
                        w.h160(a);
                    }
                    None => w.u8(0),
                }
                match &filter.topic {
                    Some(t) => {
                        w.u8(1);
                        w.h256(t);
                    }
                    None => w.u8(0),
                }
            }
            RpcMethod::BlockNumber => w.u8(4),
            RpcMethod::GetBalance { address } => {
                w.u8(5);
                w.h160(address);
            }
            RpcMethod::GetTransactionCount { address } => {
                w.u8(6);
                w.h160(address);
            }
            RpcMethod::EstimateGas { from, to, data } => {
                w.u8(7);
                w.h160(from);
                match to {
                    Some(to) => {
                        w.u8(1);
                        w.h160(to);
                    }
                    None => w.u8(0),
                }
                w.bytes(data);
            }
            RpcMethod::GasPrice => w.u8(8),
            RpcMethod::ChainId => w.u8(9),
        }
    }

    /// Decodes a wire-encoded request; malformed or trailing data comes
    /// back as a typed [`CodecError`].
    pub fn decode(raw: &[u8]) -> Result<RpcRequest, CodecError> {
        let mut r = Reader::new(raw);
        let request = RpcRequest::read(&mut r)?;
        r.finish()?;
        Ok(request)
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<RpcRequest, CodecError> {
        let id = r.u64("request id")?;
        let method = match r.u8("request method tag")? {
            0 => RpcMethod::SendRawTransaction {
                raw: r.bytes("raw transaction")?,
            },
            1 => RpcMethod::GetTransactionReceipt {
                hash: r.h256("receipt hash")?,
            },
            2 => RpcMethod::Call {
                from: r.h160("call from")?,
                to: r.h160("call to")?,
                data: r.bytes("call data")?,
            },
            3 => {
                let from_block = r.u64("filter from_block")?;
                let to_block = r.u64("filter to_block")?;
                let address = read_option(r, "filter address", Reader::h160)?;
                let topic = read_option(r, "filter topic", Reader::h256)?;
                RpcMethod::GetLogs {
                    filter: LogFilter {
                        from_block,
                        to_block,
                        address,
                        topic,
                    },
                }
            }
            4 => RpcMethod::BlockNumber,
            5 => RpcMethod::GetBalance {
                address: r.h160("balance address")?,
            },
            6 => RpcMethod::GetTransactionCount {
                address: r.h160("nonce address")?,
            },
            7 => {
                let from = r.h160("estimate from")?;
                let to = read_option(r, "estimate to", Reader::h160)?;
                RpcMethod::EstimateGas {
                    from,
                    to,
                    data: r.bytes("estimate data")?,
                }
            }
            8 => RpcMethod::GasPrice,
            9 => RpcMethod::ChainId,
            tag => {
                return Err(CodecError::BadTag {
                    reading: "request method tag",
                    tag,
                })
            }
        };
        Ok(RpcRequest { id, method })
    }
}

pub(crate) fn write_log_entry(w: &mut Writer, log: &LogEntry) {
    w.h160(&log.address);
    w.u64(log.topics.len() as u64);
    for t in &log.topics {
        w.h256(t);
    }
    w.bytes(&log.data);
}

pub(crate) fn read_log_entry(r: &mut Reader<'_>) -> Result<LogEntry, CodecError> {
    let address = r.h160("log address")?;
    let n = r.u64("log topic count")?;
    if n > 4 {
        // LOG0–LOG4: any larger count is a malformed payload, not a size
        // problem — report the bogus count as the offending tag.
        return Err(CodecError::BadTag {
            reading: "log topic count (LOG0-LOG4)",
            tag: n.min(u8::MAX as u64) as u8,
        });
    }
    let mut topics = bounded_vec(n);
    for _ in 0..n {
        topics.push(r.h256("log topic")?);
    }
    Ok(LogEntry {
        address,
        topics,
        data: r.bytes("log data")?,
    })
}

pub(crate) fn write_receipt(w: &mut Writer, receipt: &Receipt) {
    w.h256(&receipt.tx_hash);
    w.u8(match receipt.status {
        TxStatus::Success => 0,
        TxStatus::Reverted => 1,
        TxStatus::Failed => 2,
    });
    w.u64(receipt.gas_used);
    w.u256(&receipt.effective_gas_price);
    w.u256(&receipt.fee);
    match &receipt.contract_address {
        Some(a) => {
            w.u8(1);
            w.h160(a);
        }
        None => w.u8(0),
    }
    w.u64(receipt.logs.len() as u64);
    for log in &receipt.logs {
        write_log_entry(w, log);
    }
    w.u64(receipt.block_number);
    w.bytes(&receipt.output);
}

pub(crate) fn read_receipt(r: &mut Reader<'_>) -> Result<Receipt, CodecError> {
    let tx_hash = r.h256("receipt tx hash")?;
    let status = match r.u8("receipt status")? {
        0 => TxStatus::Success,
        1 => TxStatus::Reverted,
        2 => TxStatus::Failed,
        tag => {
            return Err(CodecError::BadTag {
                reading: "receipt status",
                tag,
            })
        }
    };
    let gas_used = r.u64("receipt gas used")?;
    let effective_gas_price = r.u256("receipt gas price")?;
    let fee = r.u256("receipt fee")?;
    let contract_address = read_option(r, "receipt contract address", Reader::h160)?;
    let n_logs = r.u64("receipt log count")?;
    check_count(n_logs, r, "receipt log count")?;
    let mut logs = bounded_vec(n_logs);
    for _ in 0..n_logs {
        logs.push(read_log_entry(r)?);
    }
    Ok(Receipt {
        tx_hash,
        status,
        gas_used,
        effective_gas_price,
        fee,
        contract_address,
        logs,
        block_number: r.u64("receipt block number")?,
        output: r.bytes("receipt output")?,
    })
}

impl RpcResponse {
    /// Canonical wire encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.write(&mut w);
        w.0
    }

    /// Canonical wire encoding into an existing buffer — `out` is
    /// **replaced** but its allocation is reused (see
    /// [`RpcRequest::encode_into`]).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let mut w = Writer(std::mem::take(out));
        self.write(&mut w);
        *out = w.0;
    }

    pub(crate) fn write(&self, w: &mut Writer) {
        w.u64(self.id);
        w.u64(self.cost.as_micros());
        match &self.result {
            Ok(RpcResult::TxHash(h)) => {
                w.u8(0);
                w.h256(h);
            }
            Ok(RpcResult::Receipt(opt)) => {
                w.u8(1);
                match opt {
                    Some(receipt) => {
                        w.u8(1);
                        write_receipt(w, receipt);
                    }
                    None => w.u8(0),
                }
            }
            Ok(RpcResult::Call(c)) => {
                w.u8(2);
                w.u8(c.success as u8);
                w.bytes(&c.output);
                w.u64(c.gas_used);
            }
            Ok(RpcResult::Logs(logs)) => {
                w.u8(3);
                w.u64(logs.len() as u64);
                for f in logs {
                    w.u64(f.block_number);
                    w.h256(&f.tx_hash);
                    w.u64(f.log_index as u64);
                    write_log_entry(w, &f.log);
                }
            }
            Ok(RpcResult::BlockNumber(n)) => {
                w.u8(4);
                w.u64(*n);
            }
            Ok(RpcResult::Balance(b)) => {
                w.u8(5);
                w.u256(b);
            }
            Ok(RpcResult::TransactionCount(n)) => {
                w.u8(6);
                w.u64(*n);
            }
            Ok(RpcResult::GasEstimate(n)) => {
                w.u8(7);
                w.u64(*n);
            }
            Ok(RpcResult::GasPrice(p)) => {
                w.u8(8);
                w.u256(p);
            }
            Ok(RpcResult::ChainId(n)) => {
                w.u8(9);
                w.u64(*n);
            }
            Err(RpcError::Timeout) => w.u8(0x80),
            Err(RpcError::Rejected(why)) => {
                w.u8(0x81);
                w.bytes(why.as_bytes());
            }
            Err(RpcError::UnexpectedResponse) => w.u8(0x82),
            Err(RpcError::RateLimited) => w.u8(0x83),
            Err(RpcError::Transport(why)) => {
                w.u8(0x84);
                w.bytes(why.as_bytes());
            }
        }
    }

    /// Decodes a wire-encoded response; malformed or trailing data comes
    /// back as a typed [`CodecError`] — what lets a daemon answer garbage
    /// with a protocol error frame instead of hanging up.
    pub fn decode(raw: &[u8]) -> Result<RpcResponse, CodecError> {
        let mut r = Reader::new(raw);
        let response = RpcResponse::read(&mut r)?;
        r.finish()?;
        Ok(response)
    }

    pub(crate) fn read(r: &mut Reader<'_>) -> Result<RpcResponse, CodecError> {
        let id = r.u64("response id")?;
        let cost = SimDuration::from_micros(r.u64("response cost")?);
        let result = match r.u8("response result tag")? {
            0 => Ok(RpcResult::TxHash(r.h256("tx hash")?)),
            1 => Ok(RpcResult::Receipt(read_option(
                r,
                "receipt presence",
                |r, _| read_receipt(r),
            )?)),
            2 => {
                let success = match r.u8("call success")? {
                    0 => false,
                    1 => true,
                    tag => {
                        return Err(CodecError::BadTag {
                            reading: "call success",
                            tag,
                        })
                    }
                };
                Ok(RpcResult::Call(CallResult {
                    success,
                    output: r.bytes("call output")?,
                    gas_used: r.u64("call gas used")?,
                }))
            }
            3 => {
                let n = r.u64("log list count")?;
                check_count(n, r, "log list count")?;
                let mut logs = bounded_vec(n);
                for _ in 0..n {
                    logs.push(FilteredLog {
                        block_number: r.u64("filtered log block")?,
                        tx_hash: r.h256("filtered log tx hash")?,
                        log_index: r.u64("filtered log index")? as usize,
                        log: read_log_entry(r)?,
                    });
                }
                Ok(RpcResult::Logs(logs))
            }
            4 => Ok(RpcResult::BlockNumber(r.u64("block number")?)),
            5 => Ok(RpcResult::Balance(r.u256("balance")?)),
            6 => Ok(RpcResult::TransactionCount(r.u64("nonce")?)),
            7 => Ok(RpcResult::GasEstimate(r.u64("gas estimate")?)),
            8 => Ok(RpcResult::GasPrice(r.u256("gas price")?)),
            9 => Ok(RpcResult::ChainId(r.u64("chain id")?)),
            0x80 => Err(RpcError::Timeout),
            0x81 => Err(RpcError::Rejected(r.string("rejection reason")?)),
            0x82 => Err(RpcError::UnexpectedResponse),
            0x83 => Err(RpcError::RateLimited),
            0x84 => Err(RpcError::Transport(r.string("transport reason")?)),
            tag => {
                return Err(CodecError::BadTag {
                    reading: "response result tag",
                    tag,
                })
            }
        };
        Ok(RpcResponse { id, result, cost })
    }
}

/// Pairs a batch's responses back to request order by their correlation
/// tags — what a JSON-RPC client does with a batch reply, whose array order
/// the server promises nothing about.
///
/// Each response claims the first still-unclaimed request carrying its
/// `id`, so duplicate tags pair first-come-first-served and a well-behaved
/// (in-order) server is a no-op. Responses with unknown tags — or any
/// responses left over when the counts disagree — fill the remaining slots
/// in wire order, which degrades to positional matching rather than
/// dropping answers on the floor.
pub fn match_to_requests(requests: &[RpcRequest], responses: Vec<RpcResponse>) -> Vec<RpcResponse> {
    if responses.len() != requests.len() {
        return responses;
    }
    let mut slots: Vec<Option<RpcResponse>> = requests.iter().map(|_| None).collect();
    let mut strays = Vec::new();
    for response in responses {
        let claimed =
            (0..requests.len()).find(|&i| requests[i].id == response.id && slots[i].is_none());
        match claimed {
            Some(i) => slots[i] = Some(response),
            None => strays.push(response),
        }
    }
    let mut strays = strays.into_iter();
    slots
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| strays.next().expect("one stray per empty slot")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_every_variant() {
        let requests = vec![
            RpcRequest::new(
                1,
                RpcMethod::SendRawTransaction {
                    raw: vec![2, 0xf8, 0x01],
                },
            ),
            RpcRequest::new(
                2,
                RpcMethod::GetTransactionReceipt {
                    hash: H256::from_bytes([7; 32]),
                },
            ),
            RpcRequest::new(
                3,
                RpcMethod::Call {
                    from: H160::from_slice(&[1; 20]),
                    to: H160::from_slice(&[2; 20]),
                    data: vec![0xde, 0xad],
                },
            ),
            RpcRequest::new(
                4,
                RpcMethod::GetLogs {
                    filter: LogFilter::all()
                        .in_blocks(3, 9)
                        .at_address(H160::from_slice(&[3; 20])),
                },
            ),
            RpcRequest::new(5, RpcMethod::BlockNumber),
            RpcRequest::new(
                6,
                RpcMethod::GetBalance {
                    address: H160::from_slice(&[4; 20]),
                },
            ),
            RpcRequest::new(
                7,
                RpcMethod::GetTransactionCount {
                    address: H160::from_slice(&[5; 20]),
                },
            ),
            RpcRequest::new(
                8,
                RpcMethod::EstimateGas {
                    from: H160::from_slice(&[6; 20]),
                    to: None,
                    data: vec![0x60, 0x80],
                },
            ),
            RpcRequest::new(
                9,
                RpcMethod::EstimateGas {
                    from: H160::from_slice(&[6; 20]),
                    to: Some(H160::from_slice(&[7; 20])),
                    data: vec![],
                },
            ),
            RpcRequest::new(10, RpcMethod::GasPrice),
            RpcRequest::new(11, RpcMethod::ChainId),
        ];
        for req in requests {
            assert_eq!(RpcRequest::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn response_roundtrip_with_receipt_and_errors() {
        let receipt = Receipt {
            tx_hash: H256::from_bytes([9; 32]),
            status: TxStatus::Reverted,
            gas_used: 23_456,
            effective_gas_price: U256::from(13_500_000_000u64),
            fee: U256::from_u128(316_656_000_000_000),
            contract_address: Some(H160::from_slice(&[8; 20])),
            logs: vec![LogEntry {
                address: H160::from_slice(&[8; 20]),
                topics: vec![H256::from_bytes([1; 32])],
                data: vec![0, 1, 2],
            }],
            block_number: 42,
            output: vec![0x08, 0xc3],
        };
        let responses = vec![
            RpcResponse {
                id: 1,
                result: Ok(RpcResult::Receipt(Some(receipt))),
                cost: SimDuration::from_millis(104),
            },
            RpcResponse {
                id: 2,
                result: Ok(RpcResult::Receipt(None)),
                cost: SimDuration::ZERO,
            },
            RpcResponse {
                id: 3,
                result: Err(RpcError::Timeout),
                cost: SimDuration::from_secs(3),
            },
            RpcResponse {
                id: 4,
                result: Err(RpcError::Rejected("nonce too low".into())),
                cost: SimDuration::from_millis(100),
            },
            RpcResponse {
                id: 5,
                result: Ok(RpcResult::GasEstimate(21_000)),
                cost: SimDuration::ZERO,
            },
            RpcResponse {
                id: 6,
                result: Ok(RpcResult::GasPrice(U256::from(7_000_000_000u64))),
                cost: SimDuration::ZERO,
            },
            RpcResponse {
                id: 7,
                result: Ok(RpcResult::ChainId(11_155_111)),
                cost: SimDuration::ZERO,
            },
            RpcResponse {
                id: 8,
                result: Err(RpcError::RateLimited),
                cost: SimDuration::from_millis(500),
            },
            RpcResponse {
                id: 9,
                result: Err(RpcError::Transport("connection reset".into())),
                cost: SimDuration::ZERO,
            },
        ];
        for resp in responses {
            assert_eq!(RpcResponse::decode(&resp.encode()), Ok(resp));
        }
    }

    #[test]
    fn trailing_bytes_rejected_with_typed_error() {
        let mut raw = RpcRequest::new(1, RpcMethod::BlockNumber).encode();
        raw.push(0);
        assert_eq!(
            RpcRequest::decode(&raw),
            Err(CodecError::TrailingBytes { remaining: 1 })
        );
    }

    #[test]
    fn truncation_and_bad_tags_are_typed() {
        let raw = RpcRequest::new(1, RpcMethod::BlockNumber).encode();
        assert!(matches!(
            RpcRequest::decode(&raw[..raw.len() - 1]),
            Err(CodecError::Truncated { .. })
        ));
        let mut bad = raw.clone();
        bad[8] = 0xEE; // the method tag byte
        assert_eq!(
            RpcRequest::decode(&bad),
            Err(CodecError::BadTag {
                reading: "request method tag",
                tag: 0xEE
            })
        );
        // A declared length far past the payload is an overflow, caught
        // before any allocation.
        let mut resp = Writer::new();
        resp.u64(1); // id
        resp.u64(0); // cost
        resp.u8(0x81); // Rejected
        resp.u64(u64::MAX); // declared string length
        assert!(matches!(
            RpcResponse::decode(&resp.0),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    fn reply(id: u64, height: u64) -> RpcResponse {
        RpcResponse {
            id,
            result: Ok(RpcResult::BlockNumber(height)),
            cost: SimDuration::from_millis(height),
        }
    }

    #[test]
    fn tag_matching_restores_request_order() {
        let requests: Vec<RpcRequest> = [4u64, 9, 7]
            .into_iter()
            .map(|id| RpcRequest::new(id, RpcMethod::BlockNumber))
            .collect();
        // The wire delivered the array shuffled; tags pair answers back.
        let shuffled = vec![reply(7, 30), reply(4, 10), reply(9, 20)];
        let matched = match_to_requests(&requests, shuffled);
        assert_eq!(
            matched.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![4, 9, 7]
        );
        // Each response kept its own result and priced cost.
        assert_eq!(matched[0], reply(4, 10));
        assert_eq!(matched[2], reply(7, 30));
        // An in-order reply is untouched.
        let in_order = vec![reply(4, 10), reply(9, 20), reply(7, 30)];
        assert_eq!(match_to_requests(&requests, in_order.clone()), in_order);
    }

    #[test]
    fn tag_matching_degrades_to_positions_for_strays_and_duplicates() {
        // Duplicate tags claim their requests first-come-first-served.
        let twins: Vec<RpcRequest> = [5u64, 5]
            .into_iter()
            .map(|id| RpcRequest::new(id, RpcMethod::BlockNumber))
            .collect();
        let answers = vec![reply(5, 1), reply(5, 2)];
        assert_eq!(match_to_requests(&twins, answers.clone()), answers);
        // A response with an unknown tag fills the slot its tagged peers
        // left over, in wire order.
        let requests: Vec<RpcRequest> = [1u64, 2]
            .into_iter()
            .map(|id| RpcRequest::new(id, RpcMethod::BlockNumber))
            .collect();
        let matched = match_to_requests(&requests, vec![reply(99, 3), reply(1, 4)]);
        assert_eq!(matched, vec![reply(1, 4), reply(99, 3)]);
        // Mismatched counts pass through untouched.
        let short = vec![reply(1, 4)];
        assert_eq!(match_to_requests(&requests, short.clone()), short);
    }
}
