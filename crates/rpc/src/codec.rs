//! The low-level byte codec shared by the envelope and frame layers:
//! little-endian integers, length-prefixed byte strings, and fixed-width
//! hashes — with **typed** decode errors, so a daemon can answer a
//! malformed frame with a protocol error instead of dropping the
//! connection.

use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};

/// Why a wire payload failed to decode. Every failure names what the
/// decoder was reading, so protocol error frames carry a useful message
/// instead of a bare "malformed".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the named field was complete.
    Truncated {
        /// What was being read when the bytes ran out.
        reading: &'static str,
    },
    /// A declared length exceeds the bytes actually present — the classic
    /// allocation-bomb shape, rejected before any allocation.
    LengthOverflow {
        /// What was being read.
        reading: &'static str,
        /// The declared length.
        declared: u64,
        /// Bytes actually remaining.
        remaining: u64,
    },
    /// A tag byte named no known variant.
    BadTag {
        /// Which tagged union was being read.
        reading: &'static str,
        /// The unrecognized tag.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8 {
        /// Which string field.
        reading: &'static str,
    },
    /// The payload decoded fully but bytes were left over.
    TrailingBytes {
        /// How many bytes remained.
        remaining: u64,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated { reading } => {
                write!(f, "payload truncated while reading {reading}")
            }
            CodecError::LengthOverflow {
                reading,
                declared,
                remaining,
            } => write!(
                f,
                "length of {reading} declares {declared} bytes but only {remaining} remain"
            ),
            CodecError::BadTag { reading, tag } => {
                write!(f, "unknown tag {tag:#04x} while reading {reading}")
            }
            CodecError::BadUtf8 { reading } => write!(f, "invalid utf-8 in {reading}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only wire writer.
pub(crate) struct Writer(pub(crate) Vec<u8>);

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer(Vec::new())
    }
    pub(crate) fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub(crate) fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub(crate) fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    pub(crate) fn string(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }
    pub(crate) fn h160(&mut self, v: &H160) {
        self.0.extend_from_slice(v.as_bytes());
    }
    pub(crate) fn h256(&mut self, v: &H256) {
        self.0.extend_from_slice(v.as_bytes());
    }
    pub(crate) fn u256(&mut self, v: &U256) {
        self.0.extend_from_slice(&v.to_be_bytes());
    }
    pub(crate) fn raw(&mut self, v: &[u8]) {
        self.0.extend_from_slice(v);
    }
}

/// A cursor over a wire payload; every read is bounds-checked and failures
/// name the field being read.
pub(crate) struct Reader<'a> {
    pub(crate) data: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, at: 0 }
    }

    pub(crate) fn remaining(&self) -> u64 {
        (self.data.len() - self.at) as u64
    }

    pub(crate) fn take(&mut self, n: usize, reading: &'static str) -> Result<&'a [u8], CodecError> {
        let slice = self
            .data
            .get(
                self.at
                    ..self
                        .at
                        .checked_add(n)
                        .ok_or(CodecError::Truncated { reading })?,
            )
            .ok_or(CodecError::Truncated { reading })?;
        self.at += n;
        Ok(slice)
    }
    pub(crate) fn u8(&mut self, reading: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, reading)?[0])
    }
    pub(crate) fn u64(&mut self, reading: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8, reading)?
                .try_into()
                .expect("8-byte slice fits u64"),
        ))
    }
    pub(crate) fn bytes(&mut self, reading: &'static str) -> Result<Vec<u8>, CodecError> {
        let len = self.u64(reading)?;
        // Length sanity: never allocate past the remaining input.
        if len > self.remaining() {
            return Err(CodecError::LengthOverflow {
                reading,
                declared: len,
                remaining: self.remaining(),
            });
        }
        Ok(self.take(len as usize, reading)?.to_vec())
    }
    pub(crate) fn string(&mut self, reading: &'static str) -> Result<String, CodecError> {
        String::from_utf8(self.bytes(reading)?).map_err(|_| CodecError::BadUtf8 { reading })
    }
    pub(crate) fn h160(&mut self, reading: &'static str) -> Result<H160, CodecError> {
        Ok(H160::from_slice(self.take(20, reading)?))
    }
    pub(crate) fn h256(&mut self, reading: &'static str) -> Result<H256, CodecError> {
        let mut w = [0u8; 32];
        w.copy_from_slice(self.take(32, reading)?);
        Ok(H256::from_bytes(w))
    }
    pub(crate) fn u256(&mut self, reading: &'static str) -> Result<U256, CodecError> {
        Ok(U256::from_be_slice(self.take(32, reading)?))
    }

    /// Declares the payload complete: trailing bytes are an error.
    pub(crate) fn finish(&self) -> Result<(), CodecError> {
        if self.at == self.data.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

/// Bounds a declared element count by the bytes that could possibly carry
/// it (each element needs at least one byte on this wire).
pub(crate) fn check_count(
    count: u64,
    reader: &Reader<'_>,
    reading: &'static str,
) -> Result<(), CodecError> {
    if count > reader.remaining() {
        return Err(CodecError::LengthOverflow {
            reading,
            declared: count,
            remaining: reader.remaining(),
        });
    }
    Ok(())
}

/// An empty `Vec` whose *pre-reserved* capacity is bounded, however large
/// the declared element count. `check_count` bounds a count by remaining
/// *bytes*, but elements decode to in-memory sizes many times their wire
/// size — an untrusted peer could otherwise turn a 64 MiB frame into a
/// multi-gigabyte `with_capacity` reservation before the first element
/// fails to parse. Past the cap the vec just grows as elements actually
/// decode.
pub(crate) fn bounded_vec<T>(count: u64) -> Vec<T> {
    const MAX_PREALLOC: u64 = 1024;
    Vec::with_capacity(count.min(MAX_PREALLOC) as usize)
}

/// Reads a `0`/`1`-encoded boolean.
pub(crate) fn read_flag(r: &mut Reader<'_>, reading: &'static str) -> Result<bool, CodecError> {
    match r.u8(reading)? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(CodecError::BadTag { reading, tag }),
    }
}

/// Reads a `0`/`1`-tagged optional field.
pub(crate) fn read_option<'a, T>(
    r: &mut Reader<'a>,
    reading: &'static str,
    read: impl FnOnce(&mut Reader<'a>, &'static str) -> Result<T, CodecError>,
) -> Result<Option<T>, CodecError> {
    match r.u8(reading)? {
        0 => Ok(None),
        1 => Ok(Some(read(r, reading)?)),
        tag => Err(CodecError::BadTag { reading, tag }),
    }
}
