//! [`SocketProvider`]: the out-of-process backend client.
//!
//! Implements the same [`EthApi`]/[`IpfsApi`]/[`NodeProvider`] surface as
//! the in-process [`SimProvider`](crate::sim::SimProvider), but every call
//! becomes one [`Frame`] round trip to an `rpcd` daemon: `execute` ships
//! [`Frame::Execute`], `batch` ships the whole slice as **one**
//! [`Frame::Batch`] (so batching semantics — and batch pricing by the
//! decorators above — survive the process boundary unchanged), IPFS calls
//! ship their bytes, and the simulator's backstage ops travel as
//! [`Frame::Backstage`].
//!
//! Because the daemon's bare backend prices nothing (costs come back zero,
//! exactly like a local `SimProvider`), the ordinary client-side decorator
//! stack — `Metered(Latency(Flaky(…)))` — wraps a `SocketProvider`
//! unchanged and prices, faults, and meters remote traffic *identically*
//! to in-process traffic. That is what makes a remote-backed world
//! bit-reproducible against an in-process one.
//!
//! The one thing a socket cannot carry is a Rust reference: the
//! [`NodeProvider::chain`]/[`NodeProvider::swarm`] reference accessors
//! panic here. Simulation drivers reach remote backends exclusively
//! through [`NodeProvider::backstage`] ops.

use crate::backstage::{BackstageOp, BackstageReply};
use crate::envelope::{RpcError, RpcRequest, RpcResponse};
use crate::eth::EthApi;
use crate::frame::{Frame, FrameError};
use crate::ipfs::IpfsApi;
use crate::provider::{decorate, EndpointFaults, NodeProvider};
use crate::sub::{Notification, SubscriptionKind};
use crate::transport::FrameTransport;
use crate::Billed;
use ofl_eth::chain::{Chain, ChainConfig};
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, IpfsError, Swarm};
use ofl_netsim::clock::SimDuration;
use ofl_netsim::link::NetworkProfile;
use ofl_primitives::u256::U256;
use ofl_primitives::H160;

/// How a [`SocketProvider`] ships a batch of requests over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// One [`Frame::Batch`] carrying the whole slice — a single jumbo
    /// round trip. The default, and the PR-5 behaviour.
    Jumbo,
    /// One [`Frame::Request`]-wrapped [`Frame::Execute`] per request, each
    /// awaited before the next is sent: same frames as `Pipelined`, but
    /// one blocking wait per request. The slow baseline the benches
    /// compare against.
    Lockstep,
    /// The same per-request frames as `Lockstep`, but up to `window` kept
    /// in flight at once (v2 request-id pipelining).
    Pipelined {
        /// Requests allowed on the wire before the first reply is awaited.
        window: usize,
    },
}

impl WireMode {
    fn window(self) -> usize {
        match self {
            WireMode::Jumbo | WireMode::Lockstep => 1,
            WireMode::Pipelined { window } => window.max(1),
        }
    }
}

/// A node backend served over a socket (or any frame transport).
pub struct SocketProvider {
    transport: Box<dyn FrameTransport>,
    mode: WireMode,
}

impl SocketProvider {
    /// Wraps a connected transport (jumbo-batch wire mode).
    pub fn new(transport: Box<dyn FrameTransport>) -> SocketProvider {
        SocketProvider::with_mode(transport, WireMode::Jumbo)
    }

    /// Wraps a connected transport with an explicit [`WireMode`].
    pub fn with_mode(transport: Box<dyn FrameTransport>, mode: WireMode) -> SocketProvider {
        SocketProvider { transport, mode }
    }

    /// Asks the daemon to build this connection's backend: a fresh
    /// simulated node with the given chain parameters and genesis.
    pub fn provision(
        &mut self,
        chain: ChainConfig,
        genesis: Vec<(H160, U256)>,
    ) -> Result<(), FrameError> {
        match self.roundtrip(&Frame::Provision { chain, genesis })? {
            Frame::Provisioned => Ok(()),
            Frame::Error(e) => Err(FrameError::Protocol(e)),
            other => Err(FrameError::Io(format!(
                "unexpected provision reply from {}: {other:?}",
                self.transport.peer()
            ))),
        }
    }

    /// Attaches to an already-provisioned session on a persistent daemon
    /// (provisioned by an earlier connection), returning the backend's
    /// current chain height as proof of life.
    pub fn attach(&mut self, session: u64) -> Result<u64, FrameError> {
        match self.roundtrip(&Frame::Attach { session })? {
            Frame::Attached { height } => Ok(height),
            Frame::Error(e) => Err(FrameError::Protocol(e)),
            other => Err(FrameError::Io(format!(
                "unexpected attach reply from {}: {other:?}",
                self.transport.peer()
            ))),
        }
    }

    /// Tells the daemon to close this connection gracefully. Errors are
    /// ignored — the peer may already be gone.
    pub fn shutdown(&mut self) {
        if let Ok(Frame::Goodbye) = self.roundtrip(&Frame::Shutdown) {}
    }

    fn roundtrip(&mut self, frame: &Frame) -> Result<Frame, FrameError> {
        self.transport.send(frame)?;
        self.transport.recv()
    }

    /// A wire/protocol failure rendered as the typed client error.
    fn transport_error(&self, what: &str, error: &FrameError) -> RpcError {
        RpcError::Transport(format!("{what} via {}: {error}", self.transport.peer()))
    }

    /// Backstage and IPFS calls have no in-band error channel (the
    /// simulator cannot meaningfully continue without its substrate), so a
    /// broken wire is fatal there.
    fn must(&mut self, what: &str, frame: &Frame) -> Frame {
        match self.roundtrip(frame) {
            Ok(Frame::Error(e)) => panic!(
                "socket provider: daemon at {} refused {what}: {e}",
                self.transport.peer()
            ),
            Ok(reply) => reply,
            Err(e) => panic!(
                "socket provider: {what} via {} failed: {e}",
                self.transport.peer()
            ),
        }
    }
}

impl EthApi for SocketProvider {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        match self.roundtrip(&Frame::Execute(request.clone())) {
            Ok(Frame::Response(response)) => response,
            Ok(Frame::Error(e)) => RpcResponse {
                id: request.id,
                result: Err(self.transport_error("execute", &FrameError::Protocol(e))),
                cost: SimDuration::ZERO,
            },
            Ok(other) => RpcResponse {
                id: request.id,
                result: Err(RpcError::Transport(format!(
                    "unexpected execute reply: {other:?}"
                ))),
                cost: SimDuration::ZERO,
            },
            Err(e) => RpcResponse {
                id: request.id,
                result: Err(self.transport_error("execute", &e)),
                cost: SimDuration::ZERO,
            },
        }
    }

    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        let fail = |error: RpcError| -> Vec<RpcResponse> {
            requests
                .iter()
                .map(|r| RpcResponse {
                    id: r.id,
                    result: Err(error.clone()),
                    cost: SimDuration::ZERO,
                })
                .collect()
        };
        if self.mode != WireMode::Jumbo {
            // Per-request frames, window-in-flight (window 1 = lockstep).
            let frames: Vec<Frame> = requests.iter().map(|r| Frame::Execute(r.clone())).collect();
            let replies = match self.transport.roundtrip_many(&frames, self.mode.window()) {
                Ok(replies) => replies,
                Err(e) => return fail(self.transport_error("pipelined batch", &e)),
            };
            return requests
                .iter()
                .zip(replies)
                .map(|(request, reply)| match reply {
                    Frame::Response(response) => response,
                    Frame::Error(e) => RpcResponse {
                        id: request.id,
                        result: Err(
                            self.transport_error("pipelined batch", &FrameError::Protocol(e))
                        ),
                        cost: SimDuration::ZERO,
                    },
                    other => RpcResponse {
                        id: request.id,
                        result: Err(RpcError::Transport(format!(
                            "unexpected pipelined batch reply: {other:?}"
                        ))),
                        cost: SimDuration::ZERO,
                    },
                })
                .collect();
        }
        match self.roundtrip(&Frame::Batch(requests.to_vec())) {
            Ok(Frame::BatchResponse(responses)) if responses.len() == requests.len() => responses,
            Ok(Frame::BatchResponse(responses)) => fail(RpcError::Transport(format!(
                "batch answered {} of {} requests",
                responses.len(),
                requests.len()
            ))),
            Ok(Frame::Error(e)) => fail(self.transport_error("batch", &FrameError::Protocol(e))),
            Ok(other) => fail(RpcError::Transport(format!(
                "unexpected batch reply: {other:?}"
            ))),
            Err(e) => fail(self.transport_error("batch", &e)),
        }
    }
}

impl IpfsApi for SocketProvider {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        match self.must(
            "ipfs add",
            &Frame::IpfsAdd {
                node: node as u64,
                data: data.to_vec(),
            },
        ) {
            Frame::IpfsAdded { cost, result } => Billed {
                value: result,
                cost,
            },
            other => panic!("socket provider: unexpected ipfs add reply: {other:?}"),
        }
    }

    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        match self.must(
            "ipfs cat",
            &Frame::IpfsCat {
                node: node as u64,
                cid: cid.clone(),
            },
        ) {
            Frame::IpfsCatted { cost, result } => Billed {
                value: result,
                cost,
            },
            other => panic!("socket provider: unexpected ipfs cat reply: {other:?}"),
        }
    }

    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        match self.must(
            "ipfs pin",
            &Frame::IpfsPin {
                node: node as u64,
                cid: cid.clone(),
            },
        ) {
            Frame::IpfsPinned { cost, result } => Billed {
                value: result,
                cost,
            },
            other => panic!("socket provider: unexpected ipfs pin reply: {other:?}"),
        }
    }
}

impl NodeProvider for SocketProvider {
    fn chain(&self) -> &Chain {
        panic!(
            "socket provider ({}): reference access to a remote chain is impossible; \
             use NodeProvider::backstage ops",
            self.transport.peer()
        )
    }
    fn chain_mut(&mut self) -> &mut Chain {
        panic!(
            "socket provider ({}): reference access to a remote chain is impossible; \
             use NodeProvider::backstage ops",
            self.transport.peer()
        )
    }
    fn swarm(&self) -> &Swarm {
        panic!(
            "socket provider ({}): reference access to a remote swarm is impossible; \
             use NodeProvider::backstage ops",
            self.transport.peer()
        )
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        panic!(
            "socket provider ({}): reference access to a remote swarm is impossible; \
             use NodeProvider::backstage ops",
            self.transport.peer()
        )
    }
    fn on_slot(&mut self) {
        self.backstage(&BackstageOp::SlotElapsed);
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        match self.must("backstage op", &Frame::Backstage(op.clone())) {
            Frame::BackstageReply(reply) => reply,
            other => panic!("socket provider: unexpected backstage reply: {other:?}"),
        }
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        match self.must("subscribe", &Frame::Subscribe { kind }) {
            Frame::Subscribed { sub_id } => sub_id,
            other => panic!("socket provider: unexpected subscribe reply: {other:?}"),
        }
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        match self.must("unsubscribe", &Frame::Unsubscribe { sub_id }) {
            Frame::Unsubscribed { sub_id: echoed } => echoed == sub_id,
            other => panic!("socket provider: unexpected unsubscribe reply: {other:?}"),
        }
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        // The daemon writes pushes ahead of the replies that caused them,
        // so everything published up to the last round trip is already in
        // the transport's push buffer — no extra wire exchange needed.
        self.transport
            .drain_pushes()
            .into_iter()
            .filter_map(|frame| match frame {
                Frame::Notify {
                    sub_id, seq, event, ..
                } => Some(Notification { sub_id, seq, event }),
                _ => None,
            })
            .collect()
    }
}

/// Provisions a daemon connection with a chain + genesis and wraps it in
/// the standard client-side decorator stack — the remote twin of
/// [`build_provider`](crate::provider::build_provider), so a remote
/// endpoint faults, throttles, prices, and meters exactly like an
/// in-process one. Every mount path (a world's `ShardSpec::Remote`, a
/// test's pipe-backed shard, a bench's boundary run) goes through here.
pub fn provision_socket_provider(
    transport: Box<dyn FrameTransport>,
    chain: ChainConfig,
    genesis: Vec<(H160, U256)>,
    profile: NetworkProfile,
    envelope_bytes: u64,
    knobs: EndpointFaults,
) -> Result<Box<dyn NodeProvider>, FrameError> {
    provision_socket_provider_via(
        transport,
        chain,
        genesis,
        profile,
        envelope_bytes,
        knobs,
        WireMode::Jumbo,
    )
}

/// [`provision_socket_provider`] with an explicit [`WireMode`] — the mount
/// path for lockstep/pipelined load runs, where the wire discipline (not
/// just the endpoint) is part of the experiment.
#[allow(clippy::too_many_arguments)]
pub fn provision_socket_provider_via(
    transport: Box<dyn FrameTransport>,
    chain: ChainConfig,
    genesis: Vec<(H160, U256)>,
    profile: NetworkProfile,
    envelope_bytes: u64,
    knobs: EndpointFaults,
    mode: WireMode,
) -> Result<Box<dyn NodeProvider>, FrameError> {
    let mut socket = SocketProvider::with_mode(transport, mode);
    socket.provision(chain, genesis)?;
    Ok(decorate(Box::new(socket), profile, envelope_bytes, knobs))
}
