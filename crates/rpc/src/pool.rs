//! [`ProviderPool`]: N independent node endpoints behind one handle — the
//! sharded substrate a multi-market world runs on.
//!
//! Each endpoint is a full [`NodeProvider`] stack (its own chain, swarm,
//! and decorators), addressed by [`EndpointId`]. Markets are *placed* on an
//! endpoint and all of their client traffic — contract calls, transaction
//! broadcasts, receipt polls, IPFS transfers — flows through that endpoint
//! alone, so two markets on different shards contend for different blocks
//! while two markets on the same shard share a mempool exactly as a
//! single-endpoint world would.
//!
//! The pool adds two things on top of per-endpoint access:
//!
//! - [`ProviderPool::batch`]: a tagged fan-out — requests addressed to
//!   several endpoints are grouped and each group travels as **one** wire
//!   round trip to its endpoint, with responses scattered back in request
//!   order. This is how the engine polls every pending receipt across all
//!   shards in one pass.
//! - Metrics rollup: [`ProviderPool::metrics_per_endpoint`] exposes each
//!   endpoint's [`MeteredProvider`](crate::decorators::MeteredProvider)
//!   snapshot and [`ProviderPool::metrics_merged`] absorbs them into one
//!   run-level [`ProviderMetrics`].

use crate::backstage::{BackstageOp, BackstageReply};
use crate::decorators::ProviderMetrics;
use crate::envelope::{RpcRequest, RpcResponse};
use crate::provider::NodeProvider;
use crate::sub::Notification;
use ofl_netsim::par::fork_join_mut;

/// Addresses one endpoint (shard) of a [`ProviderPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EndpointId(pub usize);

impl core::fmt::Display for EndpointId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// N node endpoints, one handle. See the module docs.
pub struct ProviderPool {
    endpoints: Vec<Box<dyn NodeProvider>>,
}

impl ProviderPool {
    /// Builds a pool from at least one endpoint stack; endpoint `i` answers
    /// to `EndpointId(i)`.
    pub fn new(endpoints: Vec<Box<dyn NodeProvider>>) -> ProviderPool {
        assert!(!endpoints.is_empty(), "a pool needs at least one endpoint");
        ProviderPool { endpoints }
    }

    /// How many endpoints the pool fronts.
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }

    /// True only for a pool that lost its endpoints (impossible by
    /// construction; present for the usual `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }

    /// Every valid id, in order.
    pub fn endpoint_ids(&self) -> impl Iterator<Item = EndpointId> {
        (0..self.endpoints.len()).map(EndpointId)
    }

    /// Mutable access to one endpoint's provider stack.
    pub fn endpoint(&mut self, id: EndpointId) -> &mut dyn NodeProvider {
        &mut *self.endpoints[id.0]
    }

    /// Shared access to one endpoint's provider stack.
    pub fn get(&self, id: EndpointId) -> &dyn NodeProvider {
        &*self.endpoints[id.0]
    }

    /// Tagged batch fan-out: groups `requests` by endpoint (preserving each
    /// endpoint's request order), sends each group as **one** batched round
    /// trip, and scatters the responses back into request order. Batch
    /// costs ride on the first response of each endpoint's group, exactly
    /// as a single-endpoint [`EthApi::batch`](crate::eth::EthApi::batch).
    ///
    /// Endpoints are independent shards, so their groups run on parallel
    /// worker threads ([`fork_join_mut`]); the scatter is by recorded
    /// request index, so response order — and therefore every digest
    /// downstream — is identical to the serial fan-out.
    pub fn batch(&mut self, requests: &[(EndpointId, RpcRequest)]) -> Vec<RpcResponse> {
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for id in 0..self.endpoints.len() {
            let indices: Vec<usize> = requests
                .iter()
                .enumerate()
                .filter(|(_, (ep, _))| ep.0 == id)
                .map(|(i, _)| i)
                .collect();
            if !indices.is_empty() {
                groups.push((id, indices));
            }
        }
        // Pair each busy endpoint with its request group; disjoint
        // endpoints are the unit of parallelism.
        let mut work: Vec<(usize, &mut Box<dyn NodeProvider>, Vec<RpcRequest>)> = Vec::new();
        let mut remaining = self.endpoints.as_mut_slice();
        let mut consumed = 0usize;
        for (id, indices) in &groups {
            let (_, rest) = remaining.split_at_mut(id - consumed);
            let (endpoint, rest) = rest.split_first_mut().expect("endpoint id in range");
            remaining = rest;
            consumed = id + 1;
            let group: Vec<RpcRequest> = indices.iter().map(|&i| requests[i].1.clone()).collect();
            work.push((*id, endpoint, group));
        }
        // Each worker re-pairs its endpoint's reply array by correlation
        // tag, so a reordering endpoint still scatters correct answers.
        // Trace events inside the fan-out attribute to the *endpoint's*
        // stable source id at the caller's virtual time, so serial and
        // parallel executors emit identical traces.
        let vtime = ofl_trace::vtime();
        let answers = fork_join_mut(&mut work, move |_, (id, endpoint, group)| {
            let _src = ofl_trace::source_scope(1 + *id as u32, vtime);
            let responses = endpoint.batch(group);
            crate::envelope::match_to_requests(group, responses)
        });
        let mut responses: Vec<Option<RpcResponse>> = (0..requests.len()).map(|_| None).collect();
        for ((_, indices), group_answers) in groups.iter().zip(answers) {
            for (&i, answer) in indices.iter().zip(group_answers) {
                responses[i] = Some(answer);
            }
        }
        responses
            .into_iter()
            .map(|r| r.expect("every request answered by its endpoint"))
            .collect()
    }

    /// Backstage slot-boundary notification to every endpoint (rate-limit
    /// windows renew, etc.).
    pub fn on_slot(&mut self) {
        let vtime = ofl_trace::vtime();
        for (i, endpoint) in self.endpoints.iter_mut().enumerate() {
            let _src = ofl_trace::source_scope(1 + i as u32, vtime);
            endpoint.on_slot();
        }
    }

    /// Drains every endpoint's pending push notifications, in endpoint
    /// order. This is the world's slot pump: called once per slot barrier
    /// (after mining), it yields each shard's events in the hub's
    /// deterministic delivery order, so the concatenation is a stable
    /// stream keyed by `(slot, shard, seq)`.
    pub fn drain_notifications_all(&mut self) -> Vec<(EndpointId, Vec<Notification>)> {
        let vtime = ofl_trace::vtime();
        self.endpoints
            .iter_mut()
            .enumerate()
            .map(|(i, endpoint)| {
                let _src = ofl_trace::source_scope(1 + i as u32, vtime);
                (EndpointId(i), endpoint.drain_notifications())
            })
            .collect()
    }

    /// Ships one [`BackstageOp`] to **every** endpoint — on parallel worker
    /// threads, since shards are independent — and returns the replies in
    /// endpoint order. This is the slot barrier's fan-out: mining all
    /// shards' blocks for a slot is one `backstage_all` call.
    pub fn backstage_all(&mut self, op: &BackstageOp) -> Vec<BackstageReply> {
        let vtime = ofl_trace::vtime();
        fork_join_mut(&mut self.endpoints, move |i, endpoint| {
            let _src = ofl_trace::source_scope(1 + i as u32, vtime);
            endpoint.backstage(op)
        })
    }

    /// One endpoint's metering snapshot (when its stack is metered).
    pub fn metrics(&self, id: EndpointId) -> Option<ProviderMetrics> {
        self.endpoints[id.0].metrics()
    }

    /// Every endpoint's metering snapshot, in endpoint order (unmetered
    /// stacks report zeroed counters).
    pub fn metrics_per_endpoint(&self) -> Vec<ProviderMetrics> {
        self.endpoints
            .iter()
            .map(|e| e.metrics().unwrap_or_default())
            .collect()
    }

    /// All endpoints' metering absorbed into one run-level snapshot.
    pub fn metrics_merged(&self) -> ProviderMetrics {
        let mut merged = ProviderMetrics::default();
        for metrics in self.metrics_per_endpoint() {
            merged.absorb(&metrics);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{RpcMethod, RpcResult};
    use crate::provider::build_provider;
    use ofl_eth::chain::{Chain, ChainConfig};
    use ofl_eth::wallet::Wallet;
    use ofl_ipfs::swarm::Swarm;
    use ofl_netsim::link::NetworkProfile;
    use ofl_primitives::{wei_per_eth, H160};

    fn pool_of(n: usize) -> (ProviderPool, Wallet) {
        let wallet = Wallet::from_seed("pool", n);
        let endpoints = wallet
            .addresses()
            .into_iter()
            .map(|addr| {
                // Each shard funds a different account, so shard state is
                // visibly disjoint.
                build_provider(
                    Chain::new(ChainConfig::default(), &[(addr, wei_per_eth())]),
                    Swarm::new(),
                    NetworkProfile::campus(),
                    250,
                    crate::EndpointFaults::default(),
                )
            })
            .collect();
        (ProviderPool::new(endpoints), wallet)
    }

    #[test]
    fn endpoints_are_independent_shards() {
        let (mut pool, wallet) = pool_of(2);
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        // Account `a` is funded on shard 0 only.
        assert_eq!(
            pool.endpoint(EndpointId(0)).get_balance(&a).value.unwrap(),
            wei_per_eth()
        );
        assert_eq!(
            pool.endpoint(EndpointId(1))
                .get_balance(&a)
                .value
                .unwrap()
                .to_u64(),
            Some(0)
        );
        // Mining shard 1 does not move shard 0's head.
        pool.endpoint(EndpointId(1)).chain_mut().mine_block(12);
        assert_eq!(pool.get(EndpointId(0)).chain().height(), 0);
        assert_eq!(pool.get(EndpointId(1)).chain().height(), 1);
        let _ = b;
    }

    #[test]
    fn tagged_batch_fans_out_one_round_trip_per_endpoint() {
        let (mut pool, wallet) = pool_of(2);
        let addrs = wallet.addresses();
        let requests = vec![
            (EndpointId(0), RpcRequest::new(0, RpcMethod::BlockNumber)),
            (
                EndpointId(1),
                RpcRequest::new(1, RpcMethod::GetBalance { address: addrs[1] }),
            ),
            (
                EndpointId(0),
                RpcRequest::new(2, RpcMethod::GetBalance { address: addrs[0] }),
            ),
        ];
        let responses = pool.batch(&requests);
        // Responses come back in request order, answered by the right shard.
        assert!(matches!(responses[0].result, Ok(RpcResult::BlockNumber(0))));
        assert!(matches!(&responses[1].result, Ok(RpcResult::Balance(b)) if *b == wei_per_eth()));
        assert!(matches!(&responses[2].result, Ok(RpcResult::Balance(b)) if *b == wei_per_eth()));
        // Each endpoint saw exactly one round trip carrying its group.
        let per_endpoint = pool.metrics_per_endpoint();
        assert_eq!(per_endpoint[0].round_trips, 1);
        assert_eq!(per_endpoint[0].batched_requests, 2);
        assert_eq!(per_endpoint[1].round_trips, 1);
        assert_eq!(per_endpoint[1].batched_requests, 1);
        // The rollup absorbs both endpoints' counters.
        let merged = pool.metrics_merged();
        assert_eq!(merged.round_trips, 2);
        assert_eq!(merged.batched_requests, 3);
        assert_eq!(merged.method("eth_getBalance").calls, 2);
    }

    #[test]
    #[should_panic(expected = "at least one endpoint")]
    fn empty_pool_is_rejected() {
        ProviderPool::new(Vec::new());
    }
}
