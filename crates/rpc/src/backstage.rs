//! Backstage operations: the **simulator's** side channel to a node
//! backend, as a typed, wire-able request/reply pair.
//!
//! Client traffic travels as [`RpcRequest`](crate::RpcRequest) envelopes
//! and is priced, dropped, and metered by decorators. The simulation
//! driver, though, also owns the infrastructure: it mines slots, checks
//! conservation invariants, spawns IPFS nodes, and injects failures.
//! Historically those backstage hands reached straight into the backend via
//! the `chain()`/`swarm_mut()` reference accessors — which can never cross
//! a process boundary. A [`BackstageOp`] is the same hand as a value: the
//! in-process backend answers it locally ([`dispatch_local`]), and the
//! [`SocketProvider`](crate::SocketProvider) ships it to the `rpcd` daemon
//! as one frame.
//!
//! Backstage traffic is deliberately **not** client traffic: decorators
//! forward it untouched (no pricing, no faults, no metering), exactly as
//! the reference accessors always bypassed them.

use crate::provider::NodeProvider;
use ofl_eth::block::{Block, Receipt};
use ofl_eth::chain::ChainConfig;
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::IpfsNode;
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};

/// One backstage request to a node backend.
#[derive(Debug, Clone, PartialEq)]
pub enum BackstageOp {
    /// Mine the slot at `slot_secs` into a block (clock-driven block
    /// production — the network produces blocks whether or not any client
    /// watches).
    MineSlot {
        /// The slot boundary, in whole seconds.
        slot_secs: u64,
    },
    /// A 12-second slot boundary elapsed (window-based decorators renew).
    SlotElapsed,
    /// Current chain height.
    Height,
    /// The chain's static parameters.
    Config,
    /// Transactions waiting in the mempool.
    MempoolLen,
    /// Sum of all live account balances (conservation checks).
    TotalSupply,
    /// Total wei burned by EIP-1559 (conservation checks).
    Burned,
    /// The mined receipt for a hash, if any — the driver's ground truth,
    /// unaffected by flaky client polls.
    ReceiptOf {
        /// Transaction hash.
        hash: H256,
    },
    /// Whether a hash still waits in the mempool (evicted vs merely
    /// unmined).
    IsPending {
        /// Transaction hash.
        hash: H256,
    },
    /// An account balance read for invariant checks.
    BalanceOf {
        /// Account queried.
        address: H160,
    },
    /// The current base fee.
    BaseFee,
    /// Spawn a new IPFS node into the backend's swarm, returning its index.
    SpawnIpfsNode {
        /// The node's peer id.
        label: String,
    },
    /// Failure injection: unpin `cid` on `node` and garbage-collect, so no
    /// peer can serve the content any more.
    DropIpfsBlock {
        /// Node index in the swarm.
        node: u64,
        /// Root CID to drop.
        cid: Cid,
    },
    /// Whether *any* node in the swarm can still serve `cid`.
    SwarmHas {
        /// Root CID queried.
        cid: Cid,
    },
}

/// The backend's answer to a [`BackstageOp`], variant-matched to the op.
#[derive(Debug, Clone, PartialEq)]
pub enum BackstageReply {
    /// [`BackstageOp::MineSlot`]: the mined block (boxed: a block is by
    /// far the largest reply, and most replies are a word or two).
    Mined(Box<Block>),
    /// [`BackstageOp::SlotElapsed`]: acknowledged.
    SlotAcked,
    /// [`BackstageOp::Height`]: chain height.
    Height(u64),
    /// [`BackstageOp::Config`]: chain parameters.
    Config(ChainConfig),
    /// [`BackstageOp::MempoolLen`]: pending transaction count.
    MempoolLen(u64),
    /// [`BackstageOp::TotalSupply`] / [`BackstageOp::Burned`] /
    /// [`BackstageOp::BalanceOf`] / [`BackstageOp::BaseFee`]: a wei amount.
    Wei(U256),
    /// [`BackstageOp::ReceiptOf`]: the receipt, if mined.
    Receipt(Option<Receipt>),
    /// [`BackstageOp::IsPending`] / [`BackstageOp::SwarmHas`]: a yes/no.
    Flag(bool),
    /// [`BackstageOp::SpawnIpfsNode`]: the new node's index.
    NodeIndex(u64),
    /// [`BackstageOp::DropIpfsBlock`]: injection applied.
    Dropped,
}

impl BackstageReply {
    /// Unwraps a [`BackstageReply::Mined`] block.
    pub fn into_block(self) -> Block {
        match self {
            BackstageReply::Mined(block) => *block,
            other => panic!("backstage reply shape mismatch: expected Mined, got {other:?}"),
        }
    }

    /// Unwraps a [`BackstageReply::Height`] / [`BackstageReply::MempoolLen`]
    /// / [`BackstageReply::NodeIndex`] count.
    pub fn into_u64(self) -> u64 {
        match self {
            BackstageReply::Height(n)
            | BackstageReply::MempoolLen(n)
            | BackstageReply::NodeIndex(n) => n,
            other => panic!("backstage reply shape mismatch: expected a count, got {other:?}"),
        }
    }

    /// Unwraps a [`BackstageReply::Wei`] amount.
    pub fn into_wei(self) -> U256 {
        match self {
            BackstageReply::Wei(v) => v,
            other => panic!("backstage reply shape mismatch: expected Wei, got {other:?}"),
        }
    }

    /// Unwraps a [`BackstageReply::Config`].
    pub fn into_config(self) -> ChainConfig {
        match self {
            BackstageReply::Config(config) => config,
            other => panic!("backstage reply shape mismatch: expected Config, got {other:?}"),
        }
    }

    /// Unwraps a [`BackstageReply::Receipt`].
    pub fn into_receipt(self) -> Option<Receipt> {
        match self {
            BackstageReply::Receipt(receipt) => receipt,
            other => panic!("backstage reply shape mismatch: expected Receipt, got {other:?}"),
        }
    }

    /// Unwraps a [`BackstageReply::Flag`].
    pub fn into_flag(self) -> bool {
        match self {
            BackstageReply::Flag(flag) => flag,
            other => panic!("backstage reply shape mismatch: expected Flag, got {other:?}"),
        }
    }
}

/// Answers a backstage op against a provider's local chain/swarm — the
/// default for every in-process backend, and what the `rpcd` daemon runs
/// server-side when the op arrives as a frame.
pub fn dispatch_local<P: NodeProvider + ?Sized>(
    provider: &mut P,
    op: &BackstageOp,
) -> BackstageReply {
    match op {
        BackstageOp::MineSlot { slot_secs } => {
            BackstageReply::Mined(Box::new(provider.chain_mut().mine_block(*slot_secs)))
        }
        BackstageOp::SlotElapsed => {
            provider.on_slot();
            BackstageReply::SlotAcked
        }
        BackstageOp::Height => BackstageReply::Height(provider.chain().height()),
        BackstageOp::Config => BackstageReply::Config(provider.chain().config().clone()),
        BackstageOp::MempoolLen => {
            BackstageReply::MempoolLen(provider.chain().mempool_len() as u64)
        }
        BackstageOp::TotalSupply => BackstageReply::Wei(provider.chain().state().total_supply()),
        BackstageOp::Burned => BackstageReply::Wei(provider.chain().burned()),
        BackstageOp::ReceiptOf { hash } => {
            BackstageReply::Receipt(provider.chain().receipt(hash).cloned())
        }
        BackstageOp::IsPending { hash } => BackstageReply::Flag(provider.chain().is_pending(hash)),
        BackstageOp::BalanceOf { address } => {
            BackstageReply::Wei(provider.chain().balance(address))
        }
        BackstageOp::BaseFee => BackstageReply::Wei(provider.chain().base_fee()),
        BackstageOp::SpawnIpfsNode { label } => BackstageReply::NodeIndex(
            provider.swarm_mut().add_node(IpfsNode::new(label.clone())) as u64,
        ),
        BackstageOp::DropIpfsBlock { node, cid } => {
            let store = provider.swarm_mut().node_mut(*node as usize).store_mut();
            store.unpin(cid);
            store.gc();
            BackstageReply::Dropped
        }
        BackstageOp::SwarmHas { cid } => {
            let swarm = provider.swarm();
            BackstageReply::Flag((0..swarm.len()).any(|i| swarm.node(i).has_block(cid)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimProvider;
    use ofl_eth::chain::Chain;
    use ofl_ipfs::swarm::Swarm;
    use ofl_primitives::wei_per_eth;

    fn sim() -> SimProvider {
        let addr = H160::from_slice(&[1; 20]);
        SimProvider::new(
            Chain::new(ChainConfig::default(), &[(addr, wei_per_eth())]),
            Swarm::new(),
        )
    }

    #[test]
    fn local_dispatch_matches_direct_access() {
        let mut provider = sim();
        assert_eq!(provider.backstage(&BackstageOp::Height).into_u64(), 0);
        assert_eq!(
            provider.backstage(&BackstageOp::TotalSupply).into_wei(),
            wei_per_eth()
        );
        assert_eq!(
            provider.backstage(&BackstageOp::BaseFee).into_wei(),
            provider.chain.base_fee()
        );
        let block = provider
            .backstage(&BackstageOp::MineSlot { slot_secs: 12 })
            .into_block();
        assert_eq!(block.header.number, 1);
        assert_eq!(provider.backstage(&BackstageOp::Height).into_u64(), 1);
        let config = provider.backstage(&BackstageOp::Config).into_config();
        assert_eq!(config.block_time, 12);
    }

    #[test]
    fn swarm_ops_spawn_drop_and_query() {
        let mut provider = sim();
        let a = provider
            .backstage(&BackstageOp::SpawnIpfsNode { label: "a".into() })
            .into_u64();
        let b = provider
            .backstage(&BackstageOp::SpawnIpfsNode { label: "b".into() })
            .into_u64();
        assert_eq!((a, b), (0, 1));
        let cid = provider.swarm.node_mut(0).add(b"model").root;
        assert!(provider
            .backstage(&BackstageOp::SwarmHas { cid: cid.clone() })
            .into_flag());
        provider.backstage(&BackstageOp::DropIpfsBlock {
            node: 0,
            cid: cid.clone(),
        });
        assert!(!provider
            .backstage(&BackstageOp::SwarmHas { cid })
            .into_flag());
    }
}
