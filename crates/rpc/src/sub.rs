//! The subscription subsystem: typed push channels over the provider
//! boundary.
//!
//! A [`SubscriptionHub`] sits next to a backend (in-process it lives
//! inside `SimProvider`; behind a socket the daemon's session owns it) and
//! turns the chain's raw event log ([`ChainEvent`]s with chain-monotonic
//! sequence numbers) into per-subscription [`Notification`]s:
//!
//! - **`NewHeads`** — every mined block.
//! - **`Logs{filter}`** — mined logs matching an `eth_getLogs`-style
//!   filter, in execution order within each block.
//! - **`PendingTxs`** — the decoded mempool firehose: each submitted
//!   transaction as a [`PendingTxEvent`] (`sender`, `to`, `selector`,
//!   `tip`, `nonce`), decoded once at publish, not per subscriber.
//!
//! Delivery order is deterministic and backend-independent: events route
//! in publish (sequence) order, and within one event fan-out runs in
//! subscription-id order. Consumers key streams by `(slot, shard, seq)` —
//! the slot and shard come from whoever drains (the engine knows both),
//! the `seq` rides every notification — so in-process, pipe, and TCP
//! backends emit bit-identical streams.

use ofl_eth::block::Block;
use ofl_eth::chain::{ChainEvent, FilteredLog, LogFilter, PendingTxEvent};

/// What a subscriber asked to watch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscriptionKind {
    /// Every mined block header (the whole block, hashes included).
    NewHeads,
    /// Mined logs matching the filter's address/topic; the filter's block
    /// range is ignored for push delivery (every new block is "new").
    Logs {
        /// Address/topic restriction applied to each mined log.
        filter: LogFilter,
    },
    /// The decoded pending-transaction firehose.
    PendingTxs,
}

/// One pushed event, as it crosses the wire inside `Frame::Notify`.
#[derive(Debug, Clone, PartialEq)]
pub enum SubEvent {
    /// A mined block (for `NewHeads`).
    NewHead(Box<Block>),
    /// A matching mined log (for `Logs`).
    Log(FilteredLog),
    /// A decoded pending transaction (for `PendingTxs`).
    PendingTx(PendingTxEvent),
}

/// One delivery: which subscription, which chain sequence number, what.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The subscription this event matched.
    pub sub_id: u64,
    /// The chain's publish-order sequence number for the event.
    pub seq: u64,
    /// The event itself.
    pub event: SubEvent,
}

/// Default [`SubscriptionHub`] high-water mark: a subscription that has
/// been routed more notifications than this in one run earns a one-shot
/// warning.
pub const DEFAULT_SUB_HIGH_WATER: u64 = 10_000;

/// The per-backend subscription table and router.
#[derive(Debug)]
pub struct SubscriptionHub {
    /// Next id handed out (ids start at 1 and never recycle, so a stale
    /// unsubscribe can never cancel a newer subscription).
    next_id: u64,
    /// Live subscriptions in id order (ids are monotonic, so insertion
    /// order is id order), each with its routed-notification depth and
    /// whether its high-water warning has already fired.
    subs: Vec<SubEntry>,
    /// Depth past which a subscription earns its one-shot warning.
    high_water: u64,
}

#[derive(Debug)]
struct SubEntry {
    id: u64,
    kind: SubscriptionKind,
    /// Notifications routed to this subscription so far. Nothing
    /// downstream drops or acknowledges pushes yet, so this is the upper
    /// bound on the subscriber's queued backlog (inbox, push buffer, or
    /// wire) — the observable half of backpressure.
    depth: u64,
    warned: bool,
}

impl Default for SubscriptionHub {
    fn default() -> SubscriptionHub {
        SubscriptionHub::new()
    }
}

impl SubscriptionHub {
    /// An empty hub.
    pub fn new() -> SubscriptionHub {
        SubscriptionHub {
            next_id: 1,
            subs: Vec::new(),
            high_water: DEFAULT_SUB_HIGH_WATER,
        }
    }

    /// Reconfigures the high-water mark (0 disables the warning).
    pub fn set_high_water(&mut self, high_water: u64) {
        self.high_water = high_water;
    }

    /// Registers a subscription and returns its id (monotonic from 1).
    pub fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        if self.next_id == 0 {
            self.next_id = 1;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.subs.push(SubEntry {
            id,
            kind,
            depth: 0,
            warned: false,
        });
        id
    }

    /// Cancels a subscription; false when the id was unknown.
    pub fn unsubscribe(&mut self, sub_id: u64) -> bool {
        let before = self.subs.len();
        self.subs.retain(|entry| entry.id != sub_id);
        let removed = self.subs.len() < before;
        if removed {
            ofl_trace::metrics::gauge_set(&format!("sub.queue_depth.{sub_id}"), 0);
        }
        removed
    }

    /// How many subscriptions are live.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when nothing is subscribed.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Notifications routed to `sub_id` so far (None for unknown ids).
    pub fn depth(&self, sub_id: u64) -> Option<u64> {
        self.subs
            .iter()
            .find(|entry| entry.id == sub_id)
            .map(|entry| entry.depth)
    }

    /// Routes drained chain events to the live subscriptions: events in
    /// publish order, fan-out within an event in subscription-id order.
    ///
    /// Routing maintains each subscription's `sub.queue_depth.<id>` gauge
    /// in the `ofl_trace::metrics` registry and logs a one-shot warning
    /// the first time a subscription's depth passes the high-water mark —
    /// the observe-only half of backpressure (no event is ever dropped).
    pub fn route(&mut self, events: &[(u64, ChainEvent)]) -> Vec<Notification> {
        let mut out = Vec::new();
        for (seq, event) in events {
            for entry in &mut self.subs {
                if let Some(sub_event) = match_event(&entry.kind, event) {
                    entry.depth += 1;
                    out.push(Notification {
                        sub_id: entry.id,
                        seq: *seq,
                        event: sub_event,
                    });
                }
            }
        }
        if !out.is_empty() {
            for entry in &mut self.subs {
                ofl_trace::metrics::gauge_set(
                    &format!("sub.queue_depth.{}", entry.id),
                    entry.depth.min(i64::MAX as u64) as i64,
                );
                if self.high_water > 0 && entry.depth > self.high_water && !entry.warned {
                    entry.warned = true;
                    eprintln!(
                        "warning: subscription {} ({}) passed the high-water mark: \
                         {} notifications routed (> {}); no backpressure is applied yet",
                        entry.id,
                        kind_label(&entry.kind),
                        entry.depth,
                        self.high_water,
                    );
                }
            }
        }
        out
    }
}

/// Short label for warnings: the kind without its filter payload.
fn kind_label(kind: &SubscriptionKind) -> &'static str {
    match kind {
        SubscriptionKind::NewHeads => "newHeads",
        SubscriptionKind::Logs { .. } => "logs",
        SubscriptionKind::PendingTxs => "pendingTxs",
    }
}

/// Whether `event` matches a subscription of `kind`, and as what.
fn match_event(kind: &SubscriptionKind, event: &ChainEvent) -> Option<SubEvent> {
    match (kind, event) {
        (SubscriptionKind::NewHeads, ChainEvent::Head(block)) => {
            Some(SubEvent::NewHead(block.clone()))
        }
        (SubscriptionKind::Logs { filter }, ChainEvent::Log(fl)) => {
            log_matches(filter, fl).then(|| SubEvent::Log(fl.clone()))
        }
        (SubscriptionKind::PendingTxs, ChainEvent::Pending(p)) => {
            Some(SubEvent::PendingTx(p.clone()))
        }
        _ => None,
    }
}

/// Push-delivery filter match: address and first topic, like
/// `Chain::get_logs`; the block range is not consulted (push subscribers
/// only ever see new blocks).
fn log_matches(filter: &LogFilter, fl: &FilteredLog) -> bool {
    if let Some(addr) = &filter.address {
        if fl.log.address != *addr {
            return false;
        }
    }
    if let Some(topic) = &filter.topic {
        if fl.log.topics.first() != Some(topic) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_eth::block::{Bloom, Header};
    use ofl_eth::evm::LogEntry;
    use ofl_primitives::u256::U256;
    use ofl_primitives::{H160, H256};

    fn head_event() -> ChainEvent {
        ChainEvent::Head(Box::new(Block {
            header: Header {
                parent_hash: H256::ZERO,
                number: 1,
                timestamp: 12,
                coinbase: H160::ZERO,
                gas_used: 0,
                gas_limit: 30_000_000,
                base_fee: U256::from(7u64),
                tx_root: H256::ZERO,
                bloom: Bloom::default(),
            },
            tx_hashes: Vec::new(),
        }))
    }

    fn log_event(address: H160, topic: H256) -> ChainEvent {
        ChainEvent::Log(FilteredLog {
            block_number: 1,
            tx_hash: H256::from_slice(&[9u8; 32]),
            log_index: 0,
            log: LogEntry {
                address,
                topics: vec![topic],
                data: vec![1, 2, 3],
            },
        })
    }

    fn pending_event(nonce: u64) -> ChainEvent {
        ChainEvent::Pending(PendingTxEvent {
            hash: H256::from_slice(&[nonce as u8; 32]),
            sender: H160::from_slice(&[2u8; 20]),
            to: Some(H160::from_slice(&[3u8; 20])),
            selector: Some([0xde, 0xad, 0xbe, 0xef]),
            tip: U256::from(5u64),
            nonce,
        })
    }

    #[test]
    fn ids_are_monotonic_and_unsubscribe_is_exact() {
        let mut hub = SubscriptionHub::new();
        let a = hub.subscribe(SubscriptionKind::NewHeads);
        let b = hub.subscribe(SubscriptionKind::PendingTxs);
        assert_eq!((a, b), (1, 2));
        assert_eq!(hub.len(), 2);
        assert!(hub.unsubscribe(a));
        assert!(!hub.unsubscribe(a), "second cancel is a no-op");
        assert!(!hub.unsubscribe(99));
        // Ids never recycle.
        assert_eq!(hub.subscribe(SubscriptionKind::NewHeads), 3);
    }

    #[test]
    fn routing_preserves_publish_order_and_fans_out_in_id_order() {
        let mut hub = SubscriptionHub::new();
        let heads = hub.subscribe(SubscriptionKind::NewHeads);
        let all_logs = hub.subscribe(SubscriptionKind::Logs {
            filter: LogFilter::all(),
        });
        let pending = hub.subscribe(SubscriptionKind::PendingTxs);
        let addr = H160::from_slice(&[7u8; 20]);
        let topic = H256::from_slice(&[8u8; 32]);
        let events = vec![
            (0, pending_event(0)),
            (1, head_event()),
            (2, log_event(addr, topic)),
        ];
        let notes = hub.route(&events);
        let keys: Vec<(u64, u64)> = notes.iter().map(|n| (n.seq, n.sub_id)).collect();
        assert_eq!(keys, vec![(0, pending), (1, heads), (2, all_logs)]);
        assert!(matches!(notes[0].event, SubEvent::PendingTx(_)));
        assert!(matches!(notes[1].event, SubEvent::NewHead(_)));
        assert!(matches!(notes[2].event, SubEvent::Log(_)));
    }

    #[test]
    fn log_filters_select_by_address_and_topic() {
        let mut hub = SubscriptionHub::new();
        let addr = H160::from_slice(&[7u8; 20]);
        let topic = H256::from_slice(&[8u8; 32]);
        let by_addr = hub.subscribe(SubscriptionKind::Logs {
            filter: LogFilter::all().at_address(addr),
        });
        let by_topic = hub.subscribe(SubscriptionKind::Logs {
            filter: LogFilter::all().with_topic(H256::from_slice(&[1u8; 32])),
        });
        let notes = hub.route(&[(0, log_event(addr, topic))]);
        // The address filter matches, the wrong-topic filter does not.
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].sub_id, by_addr);
        assert_ne!(notes[0].sub_id, by_topic);
    }

    #[test]
    fn depth_tracks_routed_notifications_per_subscription() {
        let mut hub = SubscriptionHub::new();
        let heads = hub.subscribe(SubscriptionKind::NewHeads);
        let pending = hub.subscribe(SubscriptionKind::PendingTxs);
        hub.route(&[
            (0, head_event()),
            (1, pending_event(0)),
            (2, pending_event(1)),
        ]);
        assert_eq!(hub.depth(heads), Some(1));
        assert_eq!(hub.depth(pending), Some(2));
        hub.route(&[(3, head_event())]);
        assert_eq!(hub.depth(heads), Some(2));
        assert_eq!(hub.depth(99), None);
    }

    #[test]
    fn high_water_warning_latches_and_routing_continues() {
        let mut hub = SubscriptionHub::new();
        hub.set_high_water(3);
        let pending = hub.subscribe(SubscriptionKind::PendingTxs);
        let events: Vec<(u64, ChainEvent)> = (0..5).map(|i| (i, pending_event(i))).collect();
        hub.route(&events);
        assert_eq!(hub.depth(pending), Some(5));
        // Observe-only: crossing the mark never drops events. The warning
        // path is only reachable while the entry's latch is unset.
        hub.route(&events);
        assert_eq!(hub.depth(pending), Some(10));
    }

    #[test]
    fn depth_gauge_mirrors_routing_and_unsubscribe_zeroes_it() {
        // The `sub.queue_depth.<id>` gauges live in the process-global
        // metrics registry, and other tests in this binary route hubs with
        // low subscription ids concurrently. Burn ids up to a high value no
        // other test reaches, so this test's gauge is contention-free.
        let mut hub = SubscriptionHub::new();
        for _ in 0..240 {
            hub.subscribe(SubscriptionKind::NewHeads);
        }
        let id = hub.subscribe(SubscriptionKind::PendingTxs); // id 241
        hub.route(&[(0, pending_event(0)), (1, pending_event(1))]);
        assert_eq!(
            ofl_trace::metrics::get(&format!("sub.queue_depth.{id}")),
            Some(ofl_trace::metrics::Metric::Gauge(2))
        );
        assert!(hub.unsubscribe(id));
        assert_eq!(
            ofl_trace::metrics::get(&format!("sub.queue_depth.{id}")),
            Some(ofl_trace::metrics::Metric::Gauge(0))
        );
    }

    #[test]
    fn two_subscribers_to_one_channel_both_hear_every_event() {
        let mut hub = SubscriptionHub::new();
        let a = hub.subscribe(SubscriptionKind::PendingTxs);
        let b = hub.subscribe(SubscriptionKind::PendingTxs);
        let notes = hub.route(&[(0, pending_event(0)), (1, pending_event(1))]);
        let keys: Vec<(u64, u64)> = notes.iter().map(|n| (n.seq, n.sub_id)).collect();
        // Event order outranks subscriber order: both hear seq 0, then both
        // hear seq 1, each fan-out in id order.
        assert_eq!(keys, vec![(0, a), (0, b), (1, a), (1, b)]);
    }
}
