//! [`SimProvider`]: the in-process backend — a [`Chain`] and a [`Swarm`]
//! answering the provider traits directly, with zero wire cost.
//!
//! This is the innermost layer of every provider stack. Decorators add
//! latency pricing, fault injection, and metering around it; the backend
//! itself only executes.

use crate::envelope::{RpcError, RpcMethod, RpcRequest, RpcResponse, RpcResult};
use crate::eth::EthApi;
use crate::ipfs::IpfsApi;
use crate::provider::NodeProvider;
use crate::sub::{Notification, SubscriptionHub, SubscriptionKind};
use crate::Billed;
use ofl_eth::chain::Chain;
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, IpfsError, Swarm};
use ofl_netsim::clock::SimDuration;

/// The in-process node: one chain, one swarm.
pub struct SimProvider {
    /// The blockchain this provider fronts.
    pub chain: Chain,
    /// The IPFS swarm this provider fronts.
    pub swarm: Swarm,
    /// Push subscriptions over the chain's event log. The chain only
    /// records events once the first subscription arrives, so
    /// non-subscribing runs pay nothing.
    hub: SubscriptionHub,
}

impl SimProvider {
    /// Wraps a chain and swarm.
    pub fn new(chain: Chain, swarm: Swarm) -> SimProvider {
        SimProvider {
            chain,
            swarm,
            hub: SubscriptionHub::new(),
        }
    }
}

impl EthApi for SimProvider {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        let result = match &request.method {
            RpcMethod::SendRawTransaction { raw } => self
                .chain
                .submit_raw(raw)
                .map(RpcResult::TxHash)
                .map_err(|e| RpcError::Rejected(e.to_string())),
            RpcMethod::GetTransactionReceipt { hash } => {
                Ok(RpcResult::Receipt(self.chain.receipt(hash).cloned()))
            }
            RpcMethod::Call { from, to, data } => {
                Ok(RpcResult::Call(self.chain.call(from, to, data.clone())))
            }
            RpcMethod::GetLogs { filter } => Ok(RpcResult::Logs(self.chain.get_logs(filter))),
            RpcMethod::BlockNumber => Ok(RpcResult::BlockNumber(self.chain.height())),
            RpcMethod::GetBalance { address } => {
                Ok(RpcResult::Balance(self.chain.balance(address)))
            }
            RpcMethod::GetTransactionCount { address } => {
                Ok(RpcResult::TransactionCount(self.chain.nonce(address)))
            }
            RpcMethod::EstimateGas { from, to, data } => Ok(RpcResult::GasEstimate(
                self.chain.estimate_gas(from, to.as_ref(), data),
            )),
            RpcMethod::GasPrice => Ok(RpcResult::GasPrice(self.chain.base_fee())),
            RpcMethod::ChainId => Ok(RpcResult::ChainId(self.chain.config().chain_id)),
        };
        RpcResponse {
            id: request.id,
            result,
            cost: SimDuration::ZERO,
        }
    }
}

impl IpfsApi for SimProvider {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        Billed {
            value: self.swarm.node_mut(node).add(data),
            cost: SimDuration::ZERO,
        }
    }

    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        Billed {
            value: self.swarm.fetch(node, cid),
            cost: SimDuration::ZERO,
        }
    }

    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        let n = self.swarm.node_mut(node);
        let value = if n.has_block(cid) {
            n.store_mut().pin(cid.clone());
            Ok(())
        } else {
            Err(IpfsError::BlockUnavailable(cid.clone()))
        };
        Billed {
            value,
            cost: SimDuration::ZERO,
        }
    }
}

impl NodeProvider for SimProvider {
    fn chain(&self) -> &Chain {
        &self.chain
    }
    fn chain_mut(&mut self) -> &mut Chain {
        &mut self.chain
    }
    fn swarm(&self) -> &Swarm {
        &self.swarm
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        &mut self.swarm
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.chain.enable_events();
        self.hub.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        self.hub.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        if self.hub.is_empty() {
            // Still drain the chain so a fully-unsubscribed backend does
            // not accumulate an unbounded event log.
            self.chain.drain_events();
            return Vec::new();
        }
        let events = self.chain.drain_events();
        self.hub.route(&events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_eth::chain::ChainConfig;
    use ofl_eth::wallet::Wallet;
    use ofl_primitives::u256::U256;
    use ofl_primitives::wei_per_eth;

    fn provider_with_funded_wallet() -> (SimProvider, Wallet) {
        let wallet = Wallet::from_seed("sim-provider", 2);
        let genesis: Vec<_> = wallet
            .addresses()
            .iter()
            .map(|a| (*a, wei_per_eth()))
            .collect();
        let chain = Chain::new(ChainConfig::default(), &genesis);
        (SimProvider::new(chain, Swarm::spawn("p", 2)), wallet)
    }

    #[test]
    fn send_poll_and_read_through_the_trait() {
        let (mut provider, wallet) = provider_with_funded_wallet();
        let [a, b]: [ofl_primitives::H160; 2] = wallet.addresses().try_into().unwrap();
        let raw = wallet
            .sign_raw(&provider.chain, &a, Some(b), U256::from(5u64), vec![])
            .unwrap();
        let hash = provider.send_raw_transaction(&raw).value.unwrap();
        // Unmined: receipt is None, not an error.
        assert_eq!(provider.get_transaction_receipt(hash).value.unwrap(), None);
        provider.chain.mine_block(12);
        let receipt = provider
            .get_transaction_receipt(hash)
            .value
            .unwrap()
            .expect("mined");
        assert!(receipt.is_success());
        assert_eq!(provider.block_number().value.unwrap(), 1);
        assert!(provider.get_balance(&b).value.unwrap() > wei_per_eth());
        assert_eq!(provider.get_transaction_count(&a).value.unwrap(), 1);
        // The backend itself is free; cost comes from decorators.
        assert_eq!(provider.block_number().cost, SimDuration::ZERO);
    }

    #[test]
    fn rejection_is_a_typed_error_not_a_panic() {
        let (mut provider, _) = provider_with_funded_wallet();
        let result = provider.send_raw_transaction(&[0xff, 0x00]).value;
        assert!(matches!(result, Err(RpcError::Rejected(_))));
    }

    #[test]
    fn ipfs_add_cat_pin() {
        let (mut provider, _) = provider_with_funded_wallet();
        let added = provider.add(0, b"model bytes").value;
        let (bytes, stats) = provider.cat(1, &added.root).value.unwrap();
        assert_eq!(bytes, b"model bytes");
        assert_eq!(stats.blocks_fetched, 1);
        assert!(provider.pin(1, &added.root).value.is_ok());
        // Pinning content the node has never seen is an availability error.
        let phantom = Cid::v0_of(b"never added");
        assert!(matches!(
            provider.pin(0, &phantom).value,
            Err(IpfsError::BlockUnavailable(_))
        ));
    }

    #[test]
    fn subscriptions_see_pending_head_and_log_events_in_publish_order() {
        use crate::sub::SubEvent;
        let (mut provider, wallet) = provider_with_funded_wallet();
        let [a, b]: [ofl_primitives::H160; 2] = wallet.addresses().try_into().unwrap();
        // Traffic before the first subscribe publishes nothing.
        let raw = wallet
            .sign_raw(&provider.chain, &a, Some(b), U256::from(5u64), vec![])
            .unwrap();
        provider.send_raw_transaction(&raw).value.unwrap();
        provider.chain.mine_block(12);
        let pending = provider.subscribe(crate::sub::SubscriptionKind::PendingTxs);
        let heads = provider.subscribe(crate::sub::SubscriptionKind::NewHeads);
        assert_eq!((pending, heads), (1, 2));
        assert!(provider.drain_notifications().is_empty());
        // One submit, one mine: a Pending event then a Head event.
        let raw = wallet
            .sign_raw(&provider.chain, &a, Some(b), U256::from(7u64), vec![])
            .unwrap();
        provider.send_raw_transaction(&raw).value.unwrap();
        provider.chain.mine_block(24);
        let notes = provider.drain_notifications();
        assert_eq!(notes.len(), 2);
        assert_eq!(notes[0].sub_id, pending);
        assert!(matches!(notes[0].event, SubEvent::PendingTx(_)));
        assert_eq!(notes[1].sub_id, heads);
        assert!(matches!(notes[1].event, SubEvent::NewHead(_)));
        assert!(notes[0].seq < notes[1].seq);
        // Drained means drained.
        assert!(provider.drain_notifications().is_empty());
        // Unsubscribing everything stops delivery without error.
        assert!(provider.unsubscribe(pending));
        assert!(provider.unsubscribe(heads));
        provider.chain.mine_block(36);
        assert!(provider.drain_notifications().is_empty());
    }

    #[test]
    fn batch_answers_every_request_in_order() {
        let (mut provider, wallet) = provider_with_funded_wallet();
        let a = wallet.addresses()[0];
        let requests = vec![
            RpcRequest::new(10, RpcMethod::BlockNumber),
            RpcRequest::new(11, RpcMethod::GetBalance { address: a }),
        ];
        let responses = provider.batch(&requests);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].id, 10);
        assert_eq!(responses[1].id, 11);
        assert!(matches!(responses[0].result, Ok(RpcResult::BlockNumber(0))));
    }
}
