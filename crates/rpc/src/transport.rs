//! Byte-stream transports for the frame protocol: one trait, served by a
//! real TCP/Unix socket in production and by an in-memory duplex pipe in
//! deterministic tests.
//!
//! A [`FrameTransport`] is request/response from the client's side: `send`
//! one frame, `recv` its answer. That matches the dispatch loop the `rpcd`
//! daemon runs — one frame in, one frame out — and keeps the client free
//! of any read-buffer state machine. On top of that,
//! [`FrameTransport::roundtrip_many`] ships a whole slice of frames and
//! collects their answers; transports that speak the v2
//! [`Frame::Request`]/[`Frame::Reply`] envelope override it to keep a
//! window of requests **in flight** (pipelining) and to re-associate
//! out-of-order replies by correlation id.
//!
//! [`SessionMux`] multiplexes several independent sessions — several
//! provisioned shard backends — over **one** underlying connection, each
//! session exposed as its own [`FrameTransport`].

use crate::frame::{Frame, FrameError};
use ofl_primitives::hotpath::{HotPhase, PhaseTimer};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One end of a frame conversation. Transports are `Send` so a provider
/// stack built over one can run on a per-shard worker thread.
pub trait FrameTransport: Send {
    /// Ships one frame to the peer.
    fn send(&mut self, frame: &Frame) -> Result<(), FrameError>;
    /// Receives the peer's next frame.
    fn recv(&mut self) -> Result<Frame, FrameError>;
    /// A human-readable peer description for error messages.
    fn peer(&self) -> String {
        "peer".into()
    }
    /// Takes every [`Frame::Notify`] push buffered so far, in arrival
    /// order. Pushes only accumulate while the transport is reading (the
    /// daemon writes them ahead of the reply that caused them, so by the
    /// time a reply lands its pushes are already buffered). Transports
    /// without a push path — the lockstep default — return nothing.
    fn drain_pushes(&mut self) -> Vec<Frame> {
        Vec::new()
    }
    /// Ships `frames` and returns their answers, matched 1:1 in request
    /// order. `window` is the number of requests the transport may keep in
    /// flight at once; the default implementation is strict lockstep
    /// (window of one) — pipelining transports override this with the
    /// request-id envelope.
    fn roundtrip_many(
        &mut self,
        frames: &[Frame],
        window: usize,
    ) -> Result<Vec<Frame>, FrameError> {
        let _ = window;
        frames
            .iter()
            .map(|frame| {
                self.send(frame)?;
                self.recv()
            })
            .collect()
    }
}

/// Wire-level counters a transport reports (shared, clonable handle): how
/// many frames actually crossed the wire and how long the client sat
/// blocked waiting for replies. The benches read these to show that
/// lockstep and pipelined runs exchange the *same* frames while paying
/// very different turnaround waits.
#[derive(Debug, Default)]
pub struct WireStats {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    recv_wait_nanos: AtomicU64,
}

/// A clonable handle onto one transport's [`WireStats`].
#[derive(Debug, Clone, Default)]
pub struct WireCounter(Arc<WireStats>);

impl WireCounter {
    /// Frames shipped to the peer.
    pub fn frames_sent(&self) -> u64 {
        self.0.frames_sent.load(Ordering::Relaxed)
    }
    /// Frames received from the peer.
    pub fn frames_received(&self) -> u64 {
        self.0.frames_received.load(Ordering::Relaxed)
    }
    /// Wall-clock seconds the client spent blocked inside `recv` — the
    /// turnaround cost pipelining exists to hide.
    pub fn recv_wait_secs(&self) -> f64 {
        self.0.recv_wait_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
    fn count_send(&self) {
        self.0.frames_sent.fetch_add(1, Ordering::Relaxed);
    }
    fn count_recv(&self, waited: std::time::Duration) {
        self.0.frames_received.fetch_add(1, Ordering::Relaxed);
        self.0
            .recv_wait_nanos
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Frame framing over any blocking byte stream (TCP socket, Unix socket,
/// or anything else `Read + Write`). Its [`FrameTransport::roundtrip_many`]
/// speaks the v2 request-id envelope: up to `window` requests in flight,
/// replies matched by correlation id however they come back.
pub struct StreamTransport<S> {
    stream: S,
    peer: String,
    next_id: u64,
    counter: WireCounter,
    /// Reused encode buffer: every outgoing frame is serialized into this
    /// vector and written in one syscall, so steady-state sends allocate
    /// nothing.
    wire: Vec<u8>,
    /// [`Frame::Notify`] pushes read off the wire while waiting for a
    /// reply, in arrival order, until [`FrameTransport::drain_pushes`]
    /// collects them.
    pushes: VecDeque<Frame>,
}

impl<S: Read + Write + Send> StreamTransport<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S, peer: impl Into<String>) -> StreamTransport<S> {
        StreamTransport {
            stream,
            peer: peer.into(),
            next_id: 0,
            counter: WireCounter::default(),
            wire: Vec::new(),
            pushes: VecDeque::new(),
        }
    }

    /// A handle onto this transport's wire counters.
    pub fn counter(&self) -> WireCounter {
        self.counter.clone()
    }

    /// The underlying stream (e.g. to inspect a test double).
    pub fn stream(&self) -> &S {
        &self.stream
    }
}

impl<S: Read + Write + Send> FrameTransport for StreamTransport<S> {
    fn send(&mut self, frame: &Frame) -> Result<(), FrameError> {
        let _t = PhaseTimer::start(HotPhase::Wire);
        self.counter.count_send();
        frame.encode_into(&mut self.wire)?;
        self.stream
            .write_all(&self.wire)
            .map_err(|e| FrameError::Io(format!("write to {}: {e}", self.peer)))
    }
    fn recv(&mut self) -> Result<Frame, FrameError> {
        let _t = PhaseTimer::start(HotPhase::Wire);
        // lint: wall-clock-ok(feeds WireCounter bench metering only; never enters a digest)
        let started = std::time::Instant::now();
        loop {
            match Frame::read_from(&mut self.stream)? {
                // Pushes ride interleaved with replies: divert them to the
                // push buffer and keep reading for the actual answer.
                push @ Frame::Notify { .. } => self.pushes.push_back(push),
                // Server keepalive probe — not an answer to anything.
                Frame::Ping => {}
                frame => {
                    self.counter.count_recv(started.elapsed());
                    return Ok(frame);
                }
            }
        }
    }
    fn peer(&self) -> String {
        self.peer.clone()
    }
    fn drain_pushes(&mut self) -> Vec<Frame> {
        self.pushes.drain(..).collect()
    }

    /// Pipelined round trips: each frame travels wrapped in a
    /// [`Frame::Request`] (session 0) carrying a fresh correlation id; up
    /// to `window` requests are on the wire before the first reply is
    /// awaited, and replies are re-associated by id — out-of-order replies
    /// are parked until their turn. `window = 1` degenerates to lockstep
    /// over the same envelope (same frames, one wait per request).
    fn roundtrip_many(
        &mut self,
        frames: &[Frame],
        window: usize,
    ) -> Result<Vec<Frame>, FrameError> {
        let window = window.max(1);
        let first_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(frames.len() as u64);
        let mut replies: Vec<Option<Frame>> = (0..frames.len()).map(|_| None).collect();
        let mut sent = 0usize;
        let mut received = 0usize;
        while received < frames.len() {
            // Fill the window before blocking on the wire.
            while sent < frames.len() && sent - received < window {
                let wrapped = Frame::Request {
                    id: first_id.wrapping_add(sent as u64),
                    session: 0,
                    frame: Box::new(frames[sent].clone()),
                };
                self.send(&wrapped)?;
                sent += 1;
            }
            // Window occupancy right before blocking: how much turnaround
            // the pipeline is actually hiding at this moment.
            ofl_trace::metrics::observe(
                "rpc.pipeline.in_flight",
                (sent - received) as u64,
                &[1, 2, 4, 8, 16, 32, 64],
            );
            let (id, frame) = match self.recv()? {
                Frame::Reply { id, frame } => (id, *frame),
                other => {
                    return Err(FrameError::Io(format!(
                        "pipelined recv from {}: expected a Reply envelope, got {other:?}",
                        self.peer
                    )))
                }
            };
            // Replies may come back in any order; slot each by its id.
            let index = id.wrapping_sub(first_id) as usize;
            if index >= sent || replies[index].is_some() {
                return Err(FrameError::Io(format!(
                    "pipelined recv from {}: unexpected reply id {id}",
                    self.peer
                )));
            }
            replies[index] = Some(frame);
            received += 1;
        }
        // `received == frames.len()` and ids are deduplicated above, so
        // every slot is filled — but a malformed peer must surface as an
        // error, never a worker panic.
        let mut out = Vec::with_capacity(replies.len());
        for (index, reply) in replies.into_iter().enumerate() {
            match reply {
                Some(frame) => out.push(frame),
                None => {
                    return Err(FrameError::Io(format!(
                        "pipelined recv from {}: request {index} never answered",
                        self.peer
                    )))
                }
            }
        }
        Ok(out)
    }
}

struct MuxInner {
    transport: Box<dyn FrameTransport>,
    next_id: u64,
    /// Replies read off the wire while looking for some *other* session's
    /// reply, parked by correlation id until their caller asks.
    parked: BTreeMap<u64, Frame>,
    /// [`Frame::Notify`] pushes parked per session (the `session` field on
    /// the push, not a correlation id), so one shard's subscriber never
    /// steals a sibling's events.
    parked_pushes: BTreeMap<u64, Vec<Frame>>,
}

impl MuxInner {
    /// Pulls pushes buffered by the underlying transport and parks each
    /// under the session named on its `Notify` frame.
    fn park_pushes(&mut self) {
        for push in self.transport.drain_pushes() {
            if let Frame::Notify { session, .. } = &push {
                self.parked_pushes.entry(*session).or_default().push(push);
            }
        }
    }
}

/// Multiplexes several daemon sessions over one connection.
///
/// Each [`SessionMux::session`] handle is an independent
/// [`FrameTransport`]: its `send` wraps the frame in a v2
/// [`Frame::Request`] tagged with the session id and a fresh correlation
/// id, and its `recv` re-associates [`Frame::Reply`] envelopes by id —
/// parking replies destined for sibling sessions so interleaved traffic
/// from several shards shares one socket without cross-talk. Handles
/// share the connection behind a mutex, so sessions may live on
/// different shard worker threads; each send or recv holds the lock for
/// exactly one frame.
pub struct SessionMux {
    inner: Arc<Mutex<MuxInner>>,
}

impl SessionMux {
    /// Wraps a connected transport.
    pub fn new(transport: Box<dyn FrameTransport>) -> SessionMux {
        SessionMux {
            inner: Arc::new(Mutex::new(MuxInner {
                transport,
                next_id: 0,
                parked: BTreeMap::new(),
                parked_pushes: BTreeMap::new(),
            })),
        }
    }

    /// A transport handle speaking for `session` on the shared connection.
    pub fn session(&self, session: u64) -> SessionTransport {
        SessionTransport {
            inner: Arc::clone(&self.inner),
            session,
            outstanding: VecDeque::new(),
        }
    }
}

/// Locks the shared mux state, recovering from poisoning. The per-frame
/// critical sections never leave `MuxInner` half-written (a send or recv
/// either completes or returns before mutating), so if a sibling handle's
/// thread panicked mid-hold the state is still coherent — and a transport
/// must degrade with an error, never cascade a panic across sessions.
fn lock_mux(inner: &Mutex<MuxInner>) -> std::sync::MutexGuard<'_, MuxInner> {
    inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One session's view of a [`SessionMux`]-shared connection.
pub struct SessionTransport {
    inner: Arc<Mutex<MuxInner>>,
    session: u64,
    /// Correlation ids this session has sent and not yet received, oldest
    /// first — `recv` resolves them in send order.
    outstanding: VecDeque<u64>,
}

impl FrameTransport for SessionTransport {
    fn send(&mut self, frame: &Frame) -> Result<(), FrameError> {
        let mut inner = lock_mux(&self.inner);
        let id = inner.next_id;
        inner.next_id = inner.next_id.wrapping_add(1);
        inner.transport.send(&Frame::Request {
            id,
            session: self.session,
            frame: Box::new(frame.clone()),
        })?;
        self.outstanding.push_back(id);
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, FrameError> {
        let wanted = *self.outstanding.front().ok_or_else(|| {
            FrameError::Io(format!(
                "session {} recv with no request outstanding",
                self.session
            ))
        })?;
        let mut inner = lock_mux(&self.inner);
        loop {
            if let Some(frame) = inner.parked.remove(&wanted) {
                self.outstanding.pop_front();
                return Ok(frame);
            }
            match inner.transport.recv()? {
                Frame::Reply { id, frame } => {
                    if id == wanted {
                        self.outstanding.pop_front();
                        return Ok(*frame);
                    }
                    inner.parked.insert(id, *frame);
                }
                // A transport that does not buffer pushes itself may hand
                // them up raw — park by the push's own session field.
                push @ Frame::Notify { .. } => {
                    if let Frame::Notify { session, .. } = &push {
                        let session = *session;
                        inner.parked_pushes.entry(session).or_default().push(push);
                    }
                }
                Frame::Ping => {}
                other => {
                    return Err(FrameError::Io(format!(
                        "session {} recv: expected a Reply envelope, got {other:?}",
                        self.session
                    )))
                }
            }
        }
    }

    fn peer(&self) -> String {
        let inner = lock_mux(&self.inner);
        format!("{}#session{}", inner.transport.peer(), self.session)
    }

    fn drain_pushes(&mut self) -> Vec<Frame> {
        let mut inner = lock_mux(&self.inner);
        inner.park_pushes();
        inner
            .parked_pushes
            .remove(&self.session)
            .unwrap_or_default()
    }
}

/// Where a remote node daemon listens — the value-typed half of a
/// connection, so shard specifications stay `Clone`/`Debug`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteEndpoint {
    /// A TCP address, e.g. `127.0.0.1:8945`.
    Tcp(String),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(String),
}

impl core::fmt::Display for RemoteEndpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RemoteEndpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            RemoteEndpoint::Unix(path) => write!(f, "unix://{path}"),
        }
    }
}

impl RemoteEndpoint {
    /// Connects, returning a ready frame transport.
    pub fn connect(&self) -> Result<Box<dyn FrameTransport>, FrameError> {
        Ok(self.connect_counted()?.0)
    }

    /// Connects, also handing back the transport's [`WireCounter`] so the
    /// caller (the bench harness, mostly) can watch wire traffic from the
    /// outside.
    pub fn connect_counted(&self) -> Result<(Box<dyn FrameTransport>, WireCounter), FrameError> {
        match self {
            RemoteEndpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| FrameError::Io(format!("connect {self}: {e}")))?;
                stream
                    .set_nodelay(true)
                    .map_err(|e| FrameError::Io(format!("nodelay {self}: {e}")))?;
                let transport = StreamTransport::new(stream, self.to_string());
                let counter = transport.counter();
                Ok((Box::new(transport), counter))
            }
            #[cfg(unix)]
            RemoteEndpoint::Unix(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| FrameError::Io(format!("connect {self}: {e}")))?;
                let transport = StreamTransport::new(stream, self.to_string());
                let counter = transport.counter();
                Ok((Box::new(transport), counter))
            }
        }
    }
}
