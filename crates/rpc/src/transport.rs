//! Byte-stream transports for the frame protocol: one trait, served by a
//! real TCP/Unix socket in production and by an in-memory duplex pipe in
//! deterministic tests.
//!
//! A [`FrameTransport`] is strictly request/response from the client's
//! side: `send` one frame, `recv` its answer. That matches the dispatch
//! loop the `rpcd` daemon runs — one frame in, one frame out — and keeps
//! the client free of any read-buffer state machine.

use crate::frame::{Frame, FrameError};
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// One end of a frame conversation.
pub trait FrameTransport {
    /// Ships one frame to the peer.
    fn send(&mut self, frame: &Frame) -> Result<(), FrameError>;
    /// Receives the peer's next frame.
    fn recv(&mut self) -> Result<Frame, FrameError>;
    /// A human-readable peer description for error messages.
    fn peer(&self) -> String {
        "peer".into()
    }
}

/// Frame framing over any blocking byte stream (TCP socket, Unix socket,
/// or anything else `Read + Write`).
pub struct StreamTransport<S> {
    stream: S,
    peer: String,
}

impl<S: Read + Write> StreamTransport<S> {
    /// Wraps a connected stream.
    pub fn new(stream: S, peer: impl Into<String>) -> StreamTransport<S> {
        StreamTransport {
            stream,
            peer: peer.into(),
        }
    }
}

impl<S: Read + Write> FrameTransport for StreamTransport<S> {
    fn send(&mut self, frame: &Frame) -> Result<(), FrameError> {
        frame.write_to(&mut self.stream)
    }
    fn recv(&mut self) -> Result<Frame, FrameError> {
        Frame::read_from(&mut self.stream)
    }
    fn peer(&self) -> String {
        self.peer.clone()
    }
}

/// Where a remote node daemon listens — the value-typed half of a
/// connection, so shard specifications stay `Clone`/`Debug`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteEndpoint {
    /// A TCP address, e.g. `127.0.0.1:8945`.
    Tcp(String),
    /// A Unix domain socket path.
    #[cfg(unix)]
    Unix(String),
}

impl core::fmt::Display for RemoteEndpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RemoteEndpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            RemoteEndpoint::Unix(path) => write!(f, "unix://{path}"),
        }
    }
}

impl RemoteEndpoint {
    /// Connects, returning a ready frame transport.
    pub fn connect(&self) -> Result<Box<dyn FrameTransport>, FrameError> {
        match self {
            RemoteEndpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| FrameError::Io(format!("connect {self}: {e}")))?;
                stream
                    .set_nodelay(true)
                    .map_err(|e| FrameError::Io(format!("nodelay {self}: {e}")))?;
                Ok(Box::new(StreamTransport::new(stream, self.to_string())))
            }
            #[cfg(unix)]
            RemoteEndpoint::Unix(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| FrameError::Io(format!("connect {self}: {e}")))?;
                Ok(Box::new(StreamTransport::new(stream, self.to_string())))
            }
        }
    }
}
