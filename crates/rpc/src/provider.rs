//! [`NodeProvider`]: the full node boundary behind one [`EndpointId`] of a
//! [`ProviderPool`] — both API traits plus backend access for the
//! simulation driver itself.
//!
//! The API traits model what a *client* can do over the wire. The
//! simulation additionally owns the infrastructure: it mines slots, checks
//! conservation invariants, and injects failures (garbage-collecting a
//! peer's blocks, say). Those backstage operations go through the
//! `chain`/`swarm` accessors, which every decorator forwards down to the
//! innermost [`SimProvider`].
//!
//! [`EndpointId`]: crate::pool::EndpointId
//! [`ProviderPool`]: crate::pool::ProviderPool

use crate::decorators::{
    FaultProfile, FlakyProvider, LatencyProvider, MeteredProvider, ProviderMetrics,
    RateLimitProfile, RateLimitProvider,
};
use crate::envelope::{RpcError, RpcRequest, RpcResponse};
use crate::eth::EthApi;
use crate::ipfs::IpfsApi;
use crate::sim::SimProvider;
use crate::Billed;
use ofl_eth::chain::Chain;
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, IpfsError, Swarm};
use ofl_netsim::link::NetworkProfile;

/// Everything a world needs from one node endpoint: the client-visible API
/// surface plus backstage access to the simulated infrastructure.
pub trait NodeProvider: EthApi + IpfsApi {
    /// The backing chain (backstage: mining, invariant checks).
    fn chain(&self) -> &Chain;
    /// Mutable backing chain (backstage: slot production).
    fn chain_mut(&mut self) -> &mut Chain;
    /// The backing swarm (backstage: availability checks).
    fn swarm(&self) -> &Swarm;
    /// Mutable backing swarm (backstage: failure injection).
    fn swarm_mut(&mut self) -> &mut Swarm;
    /// Metering snapshot, when a [`MeteredProvider`] is in the stack.
    fn metrics(&self) -> Option<ProviderMetrics> {
        None
    }
    /// Backstage slot-boundary notification: the world calls this when a
    /// 12-second slot elapses so window-based decorators (rate limiting)
    /// can reset. Decorators forward it down the stack.
    fn on_slot(&mut self) {}
}

/// Forwarding impls so decorator stacks can be assembled layer by layer
/// over `Box<dyn NodeProvider>` without knowing the concrete type below.
impl EthApi for Box<dyn NodeProvider> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        (**self).execute(request)
    }
    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        (**self).batch(requests)
    }
}

impl IpfsApi for Box<dyn NodeProvider> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        (**self).add(node, data)
    }
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        (**self).cat(node, cid)
    }
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        (**self).pin(node, cid)
    }
}

impl NodeProvider for Box<dyn NodeProvider> {
    fn chain(&self) -> &Chain {
        (**self).chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        (**self).chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        (**self).swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        (**self).swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        (**self).metrics()
    }
    fn on_slot(&mut self) {
        (**self).on_slot()
    }
}

/// Builds the standard decorator stack around an in-process backend:
/// metering over latency pricing over (optionally) rate limiting over
/// (optionally) fault injection.
pub fn build_provider(
    chain: Chain,
    swarm: Swarm,
    profile: NetworkProfile,
    envelope_bytes: u64,
    faults: Option<FaultProfile>,
    rate_limit: Option<RateLimitProfile>,
) -> Box<dyn NodeProvider> {
    let mut stack: Box<dyn NodeProvider> = Box::new(SimProvider::new(chain, swarm));
    if let Some(faults) = faults {
        stack = Box::new(FlakyProvider::new(stack, faults));
    }
    if let Some(rate_limit) = rate_limit {
        stack = Box::new(RateLimitProvider::new(stack, rate_limit));
    }
    Box::new(MeteredProvider::new(LatencyProvider::new(
        stack,
        profile,
        envelope_bytes,
    )))
}

/// Errors whose failures are worth retrying at the client layer.
pub trait Retryable {
    /// True when the failure is transient (a timeout, or a 429 whose
    /// priced back-off has elapsed) rather than a hard rejection.
    fn is_transient(&self) -> bool;
}

impl Retryable for RpcError {
    fn is_transient(&self) -> bool {
        matches!(self, RpcError::Timeout | RpcError::RateLimited)
    }
}

impl Retryable for crate::bindings::BindingError {
    fn is_transient(&self) -> bool {
        matches!(
            self,
            crate::bindings::BindingError::Rpc(RpcError::Timeout)
                | crate::bindings::BindingError::Rpc(RpcError::RateLimited)
        )
    }
}
