//! [`NodeProvider`]: the full node boundary a [`World`] owns — both API
//! traits plus backend access for the simulation driver itself.
//!
//! The API traits model what a *client* can do over the wire. The
//! simulation additionally owns the infrastructure: it mines slots, checks
//! conservation invariants, and injects failures (garbage-collecting a
//! peer's blocks, say). Those backstage operations go through the
//! `chain`/`swarm` accessors, which every decorator forwards down to the
//! innermost [`SimProvider`].
//!
//! [`World`]: ../../ofl_core/world/struct.World.html

use crate::decorators::{
    FaultProfile, FlakyProvider, LatencyProvider, MeteredProvider, ProviderMetrics,
};
use crate::envelope::RpcError;
use crate::eth::EthApi;
use crate::ipfs::IpfsApi;
use crate::sim::SimProvider;
use ofl_eth::chain::Chain;
use ofl_ipfs::swarm::Swarm;
use ofl_netsim::link::NetworkProfile;

/// Everything a world needs from its node: the client-visible API surface
/// plus backstage access to the simulated infrastructure.
pub trait NodeProvider: EthApi + IpfsApi {
    /// The backing chain (backstage: mining, invariant checks).
    fn chain(&self) -> &Chain;
    /// Mutable backing chain (backstage: slot production).
    fn chain_mut(&mut self) -> &mut Chain;
    /// The backing swarm (backstage: availability checks).
    fn swarm(&self) -> &Swarm;
    /// Mutable backing swarm (backstage: failure injection).
    fn swarm_mut(&mut self) -> &mut Swarm;
    /// Metering snapshot, when a [`MeteredProvider`] is in the stack.
    fn metrics(&self) -> Option<ProviderMetrics> {
        None
    }
}

/// Builds the standard decorator stack around an in-process backend:
/// metering over latency pricing over (optionally) fault injection.
pub fn build_provider(
    chain: Chain,
    swarm: Swarm,
    profile: NetworkProfile,
    envelope_bytes: u64,
    faults: Option<FaultProfile>,
) -> Box<dyn NodeProvider> {
    let sim = SimProvider::new(chain, swarm);
    match faults {
        Some(faults) => Box::new(MeteredProvider::new(LatencyProvider::new(
            FlakyProvider::new(sim, faults),
            profile,
            envelope_bytes,
        ))),
        None => Box::new(MeteredProvider::new(LatencyProvider::new(
            sim,
            profile,
            envelope_bytes,
        ))),
    }
}

/// Errors whose failures are worth retrying at the client layer.
pub trait Retryable {
    /// True when the failure is transient (a timeout) rather than a hard
    /// rejection.
    fn is_transient(&self) -> bool;
}

impl Retryable for RpcError {
    fn is_transient(&self) -> bool {
        matches!(self, RpcError::Timeout)
    }
}

impl Retryable for crate::bindings::BindingError {
    fn is_transient(&self) -> bool {
        matches!(self, crate::bindings::BindingError::Rpc(RpcError::Timeout))
    }
}
