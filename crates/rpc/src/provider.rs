//! [`NodeProvider`]: the full node boundary behind one [`EndpointId`] of a
//! [`ProviderPool`] — both API traits plus backend access for the
//! simulation driver itself.
//!
//! The API traits model what a *client* can do over the wire. The
//! simulation additionally owns the infrastructure: it mines slots, checks
//! conservation invariants, and injects failures (garbage-collecting a
//! peer's blocks, say). Those backstage operations go through the
//! `chain`/`swarm` accessors, which every decorator forwards down to the
//! innermost [`SimProvider`].
//!
//! [`EndpointId`]: crate::pool::EndpointId
//! [`ProviderPool`]: crate::pool::ProviderPool

use crate::backstage::{BackstageOp, BackstageReply};
use crate::decorators::{
    FaultProfile, FlakyProvider, LatencyProvider, MeteredProvider, ProviderMetrics,
    RateLimitProfile, RateLimitProvider, ReorderProfile, ReorderProvider, SpikeProfile,
    SpikeProvider, StaleProfile, StaleReadProvider, SubLagProfile, SubLagProvider,
};
use crate::envelope::{RpcError, RpcRequest, RpcResponse};
use crate::eth::EthApi;
use crate::ipfs::IpfsApi;
use crate::sim::SimProvider;
use crate::sub::{Notification, SubscriptionKind};
use crate::Billed;
use ofl_eth::chain::Chain;
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, IpfsError, Swarm};
use ofl_netsim::link::NetworkProfile;

/// Everything a world needs from one node endpoint: the client-visible API
/// surface plus backstage access to the simulated infrastructure.
///
/// Providers are `Send` so a sharded world can hand each endpoint's whole
/// stack to a per-shard worker thread between slot barriers (see
/// [`ofl_netsim::par`]).
pub trait NodeProvider: EthApi + IpfsApi + Send {
    /// The backing chain (backstage: mining, invariant checks).
    fn chain(&self) -> &Chain;
    /// Mutable backing chain (backstage: slot production).
    fn chain_mut(&mut self) -> &mut Chain;
    /// The backing swarm (backstage: availability checks).
    fn swarm(&self) -> &Swarm;
    /// Mutable backing swarm (backstage: failure injection).
    fn swarm_mut(&mut self) -> &mut Swarm;
    /// Metering snapshot, when a [`MeteredProvider`] is in the stack.
    fn metrics(&self) -> Option<ProviderMetrics> {
        None
    }
    /// Backstage slot-boundary notification: the world calls this when a
    /// 12-second slot elapses so window-based decorators (rate limiting)
    /// can reset. Decorators forward it down the stack.
    fn on_slot(&mut self) {}
    /// Answers one [`BackstageOp`] — the simulator's side channel (mining,
    /// invariant reads, failure injection) as a value instead of a
    /// reference, so it can cross a process boundary. The default answers
    /// locally via the `chain`/`swarm` accessors; decorators forward it
    /// untouched (backstage traffic is never priced, faulted, or metered),
    /// and [`SocketProvider`](crate::SocketProvider) ships it to the
    /// daemon as one frame.
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        crate::backstage::dispatch_local(self, op)
    }
    /// Opens a push subscription on this endpoint's backend, returning its
    /// id (monotonic per backend, starting at 1). Decorators forward the
    /// call down the stack untouched, so the id is assigned by the
    /// innermost backend — in-process and remote stacks hand out the same
    /// ids for the same subscribe sequence.
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64;
    /// Cancels a subscription; `false` when the id was unknown.
    fn unsubscribe(&mut self, sub_id: u64) -> bool;
    /// Takes every notification published since the last drain, in the
    /// hub's deterministic delivery order (publish order, fan-out within
    /// an event in subscription-id order). The caller — the world's slot
    /// pump — is responsible for draining at slot boundaries.
    fn drain_notifications(&mut self) -> Vec<Notification>;
}

/// Forwarding impls so decorator stacks can be assembled layer by layer
/// over `Box<dyn NodeProvider>` without knowing the concrete type below.
impl EthApi for Box<dyn NodeProvider> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        (**self).execute(request)
    }
    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        (**self).batch(requests)
    }
}

impl IpfsApi for Box<dyn NodeProvider> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        (**self).add(node, data)
    }
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        (**self).cat(node, cid)
    }
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        (**self).pin(node, cid)
    }
}

impl NodeProvider for Box<dyn NodeProvider> {
    fn chain(&self) -> &Chain {
        (**self).chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        (**self).chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        (**self).swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        (**self).swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        (**self).metrics()
    }
    fn on_slot(&mut self) {
        (**self).on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        (**self).backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        (**self).subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        (**self).unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        (**self).drain_notifications()
    }
}

/// The per-endpoint decorator knobs shared by the in-process and remote
/// stack builders: seeded fault injection, request quotas, and lagging
/// replica reads (`None` everywhere = a clean, reliable endpoint).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EndpointFaults {
    /// Seeded RPC drop injection.
    pub faults: Option<FaultProfile>,
    /// Seeded per-slot request quota (429s past it).
    pub rate_limit: Option<RateLimitProfile>,
    /// Seeded lagging-replica reads (head and receipts served late).
    pub stale: Option<StaleProfile>,
    /// Seeded slot-long latency spikes (every exchange stalls while live).
    pub spike: Option<SpikeProfile>,
    /// Seeded shuffling of batch reply arrays (tags preserved).
    pub reorder: Option<ReorderProfile>,
    /// Seeded per-subscription push-delivery lag (and optional reorder).
    pub sub_lag: Option<SubLagProfile>,
}

/// Wraps any backend with the standard decorator stack: batch reordering
/// over metering over latency pricing over (optionally) latency spikes over
/// (optionally) rate limiting over (optionally) fault injection over
/// (optionally) stale replica reads. Stale reads sit innermost so their
/// head queries hit the backend directly without disturbing the fault
/// decorators' seeded draws; reordering sits outermost because it models
/// the wire delivering a batch reply out of order, after pricing and
/// metering saw it in request order.
pub fn decorate(
    backend: Box<dyn NodeProvider>,
    profile: NetworkProfile,
    envelope_bytes: u64,
    knobs: EndpointFaults,
) -> Box<dyn NodeProvider> {
    let mut stack = backend;
    if let Some(stale) = knobs.stale {
        stack = Box::new(StaleReadProvider::new(stack, stale));
    }
    if let Some(faults) = knobs.faults {
        stack = Box::new(FlakyProvider::new(stack, faults));
    }
    if let Some(rate_limit) = knobs.rate_limit {
        stack = Box::new(RateLimitProvider::new(stack, rate_limit));
    }
    if let Some(spike) = knobs.spike {
        stack = Box::new(SpikeProvider::new(stack, spike));
    }
    let mut stack: Box<dyn NodeProvider> = Box::new(MeteredProvider::new(LatencyProvider::new(
        stack,
        profile,
        envelope_bytes,
    )));
    if let Some(reorder) = knobs.reorder {
        stack = Box::new(ReorderProvider::new(stack, reorder));
    }
    // Sub-lag models the wire delivering pushes late, so it wraps the
    // whole stack — notifications are delayed after every other decorator
    // has seen them.
    if let Some(sub_lag) = knobs.sub_lag {
        stack = Box::new(SubLagProvider::new(stack, sub_lag));
    }
    stack
}

/// Builds the standard decorator stack around an in-process backend.
pub fn build_provider(
    chain: Chain,
    swarm: Swarm,
    profile: NetworkProfile,
    envelope_bytes: u64,
    knobs: EndpointFaults,
) -> Box<dyn NodeProvider> {
    decorate(
        Box::new(SimProvider::new(chain, swarm)),
        profile,
        envelope_bytes,
        knobs,
    )
}

/// Errors whose failures are worth retrying at the client layer.
pub trait Retryable {
    /// True when the failure is transient (a timeout, or a 429 whose
    /// priced back-off has elapsed) rather than a hard rejection.
    fn is_transient(&self) -> bool;
}

impl Retryable for RpcError {
    fn is_transient(&self) -> bool {
        matches!(self, RpcError::Timeout | RpcError::RateLimited)
    }
}

impl Retryable for crate::bindings::BindingError {
    fn is_transient(&self) -> bool {
        matches!(
            self,
            crate::bindings::BindingError::Rpc(RpcError::Timeout)
                | crate::bindings::BindingError::Rpc(RpcError::RateLimited)
        )
    }
}
