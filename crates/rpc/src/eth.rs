//! [`EthApi`]: the Ethereum JSON-RPC provider trait.
//!
//! A provider is anything that can answer [`RpcRequest`]s — the in-process
//! [`SimProvider`](crate::sim::SimProvider), any decorator stacked on top of
//! it, or (eventually) a real HTTP endpoint. The one required method is
//! [`EthApi::execute`]; the typed convenience methods are default wrappers
//! that build the envelope, dispatch it, and unwrap the matching result
//! variant, so decorators only ever intercept one choke point.

use crate::envelope::{RpcError, RpcMethod, RpcRequest, RpcResponse, RpcResult};
use crate::Billed;
use ofl_eth::block::Receipt;
use ofl_eth::chain::{CallResult, FilteredLog, LogFilter};
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};

/// The Ethereum node API, shaped like the real JSON-RPC surface.
pub trait EthApi {
    /// Answers one request. This is the single choke point every decorator
    /// wraps; all typed methods funnel through it.
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse;

    /// Answers a batch of requests in **one provider round trip** — how N
    /// receipt polls cost one wire exchange instead of N. The default
    /// implementation degrades to per-request execution; latency-aware
    /// decorators override it to price the batch as a single round trip.
    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        requests.iter().map(|r| self.execute(r)).collect()
    }

    /// `eth_sendRawTransaction`: broadcasts signed raw bytes, returning the
    /// transaction hash.
    fn send_raw_transaction(&mut self, raw: &[u8]) -> Billed<Result<H256, RpcError>> {
        let response = self.execute(&RpcRequest::new(
            0,
            RpcMethod::SendRawTransaction { raw: raw.to_vec() },
        ));
        unwrap_response(response, |result| match result {
            RpcResult::TxHash(h) => Some(h),
            _ => None,
        })
    }

    /// `eth_getTransactionReceipt`: `None` while unmined.
    fn get_transaction_receipt(&mut self, hash: H256) -> Billed<Result<Option<Receipt>, RpcError>> {
        let response = self.execute(&RpcRequest::new(
            0,
            RpcMethod::GetTransactionReceipt { hash },
        ));
        unwrap_response(response, |result| match result {
            RpcResult::Receipt(r) => Some(r),
            _ => None,
        })
    }

    /// `eth_call`: free read-only execution. Reverts come back as data
    /// (`CallResult::success == false`), not as an `RpcError`.
    fn call(
        &mut self,
        from: &H160,
        to: &H160,
        data: Vec<u8>,
    ) -> Billed<Result<CallResult, RpcError>> {
        let response = self.execute(&RpcRequest::new(
            0,
            RpcMethod::Call {
                from: *from,
                to: *to,
                data,
            },
        ));
        unwrap_response(response, |result| match result {
            RpcResult::Call(c) => Some(c),
            _ => None,
        })
    }

    /// `eth_getLogs`: filtered event query.
    fn get_logs(&mut self, filter: &LogFilter) -> Billed<Result<Vec<FilteredLog>, RpcError>> {
        let response = self.execute(&RpcRequest::new(
            0,
            RpcMethod::GetLogs {
                filter: filter.clone(),
            },
        ));
        unwrap_response(response, |result| match result {
            RpcResult::Logs(logs) => Some(logs),
            _ => None,
        })
    }

    /// `eth_blockNumber`: current chain height.
    fn block_number(&mut self) -> Billed<Result<u64, RpcError>> {
        let response = self.execute(&RpcRequest::new(0, RpcMethod::BlockNumber));
        unwrap_response(response, |result| match result {
            RpcResult::BlockNumber(n) => Some(n),
            _ => None,
        })
    }

    /// `eth_getBalance`: account balance in wei.
    fn get_balance(&mut self, address: &H160) -> Billed<Result<U256, RpcError>> {
        let response = self.execute(&RpcRequest::new(
            0,
            RpcMethod::GetBalance { address: *address },
        ));
        unwrap_response(response, |result| match result {
            RpcResult::Balance(b) => Some(b),
            _ => None,
        })
    }

    /// `eth_getTransactionCount`: account nonce.
    fn get_transaction_count(&mut self, address: &H160) -> Billed<Result<u64, RpcError>> {
        let response = self.execute(&RpcRequest::new(
            0,
            RpcMethod::GetTransactionCount { address: *address },
        ));
        unwrap_response(response, |result| match result {
            RpcResult::TransactionCount(n) => Some(n),
            _ => None,
        })
    }

    /// `eth_estimateGas`: gas a prospective transaction would use — what a
    /// wallet asks before signing.
    fn estimate_gas(
        &mut self,
        from: &H160,
        to: Option<&H160>,
        data: &[u8],
    ) -> Billed<Result<u64, RpcError>> {
        let response = self.execute(&RpcRequest::new(
            0,
            RpcMethod::EstimateGas {
                from: *from,
                to: to.copied(),
                data: data.to_vec(),
            },
        ));
        unwrap_response(response, |result| match result {
            RpcResult::GasEstimate(n) => Some(n),
            _ => None,
        })
    }

    /// `eth_gasPrice`: the node's gas-price oracle (our simulated node
    /// reports the current base fee).
    fn gas_price(&mut self) -> Billed<Result<U256, RpcError>> {
        let response = self.execute(&RpcRequest::new(0, RpcMethod::GasPrice));
        unwrap_response(response, |result| match result {
            RpcResult::GasPrice(p) => Some(p),
            _ => None,
        })
    }

    /// `eth_chainId`: the chain's replay-protection id.
    fn chain_id(&mut self) -> Billed<Result<u64, RpcError>> {
        let response = self.execute(&RpcRequest::new(0, RpcMethod::ChainId));
        unwrap_response(response, |result| match result {
            RpcResult::ChainId(n) => Some(n),
            _ => None,
        })
    }
}

fn unwrap_response<T>(
    response: RpcResponse,
    extract: impl FnOnce(RpcResult) -> Option<T>,
) -> Billed<Result<T, RpcError>> {
    Billed {
        cost: response.cost,
        value: response
            .result
            .and_then(|r| extract(r).ok_or(RpcError::UnexpectedResponse)),
    }
}
