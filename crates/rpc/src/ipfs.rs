//! [`IpfsApi`]: the IPFS node API (`add` / `cat` / `pin`).
//!
//! Shaped like the IPFS HTTP API a DApp backend talks to: each call names
//! the node (daemon) it is addressed to, and returns a [`Billed`] value so
//! decorators can price LAN transfer time without touching any clock.
//! Errors stay the typed [`IpfsError`] the swarm produces — content
//! availability is a first-class outcome here, not a transport failure.

use crate::Billed;
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, IpfsError};

/// The IPFS node API surface the OFL-W3 core needs.
pub trait IpfsApi {
    /// `ipfs add`: chunks `data`, stores and pins the DAG on `node`, and
    /// returns the root CID plus storage stats.
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult>;

    /// `ipfs cat`: fetches the full DAG under `cid` to `node` (bitswapping
    /// missing blocks from peers) and reassembles the file.
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>>;

    /// `ipfs pin add`: pins `cid` on `node` so garbage collection keeps it.
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>>;
}
