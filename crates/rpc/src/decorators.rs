//! Composable provider decorators: latency pricing, deterministic fault
//! injection, and per-method metering.
//!
//! Each decorator implements the same [`EthApi`]/[`IpfsApi`] traits it
//! wraps, so stacks compose freely:
//!
//! ```text
//! ReorderProvider                   ← seeded shuffle of batch reply arrays
//!   └─ MeteredProvider              ← counts calls/errors, sums costs
//!        └─ LatencyProvider         ← prices each request from the netsim links
//!             └─ SpikeProvider      ← seeded slot-long latency stalls
//!                  └─ RateLimitProvider  ← seeded 429s after K requests per slot
//!                       └─ FlakyProvider ← seeded request drops, timeout cost
//!                            └─ SimProvider  (in-process chain + swarm)
//! ```
//!
//! Decorators never touch a clock: they *price* requests into the response
//! envelope's `cost` field, and the caller decides which clock or timeline
//! pays. That is what lets the serial workflow charge its one global clock
//! while the discrete-event engine charges per-owner timelines, both
//! through the same stack.

use crate::backstage::{BackstageOp, BackstageReply};
use crate::envelope::{RpcError, RpcMethod, RpcRequest, RpcResponse, RpcResult};
use crate::eth::EthApi;
use crate::ipfs::IpfsApi;
use crate::provider::NodeProvider;
use crate::sub::{Notification, SubscriptionKind};
use crate::Billed;
use ofl_eth::chain::Chain;
use ofl_ipfs::cid::Cid;
use ofl_ipfs::swarm::{AddResult, FetchStats, IpfsError, Swarm};
use ofl_netsim::clock::SimDuration;
use ofl_netsim::link::NetworkProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

// ----------------------------------------------------------------------
// LatencyProvider
// ----------------------------------------------------------------------

/// Prices every request with the netsim link model: RPC round trips for the
/// Ethereum surface, LAN exchanges for IPFS. Batches are priced as **one**
/// round trip carrying all payloads.
pub struct LatencyProvider<P> {
    inner: P,
    profile: NetworkProfile,
    /// Fixed wire overhead per request (HTTP/JSON framing).
    pub envelope_bytes: u64,
}

impl<P> LatencyProvider<P> {
    /// Wraps `inner`, pricing against `profile`.
    pub fn new(inner: P, profile: NetworkProfile, envelope_bytes: u64) -> LatencyProvider<P> {
        LatencyProvider {
            inner,
            profile,
            envelope_bytes,
        }
    }

    fn price(&self, request_payload: u64, response_payload: u64) -> SimDuration {
        self.profile.rpc.rpc_round_trip(
            self.envelope_bytes + request_payload,
            self.envelope_bytes + response_payload,
        )
    }
}

fn response_payload(response: &RpcResponse) -> u64 {
    response
        .result
        .as_ref()
        .map(|r| r.payload_bytes())
        .unwrap_or(0)
}

impl<P: EthApi> EthApi for LatencyProvider<P> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        let mut response = self.inner.execute(request);
        let cost = self.price(request.method.payload_bytes(), response_payload(&response));
        response.cost = response.cost.saturating_add(cost);
        response
    }

    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        let mut responses = self.inner.batch(requests);
        // One wire round trip for the whole batch: payloads sum, framing is
        // paid once. The full batch cost rides on the first response.
        let out: u64 = requests.iter().map(|r| r.method.payload_bytes()).sum();
        let back: u64 = responses.iter().map(response_payload).sum();
        let cost = self.price(out, back);
        if let Some(first) = responses.first_mut() {
            first.cost = first.cost.saturating_add(cost);
        }
        responses
    }
}

impl<P: IpfsApi> IpfsApi for LatencyProvider<P> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        let mut billed = self.inner.add(node, data);
        billed.cost = billed
            .cost
            .saturating_add(self.profile.lan.exchange_time(billed.value.bytes_stored, 1));
        billed
    }

    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        let mut billed = self.inner.cat(node, cid);
        let transfer = match &billed.value {
            Ok((_, stats)) => self
                .profile
                .lan
                .exchange_time(stats.bytes_fetched, stats.rounds.max(1)),
            // A failed fetch still walked the want-list once.
            Err(_) => self.profile.lan.exchange_time(0, 1),
        };
        billed.cost = billed.cost.saturating_add(transfer);
        billed
    }

    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        let mut billed = self.inner.pin(node, cid);
        billed.cost = billed
            .cost
            .saturating_add(self.profile.lan.exchange_time(0, 1));
        billed
    }
}

impl<P: NodeProvider> NodeProvider for LatencyProvider<P> {
    fn chain(&self) -> &Chain {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        self.inner.chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        self.inner.swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        self.inner.swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        self.inner.metrics()
    }
    fn on_slot(&mut self) {
        self.inner.on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        self.inner.backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.inner.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        self.inner.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        self.inner.drain_notifications()
    }
}

// ----------------------------------------------------------------------
// FlakyProvider
// ----------------------------------------------------------------------

/// How an unreliable RPC endpoint misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Seed of the drop sequence — equal seeds reproduce the exact same
    /// faults, request for request.
    pub seed: u64,
    /// Probability that any one Ethereum request (or whole batch) is
    /// dropped.
    pub drop_rate: f64,
    /// Virtual time a dropped request wastes before the caller gives up on
    /// it (the client-side timeout).
    pub timeout: SimDuration,
}

impl FaultProfile {
    /// A profile with the default 3-second client timeout.
    pub fn new(seed: u64, drop_rate: f64) -> FaultProfile {
        FaultProfile {
            seed,
            drop_rate,
            timeout: SimDuration::from_secs(3),
        }
    }
}

/// Drops Ethereum requests with a seeded, deterministic coin — the
/// infrastructure-fault scenario generator. A dropped request costs the
/// profile's timeout; IPFS traffic (LAN-local in the paper's deployment)
/// passes through untouched.
pub struct FlakyProvider<P> {
    inner: P,
    profile: FaultProfile,
    rng: StdRng,
    /// How many requests (or whole batches) have been dropped so far.
    pub dropped: u64,
}

impl<P> FlakyProvider<P> {
    /// Wraps `inner` with the given fault profile.
    pub fn new(inner: P, profile: FaultProfile) -> FlakyProvider<P> {
        FlakyProvider {
            inner,
            rng: StdRng::seed_from_u64(profile.seed),
            profile,
            dropped: 0,
        }
    }

    fn drops_now(&mut self) -> bool {
        let dropped = self.rng.gen_bool(self.profile.drop_rate);
        if dropped {
            self.dropped += 1;
            ofl_trace::trace_event!(
                ofl_trace::Category::Provider,
                "flaky.drop",
                "total" => self.dropped,
            );
        }
        dropped
    }
}

impl<P: EthApi> EthApi for FlakyProvider<P> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        if self.drops_now() {
            return RpcResponse {
                id: request.id,
                result: Err(RpcError::Timeout),
                cost: self.profile.timeout,
            };
        }
        self.inner.execute(request)
    }

    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        // A batch is one HTTP request: it drops (or survives) as a unit.
        if self.drops_now() {
            return requests
                .iter()
                .enumerate()
                .map(|(i, r)| RpcResponse {
                    id: r.id,
                    result: Err(RpcError::Timeout),
                    // The timeout elapses once for the whole batch.
                    cost: if i == 0 {
                        self.profile.timeout
                    } else {
                        SimDuration::ZERO
                    },
                })
                .collect();
        }
        self.inner.batch(requests)
    }
}

impl<P: IpfsApi> IpfsApi for FlakyProvider<P> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        self.inner.add(node, data)
    }
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        self.inner.cat(node, cid)
    }
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        self.inner.pin(node, cid)
    }
}

impl<P: NodeProvider> NodeProvider for FlakyProvider<P> {
    fn chain(&self) -> &Chain {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        self.inner.chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        self.inner.swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        self.inner.swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        self.inner.metrics()
    }
    fn on_slot(&mut self) {
        self.inner.on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        self.inner.backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.inner.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        self.inner.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        self.inner.drain_notifications()
    }
}

// ----------------------------------------------------------------------
// RateLimitProvider
// ----------------------------------------------------------------------

/// How a quota-enforcing endpoint throttles its clients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitProfile {
    /// Seed of the per-slot allowance jitter — equal seeds reproduce the
    /// exact same 429 sequence, request for request.
    pub seed: u64,
    /// Baseline request budget per 12-second slot (single requests and
    /// whole batches each spend one unit, like one HTTP exchange).
    pub requests_per_slot: u64,
    /// Virtual time a throttled client backs off before retrying; the
    /// window is treated as elapsed once the back-off is paid.
    pub backoff: SimDuration,
}

impl RateLimitProfile {
    /// A profile with the default 1-second client back-off.
    pub fn new(seed: u64, requests_per_slot: u64) -> RateLimitProfile {
        RateLimitProfile {
            seed,
            requests_per_slot,
            backoff: SimDuration::from_secs(1),
        }
    }
}

/// Answers 429-style [`RpcError::RateLimited`] once a client exceeds its
/// per-slot request budget — the quota-fault scenario generator. Each slot
/// grants a seeded allowance (baseline plus deterministic jitter); the
/// request over budget is refused at the cost of the profile's back-off,
/// after which the window is considered elapsed and the allowance renews.
/// IPFS traffic (LAN-local in the paper's deployment) passes untouched.
pub struct RateLimitProvider<P> {
    inner: P,
    profile: RateLimitProfile,
    rng: StdRng,
    allowance: u64,
    used: u64,
    /// How many requests (or whole batches) have been refused so far.
    pub limited: u64,
}

impl<P> RateLimitProvider<P> {
    /// Wraps `inner` with the given quota profile.
    pub fn new(inner: P, profile: RateLimitProfile) -> RateLimitProvider<P> {
        let mut rng = StdRng::seed_from_u64(profile.seed);
        let allowance = draw_allowance(&mut rng, &profile);
        RateLimitProvider {
            inner,
            profile,
            rng,
            allowance,
            used: 0,
            limited: 0,
        }
    }

    /// Spends one unit of the window's budget; `true` means the request is
    /// refused (and the window renews behind the priced back-off).
    fn throttles_now(&mut self) -> bool {
        if self.used < self.allowance {
            self.used += 1;
            return false;
        }
        self.limited += 1;
        ofl_trace::trace_event!(
            ofl_trace::Category::Provider,
            "ratelimit.throttle",
            "total" => self.limited,
        );
        self.renew_window();
        true
    }

    fn renew_window(&mut self) {
        self.used = 0;
        self.allowance = draw_allowance(&mut self.rng, &self.profile);
    }
}

/// Baseline budget plus up to 25 % seeded jitter.
fn draw_allowance(rng: &mut StdRng, profile: &RateLimitProfile) -> u64 {
    let jitter_span = profile.requests_per_slot / 4 + 1;
    (profile.requests_per_slot + rng.gen_range(0..jitter_span)).max(1)
}

impl<P: EthApi> EthApi for RateLimitProvider<P> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        if self.throttles_now() {
            return RpcResponse {
                id: request.id,
                result: Err(RpcError::RateLimited),
                cost: self.profile.backoff,
            };
        }
        self.inner.execute(request)
    }

    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        // A batch is one HTTP request: it spends (or is refused) one unit.
        if self.throttles_now() {
            return requests
                .iter()
                .enumerate()
                .map(|(i, r)| RpcResponse {
                    id: r.id,
                    result: Err(RpcError::RateLimited),
                    // The back-off elapses once for the whole batch.
                    cost: if i == 0 {
                        self.profile.backoff
                    } else {
                        SimDuration::ZERO
                    },
                })
                .collect();
        }
        self.inner.batch(requests)
    }
}

impl<P: IpfsApi> IpfsApi for RateLimitProvider<P> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        self.inner.add(node, data)
    }
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        self.inner.cat(node, cid)
    }
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        self.inner.pin(node, cid)
    }
}

impl<P: NodeProvider> NodeProvider for RateLimitProvider<P> {
    fn chain(&self) -> &Chain {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        self.inner.chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        self.inner.swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        self.inner.swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        self.inner.metrics()
    }
    fn on_slot(&mut self) {
        self.renew_window();
        self.inner.on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        self.inner.backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.inner.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        self.inner.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        self.inner.drain_notifications()
    }
}

// ----------------------------------------------------------------------
// SpikeProvider
// ----------------------------------------------------------------------

/// How a congested endpoint's latency spikes come and go.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeProfile {
    /// Seed of the per-slot spike draws — equal seeds reproduce the exact
    /// same stall windows, slot for slot.
    pub seed: u64,
    /// Probability that a stall begins at any idle slot boundary.
    pub spike_rate: f64,
    /// How many 12-second slots one stall lasts once it begins.
    pub spike_slots: u64,
    /// Extra virtual time every Ethereum exchange pays while stalled.
    pub stall: SimDuration,
}

impl SpikeProfile {
    /// A profile with the default 2-slot, 2-second stalls.
    pub fn new(seed: u64, spike_rate: f64) -> SpikeProfile {
        SpikeProfile {
            seed,
            spike_rate,
            spike_slots: 2,
            stall: SimDuration::from_secs(2),
        }
    }
}

/// Stalls an endpoint for whole slots at a time — the congested-provider
/// scenario generator. At each idle slot boundary a seeded coin decides
/// whether a spike begins; while one is live, every Ethereum request (or
/// whole batch) pays the profile's stall on top of its normal price, then
/// the endpoint recovers and the coin waits for the next boundary. Spikes
/// are a property of virtual *slots*, not of request count, so equal seeds
/// stall the exact same windows however much traffic flows through them.
/// IPFS traffic (LAN-local in the paper's deployment) passes untouched.
pub struct SpikeProvider<P> {
    inner: P,
    profile: SpikeProfile,
    rng: StdRng,
    /// Slots left before the current spike clears (0 = healthy).
    remaining_slots: u64,
    /// How many requests (or whole batches) were served mid-spike.
    pub stalled: u64,
}

impl<P> SpikeProvider<P> {
    /// Wraps `inner` with the given spike profile. The first slot draws its
    /// coin immediately, so a spike can be live from the very first request.
    pub fn new(inner: P, profile: SpikeProfile) -> SpikeProvider<P> {
        let mut rng = StdRng::seed_from_u64(profile.seed);
        let remaining_slots = if rng.gen_bool(profile.spike_rate) {
            profile.spike_slots
        } else {
            0
        };
        SpikeProvider {
            inner,
            profile,
            rng,
            remaining_slots,
            stalled: 0,
        }
    }

    /// True while a spike window is live.
    pub fn is_stalled(&self) -> bool {
        self.remaining_slots > 0
    }

    /// One slot elapses: a live spike runs down; an idle boundary draws the
    /// seeded coin for the next one. The coin is only drawn while healthy,
    /// so the draw stream — and with it every later window — depends on
    /// nothing but the seed and the slot count.
    fn advance_slot(&mut self) {
        if self.remaining_slots > 0 {
            self.remaining_slots -= 1;
            return;
        }
        if self.rng.gen_bool(self.profile.spike_rate) {
            self.remaining_slots = self.profile.spike_slots;
        }
    }

    /// Adds the stall to one already-priced cost when a spike is live.
    fn stall_cost(&mut self, cost: SimDuration) -> SimDuration {
        if self.remaining_slots == 0 {
            return cost;
        }
        self.stalled += 1;
        ofl_trace::trace_event!(
            ofl_trace::Category::Provider,
            "spike.stall",
            "total" => self.stalled,
            "stall_us" => self.profile.stall.as_micros(),
        );
        cost.saturating_add(self.profile.stall)
    }
}

impl<P: EthApi> EthApi for SpikeProvider<P> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        let mut response = self.inner.execute(request);
        response.cost = self.stall_cost(response.cost);
        response
    }

    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        let mut responses = self.inner.batch(requests);
        // A batch is one HTTP exchange: the stall elapses once, riding the
        // first response like every other batch-level cost.
        if let Some(first) = responses.first_mut() {
            first.cost = self.stall_cost(first.cost);
        }
        responses
    }
}

impl<P: IpfsApi> IpfsApi for SpikeProvider<P> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        self.inner.add(node, data)
    }
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        self.inner.cat(node, cid)
    }
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        self.inner.pin(node, cid)
    }
}

impl<P: NodeProvider> NodeProvider for SpikeProvider<P> {
    fn chain(&self) -> &Chain {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        self.inner.chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        self.inner.swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        self.inner.swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        self.inner.metrics()
    }
    fn on_slot(&mut self) {
        self.advance_slot();
        self.inner.on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        self.inner.backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.inner.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        self.inner.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        self.inner.drain_notifications()
    }
}

// ----------------------------------------------------------------------
// ReorderProvider
// ----------------------------------------------------------------------

/// How a batch-reordering endpoint shuffles its answers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderProfile {
    /// Seed of the per-batch permutation draws — equal seeds shuffle every
    /// batch identically, draw for draw.
    pub seed: u64,
}

impl ReorderProfile {
    /// A profile shuffling with the given seed.
    pub fn new(seed: u64) -> ReorderProfile {
        ReorderProfile { seed }
    }
}

/// Delivers each batch's sub-responses in a seeded random order — the
/// out-of-order-server scenario generator. JSON-RPC promises nothing about
/// the order of a batch reply's array; clients must pair answers with
/// requests by their `id` tag. Every response keeps its tag (and its priced
/// cost) through the shuffle, so tag-matching clients (see
/// [`match_to_requests`](crate::envelope::match_to_requests)) reassemble
/// request order exactly, while positional consumers would read the wrong
/// answers — which is precisely what the regime exists to catch.
///
/// Sits **outermost** in the stack: it models the wire delivering the reply
/// array out of order, after pricing and metering saw the batch in request
/// order. Single requests and IPFS traffic pass untouched.
pub struct ReorderProvider<P> {
    inner: P,
    rng: StdRng,
    /// How many batches came back in a non-identity order.
    pub reordered: u64,
}

impl<P> ReorderProvider<P> {
    /// Wraps `inner` with the given shuffle profile.
    pub fn new(inner: P, profile: ReorderProfile) -> ReorderProvider<P> {
        ReorderProvider {
            inner,
            rng: StdRng::seed_from_u64(profile.seed),
            reordered: 0,
        }
    }
}

impl<P: EthApi> EthApi for ReorderProvider<P> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        self.inner.execute(request)
    }

    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        let mut responses = self.inner.batch(requests);
        if responses.len() > 1 {
            // Fisher–Yates with the seeded stream: len-1 draws per batch,
            // whatever the transport, so equal seeds permute identically.
            let mut identity = true;
            for i in (1..responses.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                if j != i {
                    identity = false;
                    responses.swap(i, j);
                }
            }
            if !identity {
                self.reordered += 1;
                ofl_trace::trace_event!(
                    ofl_trace::Category::Provider,
                    "reorder.shuffle",
                    "total" => self.reordered,
                    "batch" => responses.len(),
                );
            }
        }
        responses
    }
}

impl<P: IpfsApi> IpfsApi for ReorderProvider<P> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        self.inner.add(node, data)
    }
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        self.inner.cat(node, cid)
    }
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        self.inner.pin(node, cid)
    }
}

impl<P: NodeProvider> NodeProvider for ReorderProvider<P> {
    fn chain(&self) -> &Chain {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        self.inner.chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        self.inner.swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        self.inner.swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        self.inner.metrics()
    }
    fn on_slot(&mut self) {
        self.inner.on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        self.inner.backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.inner.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        self.inner.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        self.inner.drain_notifications()
    }
}

// ----------------------------------------------------------------------
// StaleReadProvider
// ----------------------------------------------------------------------

/// How far a lagging replica trails the canonical head.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaleProfile {
    /// Seed of the per-read lag draws — equal seeds reproduce the exact
    /// same staleness, read for read.
    pub seed: u64,
    /// Largest lag, in slots, a read may be served at (each read draws a
    /// lag in `0..=max_lag_slots`).
    pub max_lag_slots: u64,
}

impl StaleProfile {
    /// A profile lagging up to `max_lag_slots` behind the head.
    pub fn new(seed: u64, max_lag_slots: u64) -> StaleProfile {
        StaleProfile {
            seed,
            max_lag_slots,
        }
    }
}

/// Serves head and receipt reads as a **lagging replica** would: each
/// `eth_blockNumber` answers up to N slots behind the canonical head, and
/// each `eth_getTransactionReceipt` hides receipts the lagged replica has
/// not indexed yet (they come back `None`, exactly like an unmined
/// transaction — the classic load-balanced-RPC inconsistency clients must
/// re-poll through). Writes and all other reads pass through untouched.
///
/// Sits **innermost** in the stack (directly over the backend), so its
/// canonical-head queries reach the backend without disturbing the fault
/// decorators' seeded draws and without being metered as client traffic.
pub struct StaleReadProvider<P> {
    inner: P,
    profile: StaleProfile,
    rng: StdRng,
    /// How many reads were actually degraded (lagged head or hidden
    /// receipt).
    pub served_stale: u64,
}

impl<P> StaleReadProvider<P> {
    /// Wraps `inner` with the given staleness profile.
    pub fn new(inner: P, profile: StaleProfile) -> StaleReadProvider<P> {
        StaleReadProvider {
            inner,
            rng: StdRng::seed_from_u64(profile.seed),
            profile,
            served_stale: 0,
        }
    }
}

impl<P: EthApi> StaleReadProvider<P> {
    /// The canonical head, read straight from the backend.
    fn canonical_head(&mut self) -> Option<u64> {
        match self
            .inner
            .execute(&RpcRequest::new(0, RpcMethod::BlockNumber))
            .result
        {
            Ok(RpcResult::BlockNumber(n)) => Some(n),
            _ => None,
        }
    }

    /// Applies a seeded lag to one already-answered read.
    fn lag_response(&mut self, request: &RpcRequest, response: &mut RpcResponse) {
        let lagged_reads = matches!(
            request.method,
            RpcMethod::BlockNumber | RpcMethod::GetTransactionReceipt { .. }
        );
        if !lagged_reads || response.result.is_err() {
            return;
        }
        let lag = self.rng.gen_range(0..=self.profile.max_lag_slots);
        match &mut response.result {
            Ok(RpcResult::BlockNumber(n)) => {
                if lag > 0 && *n > 0 {
                    self.served_stale += 1;
                    ofl_trace::trace_event!(
                        ofl_trace::Category::Provider,
                        "stale.serve",
                        "total" => self.served_stale,
                        "lag" => lag,
                    );
                }
                *n = n.saturating_sub(lag);
            }
            Ok(RpcResult::Receipt(opt)) => {
                let hidden = match opt {
                    Some(receipt) => match self.canonical_head() {
                        // The replica's view ends `lag` slots before the
                        // head; a receipt past that view does not exist yet.
                        Some(head) => receipt.block_number.saturating_add(lag) > head,
                        None => false,
                    },
                    None => false,
                };
                if hidden {
                    self.served_stale += 1;
                    ofl_trace::trace_event!(
                        ofl_trace::Category::Provider,
                        "stale.hide_receipt",
                        "total" => self.served_stale,
                        "lag" => lag,
                    );
                    *opt = None;
                }
            }
            _ => {}
        }
    }
}

impl<P: EthApi> EthApi for StaleReadProvider<P> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        let mut response = self.inner.execute(request);
        self.lag_response(request, &mut response);
        response
    }

    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        let mut responses = self.inner.batch(requests);
        // Lag draws happen in request order, so a batch of N receipt polls
        // consumes N draws — deterministic whatever the transport.
        for (request, response) in requests.iter().zip(&mut responses) {
            self.lag_response(request, response);
        }
        responses
    }
}

impl<P: IpfsApi> IpfsApi for StaleReadProvider<P> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        self.inner.add(node, data)
    }
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        self.inner.cat(node, cid)
    }
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        self.inner.pin(node, cid)
    }
}

impl<P: NodeProvider> NodeProvider for StaleReadProvider<P> {
    fn chain(&self) -> &Chain {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        self.inner.chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        self.inner.swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        self.inner.swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        self.inner.metrics()
    }
    fn on_slot(&mut self) {
        self.inner.on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        self.inner.backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.inner.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        self.inner.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        self.inner.drain_notifications()
    }
}

// ----------------------------------------------------------------------
// SubLagProvider
// ----------------------------------------------------------------------

/// How a lagging push path delays subscription deliveries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubLagProfile {
    /// Seed of the per-subscription delay draws — equal seeds lag every
    /// subscription identically, draw for draw.
    pub seed: u64,
    /// Largest delivery lag, in slots, a subscription may be assigned
    /// (each subscription draws a fixed lag in `0..=max_delay_slots` when
    /// its first notification arrives).
    pub max_delay_slots: u64,
    /// Also shuffle each released batch with the seeded stream — the
    /// out-of-order push wire.
    pub reorder: bool,
}

impl SubLagProfile {
    /// A delay-only profile (no reordering).
    pub fn new(seed: u64, max_delay_slots: u64) -> SubLagProfile {
        SubLagProfile {
            seed,
            max_delay_slots,
            reorder: false,
        }
    }

    /// The same profile with released batches also shuffled.
    pub fn with_reorder(mut self) -> SubLagProfile {
        self.reorder = true;
        self
    }
}

/// Delays (and optionally reorders) push notifications — the laggy-wire
/// scenario generator for the subscription path. Each subscription draws a
/// fixed seeded lag in slots when its first notification arrives; every
/// notification for that subscription is then held for that many
/// [`NodeProvider::on_slot`] boundaries before a drain releases it.
/// Consumers that assume "drained this slot = published this slot" break
/// under this decorator; consumers keyed on the notification's own `seq`
/// do not. Sits **outermost** in the stack: it models the wire delivering
/// pushes late, after the backend published them in canonical order.
pub struct SubLagProvider<P> {
    inner: P,
    profile: SubLagProfile,
    rng: StdRng,
    /// Slots elapsed since construction (the release clock).
    slot: u64,
    /// Fixed per-subscription lag, drawn on first sight.
    lags: BTreeMap<u64, u64>,
    /// Held notifications with their release slot, in arrival order.
    held: VecDeque<(u64, Notification)>,
    /// How many notifications were delivered at least one slot late.
    pub delayed: u64,
}

impl<P> SubLagProvider<P> {
    /// Wraps `inner` with the given lag profile.
    pub fn new(inner: P, profile: SubLagProfile) -> SubLagProvider<P> {
        SubLagProvider {
            inner,
            rng: StdRng::seed_from_u64(profile.seed),
            profile,
            slot: 0,
            lags: BTreeMap::new(),
            held: VecDeque::new(),
            delayed: 0,
        }
    }

    /// Notifications currently held back (not yet released).
    pub fn held_back(&self) -> usize {
        self.held.len()
    }
}

impl<P: EthApi> EthApi for SubLagProvider<P> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        self.inner.execute(request)
    }
    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        self.inner.batch(requests)
    }
}

impl<P: IpfsApi> IpfsApi for SubLagProvider<P> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        self.inner.add(node, data)
    }
    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        self.inner.cat(node, cid)
    }
    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        self.inner.pin(node, cid)
    }
}

impl<P: NodeProvider> NodeProvider for SubLagProvider<P> {
    fn chain(&self) -> &Chain {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        self.inner.chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        self.inner.swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        self.inner.swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        self.inner.metrics()
    }
    fn on_slot(&mut self) {
        self.slot += 1;
        self.inner.on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        self.inner.backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.inner.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        // Anything still held for a cancelled subscription is never
        // delivered — the lagging wire dropped it past the cancel.
        self.held.retain(|(_, n)| n.sub_id != sub_id);
        self.inner.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        // Pull fresh publications into the hold queue, assigning each its
        // subscription's fixed lag (drawn seeded on first sight).
        for note in self.inner.drain_notifications() {
            let lag = *self.lags.entry(note.sub_id).or_insert_with(|| {
                if self.profile.max_delay_slots == 0 {
                    0
                } else {
                    self.rng.gen_range(0..=self.profile.max_delay_slots)
                }
            });
            if lag > 0 {
                self.delayed += 1;
            }
            self.held.push_back((self.slot + lag, note));
        }
        // Release everything whose slot has come, preserving arrival order.
        let mut released = Vec::new();
        let mut still = VecDeque::with_capacity(self.held.len());
        for (release_slot, note) in self.held.drain(..) {
            if release_slot <= self.slot {
                released.push(note);
            } else {
                still.push_back((release_slot, note));
            }
        }
        self.held = still;
        if self.profile.reorder && released.len() > 1 {
            // Fisher–Yates with the same seeded stream: len-1 draws per
            // released batch, deterministic whatever the transport.
            for i in (1..released.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                released.swap(i, j);
            }
        }
        released
    }
}

// ----------------------------------------------------------------------
// MeteredProvider
// ----------------------------------------------------------------------

/// Counters for one method.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MethodStats {
    /// Requests issued.
    pub calls: u64,
    /// Requests that came back as transport/node errors.
    pub errors: u64,
    /// Total virtual time priced onto this method's requests.
    pub cost: SimDuration,
}

/// A snapshot of everything the metering decorator observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProviderMetrics {
    methods: BTreeMap<&'static str, MethodStats>,
    /// Wire round trips: one per single request, one per whole batch, one
    /// per IPFS exchange.
    pub round_trips: u64,
    /// Requests that travelled inside a batch.
    pub batched_requests: u64,
}

impl ProviderMetrics {
    /// Stats for one method (zeroed when the method was never called).
    pub fn method(&self, name: &str) -> MethodStats {
        self.methods.get(name).copied().unwrap_or_default()
    }

    /// `(method, stats)` rows in deterministic (sorted) order.
    pub fn methods(&self) -> impl Iterator<Item = (&'static str, MethodStats)> + '_ {
        self.methods.iter().map(|(n, s)| (*n, *s))
    }

    /// Total requests across all methods.
    pub fn total_calls(&self) -> u64 {
        self.methods.values().map(|s| s.calls).sum()
    }

    /// Total transport/node errors across all methods.
    pub fn total_errors(&self) -> u64 {
        self.methods.values().map(|s| s.errors).sum()
    }

    /// Total virtual time priced across all methods.
    pub fn total_cost(&self) -> SimDuration {
        self.methods
            .values()
            .fold(SimDuration::ZERO, |acc, s| acc.saturating_add(s.cost))
    }

    fn record(&mut self, method: &'static str, cost: SimDuration, is_error: bool) {
        let stats = self.methods.entry(method).or_default();
        stats.calls += 1;
        stats.errors += is_error as u64;
        stats.cost = stats.cost.saturating_add(cost);
    }

    /// Adds another snapshot's counters into this one — how a
    /// [`ProviderPool`](crate::pool::ProviderPool) rolls per-endpoint
    /// metering up into run-level totals.
    pub fn absorb(&mut self, other: &ProviderMetrics) {
        for (name, stats) in other.methods.iter() {
            let mine = self.methods.entry(name).or_default();
            mine.calls += stats.calls;
            mine.errors += stats.errors;
            mine.cost = mine.cost.saturating_add(stats.cost);
        }
        self.round_trips += other.round_trips;
        self.batched_requests += other.batched_requests;
    }
}

/// Counts calls, errors, round trips, and virtual-time totals per method —
/// what `SessionReport` surfaces so a session can say "this run made 41
/// provider round trips costing 4.2 virtual seconds".
pub struct MeteredProvider<P> {
    inner: P,
    metrics: ProviderMetrics,
}

impl<P> MeteredProvider<P> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: P) -> MeteredProvider<P> {
        MeteredProvider {
            inner,
            metrics: ProviderMetrics::default(),
        }
    }

    /// The counters observed so far.
    pub fn snapshot(&self) -> ProviderMetrics {
        self.metrics.clone()
    }
}

impl<P: EthApi> EthApi for MeteredProvider<P> {
    fn execute(&mut self, request: &RpcRequest) -> RpcResponse {
        let response = self.inner.execute(request);
        self.metrics.round_trips += 1;
        self.metrics.record(
            request.method.name(),
            response.cost,
            response.result.is_err(),
        );
        response
    }

    fn batch(&mut self, requests: &[RpcRequest]) -> Vec<RpcResponse> {
        let responses = self.inner.batch(requests);
        self.metrics.round_trips += 1;
        self.metrics.batched_requests += requests.len() as u64;
        for (request, response) in requests.iter().zip(&responses) {
            self.metrics.record(
                request.method.name(),
                response.cost,
                response.result.is_err(),
            );
        }
        responses
    }
}

impl<P: IpfsApi> IpfsApi for MeteredProvider<P> {
    fn add(&mut self, node: usize, data: &[u8]) -> Billed<AddResult> {
        let billed = self.inner.add(node, data);
        self.metrics.round_trips += 1;
        self.metrics.record("ipfs_add", billed.cost, false);
        billed
    }

    fn cat(&mut self, node: usize, cid: &Cid) -> Billed<Result<(Vec<u8>, FetchStats), IpfsError>> {
        let billed = self.inner.cat(node, cid);
        self.metrics.round_trips += 1;
        self.metrics
            .record("ipfs_cat", billed.cost, billed.value.is_err());
        billed
    }

    fn pin(&mut self, node: usize, cid: &Cid) -> Billed<Result<(), IpfsError>> {
        let billed = self.inner.pin(node, cid);
        self.metrics.round_trips += 1;
        self.metrics
            .record("ipfs_pin", billed.cost, billed.value.is_err());
        billed
    }
}

impl<P: NodeProvider> NodeProvider for MeteredProvider<P> {
    fn chain(&self) -> &Chain {
        self.inner.chain()
    }
    fn chain_mut(&mut self) -> &mut Chain {
        self.inner.chain_mut()
    }
    fn swarm(&self) -> &Swarm {
        self.inner.swarm()
    }
    fn swarm_mut(&mut self) -> &mut Swarm {
        self.inner.swarm_mut()
    }
    fn metrics(&self) -> Option<ProviderMetrics> {
        Some(self.snapshot())
    }
    fn on_slot(&mut self) {
        self.inner.on_slot()
    }
    fn backstage(&mut self, op: &BackstageOp) -> BackstageReply {
        self.inner.backstage(op)
    }
    fn subscribe(&mut self, kind: SubscriptionKind) -> u64 {
        self.inner.subscribe(kind)
    }
    fn unsubscribe(&mut self, sub_id: u64) -> bool {
        self.inner.unsubscribe(sub_id)
    }
    fn drain_notifications(&mut self) -> Vec<Notification> {
        self.inner.drain_notifications()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{RpcMethod, RpcResult};
    use crate::sim::SimProvider;
    use ofl_eth::chain::{Chain, ChainConfig};
    use ofl_primitives::H160;

    fn stack(
        faults: Option<FaultProfile>,
    ) -> MeteredProvider<LatencyProvider<FlakyProvider<SimProvider>>> {
        let addr = H160::from_slice(&[1; 20]);
        let chain = Chain::new(
            ChainConfig::default(),
            &[(addr, ofl_primitives::wei_per_eth())],
        );
        let sim = SimProvider::new(chain, Swarm::spawn("d", 2));
        let flaky = FlakyProvider::new(sim, faults.unwrap_or(FaultProfile::new(0, 0.0)));
        MeteredProvider::new(LatencyProvider::new(flaky, NetworkProfile::campus(), 250))
    }

    fn receipt_poll_batch(n: u64) -> Vec<RpcRequest> {
        (0..n)
            .map(|i| {
                RpcRequest::new(
                    i,
                    RpcMethod::GetTransactionReceipt {
                        hash: ofl_primitives::H256::from_bytes([i as u8; 32]),
                    },
                )
            })
            .collect()
    }

    #[test]
    fn latency_prices_requests_and_caller_keeps_the_bill() {
        let mut provider = stack(None);
        let billed = provider.block_number();
        assert_eq!(billed.value.unwrap(), 0);
        // Campus RPC: two 50 ms legs plus serialization.
        assert!(billed.cost >= SimDuration::from_millis(100));
        assert!(billed.cost < SimDuration::from_millis(200));
    }

    #[test]
    fn batched_polls_cost_one_round_trip() {
        let mut per_call = stack(None);
        let mut batched = stack(None);
        let requests = receipt_poll_batch(16);

        let per_call_cost: SimDuration = requests
            .iter()
            .map(|r| per_call.execute(r).cost)
            .fold(SimDuration::ZERO, SimDuration::saturating_add);
        let batch_cost: SimDuration = batched
            .batch(&requests)
            .iter()
            .map(|r| r.cost)
            .fold(SimDuration::ZERO, SimDuration::saturating_add);

        // 16 polls: ~16 round trips of latency vs 1.
        assert!(batch_cost.as_secs_f64() * 8.0 < per_call_cost.as_secs_f64());
        let per_metrics = per_call.snapshot();
        let batch_metrics = batched.snapshot();
        assert_eq!(per_metrics.round_trips, 16);
        assert_eq!(batch_metrics.round_trips, 1);
        assert_eq!(batch_metrics.batched_requests, 16);
        assert_eq!(batch_metrics.method("eth_getTransactionReceipt").calls, 16);
    }

    #[test]
    fn flaky_drops_are_deterministic_by_seed() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let mut provider = stack(Some(FaultProfile::new(seed, 0.4)));
            (0..50)
                .map(|_| provider.block_number().value.is_err())
                .collect()
        };
        let a = outcomes(7);
        assert_eq!(a, outcomes(7), "equal seeds must fault identically");
        assert_ne!(a, outcomes(8), "different seeds should differ");
        assert!(a.iter().any(|e| *e), "40% drop rate must drop something");
        assert!(!a.iter().all(|e| *e), "and must not drop everything");
    }

    #[test]
    fn dropped_requests_cost_the_timeout_and_are_metered_as_errors() {
        // drop_rate 1.0: everything times out.
        let profile = FaultProfile {
            timeout: SimDuration::from_secs(3),
            ..FaultProfile::new(1, 1.0)
        };
        let mut provider = stack(Some(profile));
        let billed = provider.block_number();
        assert_eq!(billed.value, Err(RpcError::Timeout));
        // Timeout plus the latency pricing of the attempt.
        assert!(billed.cost >= SimDuration::from_secs(3));
        // A dropped batch times out as a unit.
        let responses = provider.batch(&receipt_poll_batch(4));
        assert!(responses.iter().all(|r| r.result.is_err()));
        let metrics = provider.snapshot();
        assert_eq!(metrics.total_errors(), 5);
        assert_eq!(metrics.method("eth_blockNumber").errors, 1);
    }

    #[test]
    fn ipfs_traffic_is_priced_but_never_dropped() {
        let mut provider = stack(Some(FaultProfile::new(3, 1.0)));
        let added = provider.add(0, &vec![7u8; 100_000]);
        assert!(added.cost > SimDuration::ZERO);
        let fetched = provider.cat(1, &added.value.root);
        assert!(fetched.value.is_ok(), "flakiness must not affect the LAN");
        let metrics = provider.snapshot();
        assert_eq!(metrics.method("ipfs_add").calls, 1);
        assert_eq!(metrics.method("ipfs_cat").calls, 1);
        assert!(metrics.total_cost() > SimDuration::ZERO);
    }

    #[test]
    fn rate_limit_throttles_over_budget_then_renews_behind_backoff() {
        let addr = H160::from_slice(&[1; 20]);
        let chain = Chain::new(
            ChainConfig::default(),
            &[(addr, ofl_primitives::wei_per_eth())],
        );
        let profile = RateLimitProfile {
            seed: 5,
            requests_per_slot: 3,
            backoff: SimDuration::from_secs(1),
        };
        // No jitter span randomness matters here: allowance ∈ [3, 4).
        let mut provider = RateLimitProvider::new(SimProvider::new(chain, Swarm::new()), profile);
        let mut outcomes = Vec::new();
        for _ in 0..10 {
            outcomes.push(provider.block_number().value.is_err());
        }
        assert!(outcomes.iter().any(|e| *e), "budget of 3 must throttle");
        assert!(!outcomes.iter().all(|e| *e), "renewed windows must pass");
        assert!(provider.limited > 0);
        // The refusal itself carries the back-off as its priced cost.
        let mut fresh = RateLimitProvider::new(
            {
                let chain = Chain::new(
                    ChainConfig::default(),
                    &[(addr, ofl_primitives::wei_per_eth())],
                );
                SimProvider::new(chain, Swarm::new())
            },
            profile,
        );
        let refused = loop {
            let billed = fresh.block_number();
            if billed.value.is_err() {
                break billed;
            }
        };
        assert_eq!(refused.value, Err(RpcError::RateLimited));
        assert_eq!(refused.cost, SimDuration::from_secs(1));
        // After the refusal the window renewed: the retry goes through.
        assert!(fresh.block_number().value.is_ok());
    }

    #[test]
    fn rate_limit_is_deterministic_by_seed_and_resets_per_slot() {
        let run = |seed: u64, slot_every: usize| -> Vec<bool> {
            let addr = H160::from_slice(&[1; 20]);
            let chain = Chain::new(
                ChainConfig::default(),
                &[(addr, ofl_primitives::wei_per_eth())],
            );
            let mut provider = RateLimitProvider::new(
                SimProvider::new(chain, Swarm::new()),
                RateLimitProfile::new(seed, 4),
            );
            (0..40)
                .map(|i| {
                    if slot_every > 0 && i % slot_every == 0 {
                        provider.on_slot();
                    }
                    provider.block_number().value.is_err()
                })
                .collect()
        };
        let a = run(9, 0);
        assert_eq!(a, run(9, 0), "equal seeds must throttle identically");
        assert_ne!(a, run(10, 0), "different seeds should differ");
        // Frequent slot boundaries renew the budget before it runs out.
        assert!(run(9, 3).iter().all(|e| !e), "renewed windows never 429");
    }

    #[test]
    fn batch_preserves_result_shapes() {
        let mut provider = stack(None);
        let requests = vec![
            RpcRequest::new(0, RpcMethod::BlockNumber),
            RpcRequest::new(
                1,
                RpcMethod::GetBalance {
                    address: H160::from_slice(&[1; 20]),
                },
            ),
        ];
        let responses = provider.batch(&requests);
        assert!(matches!(responses[0].result, Ok(RpcResult::BlockNumber(_))));
        assert!(matches!(responses[1].result, Ok(RpcResult::Balance(_))));
    }

    fn funded_sim() -> (SimProvider, ofl_eth::wallet::Wallet) {
        let wallet = ofl_eth::wallet::Wallet::from_seed("stale", 2);
        let genesis: Vec<_> = wallet
            .addresses()
            .iter()
            .map(|a| (*a, ofl_primitives::wei_per_eth()))
            .collect();
        let chain = Chain::new(ChainConfig::default(), &genesis);
        (SimProvider::new(chain, Swarm::new()), wallet)
    }

    #[test]
    fn stale_reads_lag_head_and_hide_fresh_receipts_deterministically() {
        let run = |seed: u64| {
            let (sim, wallet) = funded_sim();
            let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
            let mut provider = StaleReadProvider::new(sim, StaleProfile::new(seed, 3));
            let raw = wallet
                .sign_raw(
                    provider.chain(),
                    &a,
                    Some(b),
                    ofl_primitives::u256::U256::ONE,
                    vec![],
                )
                .unwrap();
            let hash = provider.send_raw_transaction(&raw).value.unwrap();
            provider.chain_mut().mine_block(12);
            // The canonical head is 1, but the replica may be behind: some
            // of the next reads are lagged / hidden, none ever run ahead.
            let mut outcomes = Vec::new();
            for _ in 0..24 {
                let head = provider.block_number().value.unwrap();
                assert!(head <= 1);
                let receipt = provider.get_transaction_receipt(hash).value.unwrap();
                if let Some(r) = &receipt {
                    assert_eq!(r.block_number, 1);
                }
                outcomes.push((head, receipt.is_some()));
            }
            (outcomes, provider.served_stale)
        };
        let (a, stale_a) = run(5);
        assert!(stale_a > 0, "a 3-slot lag must degrade something");
        assert!(
            a.iter().any(|(head, seen)| *head == 1 && *seen),
            "fresh reads must also occur"
        );
        // Deterministic by seed; different seeds draw different lags.
        assert_eq!(a, run(5).0);
        assert_ne!(a, run(6).0);
    }

    #[test]
    fn stale_receipts_become_visible_once_the_head_outruns_the_lag() {
        let (sim, wallet) = funded_sim();
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let mut provider = StaleReadProvider::new(sim, StaleProfile::new(7, 2));
        let raw = wallet
            .sign_raw(
                provider.chain(),
                &a,
                Some(b),
                ofl_primitives::u256::U256::ONE,
                vec![],
            )
            .unwrap();
        let hash = provider.send_raw_transaction(&raw).value.unwrap();
        provider.chain_mut().mine_block(12);
        // Mine past the maximum lag: even the most stale replica view now
        // includes block 1, so the receipt can never be hidden again.
        for slot in 2..=4 {
            provider.chain_mut().mine_block(12 * slot);
        }
        for _ in 0..8 {
            assert!(provider
                .get_transaction_receipt(hash)
                .value
                .unwrap()
                .is_some());
        }
    }

    #[test]
    fn latency_spikes_stall_whole_slots_deterministically() {
        let run = |seed: u64| -> Vec<SimDuration> {
            let addr = H160::from_slice(&[1; 20]);
            let chain = Chain::new(
                ChainConfig::default(),
                &[(addr, ofl_primitives::wei_per_eth())],
            );
            let mut provider = SpikeProvider::new(
                SimProvider::new(chain, Swarm::new()),
                SpikeProfile::new(seed, 0.4),
            );
            // Two requests per slot across 20 slots: both see the same
            // window, because spikes are per-slot, not per-request.
            let mut costs = Vec::new();
            for _ in 0..20 {
                let first = provider.block_number().cost;
                assert_eq!(first, provider.block_number().cost);
                costs.push(first);
                provider.on_slot();
            }
            costs
        };
        let a = run(11);
        assert_eq!(a, run(11), "equal seeds must stall identically");
        assert_ne!(a, run(12), "different seeds should differ");
        let stall = SpikeProfile::new(0, 0.0).stall;
        assert!(
            a.iter().any(|c| *c >= stall),
            "a 40% spike rate must stall something"
        );
        assert!(
            a.iter().any(|c| *c < stall),
            "and must leave healthy slots between spikes"
        );
    }

    #[test]
    fn spiked_batches_pay_the_stall_once() {
        let addr = H160::from_slice(&[1; 20]);
        let chain = Chain::new(
            ChainConfig::default(),
            &[(addr, ofl_primitives::wei_per_eth())],
        );
        // spike_rate 1.0: every slot stalls, including the first.
        let mut provider = SpikeProvider::new(
            SimProvider::new(chain, Swarm::new()),
            SpikeProfile::new(3, 1.0),
        );
        assert!(provider.is_stalled());
        let responses = provider.batch(&receipt_poll_batch(4));
        assert!(responses[0].cost >= provider.profile.stall);
        assert!(responses[1..].iter().all(|r| r.cost == SimDuration::ZERO));
        assert_eq!(provider.stalled, 1, "one batch = one stalled exchange");
    }

    #[test]
    fn reordered_batches_keep_tags_and_shuffle_deterministically() {
        let run = |seed: u64| -> Vec<Vec<u64>> {
            let addr = H160::from_slice(&[1; 20]);
            let chain = Chain::new(
                ChainConfig::default(),
                &[(addr, ofl_primitives::wei_per_eth())],
            );
            let mut provider = ReorderProvider::new(
                SimProvider::new(chain, Swarm::new()),
                ReorderProfile::new(seed),
            );
            (0..6)
                .map(|_| {
                    provider
                        .batch(&receipt_poll_batch(8))
                        .iter()
                        .map(|r| r.id)
                        .collect()
                })
                .collect()
        };
        let a = run(21);
        assert_eq!(a, run(21), "equal seeds must shuffle identically");
        assert_ne!(a, run(22), "different seeds should differ");
        // Every batch still answers every tag exactly once.
        for ids in &a {
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<u64>>());
        }
        // And at least one of the six 8-element batches left identity
        // order behind (the odds of six identity draws are ~1 in 10^27).
        assert!(a.iter().any(|ids| *ids != (0..8).collect::<Vec<u64>>()));
    }

    #[test]
    fn sub_lag_delays_deliveries_deterministically_and_releases_in_order() {
        use crate::sub::{SubEvent, SubscriptionKind};
        let run = |seed: u64| -> Vec<Vec<(u64, u64)>> {
            let (sim, wallet) = funded_sim();
            let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
            let mut provider = SubLagProvider::new(sim, SubLagProfile::new(seed, 3));
            let heads = provider.subscribe(SubscriptionKind::NewHeads);
            let pending = provider.subscribe(SubscriptionKind::PendingTxs);
            assert_eq!((heads, pending), (1, 2));
            // Two slots of traffic (tx + block each), then idle slots so
            // every lagged delivery has time to release; drain each slot.
            let mut per_slot = Vec::new();
            for slot in 0..8u64 {
                if slot < 2 {
                    let raw = wallet
                        .sign_raw(
                            provider.chain(),
                            &a,
                            Some(b),
                            ofl_primitives::u256::U256::from(1u64),
                            vec![],
                        )
                        .unwrap();
                    provider.send_raw_transaction(&raw).value.unwrap();
                    provider.chain_mut().mine_block(12 * (slot + 1));
                }
                provider.on_slot();
                per_slot.push(
                    provider
                        .drain_notifications()
                        .iter()
                        .map(|n| (n.sub_id, n.seq))
                        .collect(),
                );
            }
            per_slot
        };
        let a = run(31);
        assert_eq!(a, run(31), "equal seeds must lag identically");
        // Everything eventually arrives exactly once, and per subscription
        // the seq order is preserved (a fixed per-sub lag cannot reorder
        // within one subscription).
        let all: Vec<(u64, u64)> = a.iter().flatten().copied().collect();
        assert_eq!(all.len(), 4, "2 pending + 2 heads must all arrive");
        for sub in [1u64, 2] {
            let seqs: Vec<u64> = all
                .iter()
                .filter(|(s, _)| *s == sub)
                .map(|(_, q)| *q)
                .collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted);
        }
        // With max lag 0 the decorator is a transparent pass-through.
        let (sim, wallet) = funded_sim();
        let [a_addr, b_addr]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let mut clear = SubLagProvider::new(sim, SubLagProfile::new(9, 0));
        clear.subscribe(SubscriptionKind::PendingTxs);
        let raw = wallet
            .sign_raw(
                clear.chain(),
                &a_addr,
                Some(b_addr),
                ofl_primitives::u256::U256::ONE,
                vec![],
            )
            .unwrap();
        clear.send_raw_transaction(&raw).value.unwrap();
        let notes = clear.drain_notifications();
        assert_eq!(notes.len(), 1);
        assert!(matches!(notes[0].event, SubEvent::PendingTx(_)));
        assert_eq!(clear.delayed, 0);
        assert_eq!(clear.held_back(), 0);
    }

    #[test]
    fn tag_matching_undoes_a_reordering_endpoint() {
        let addr = H160::from_slice(&[1; 20]);
        let chain = Chain::new(
            ChainConfig::default(),
            &[(addr, ofl_primitives::wei_per_eth())],
        );
        let mut provider = ReorderProvider::new(
            SimProvider::new(chain, Swarm::new()),
            ReorderProfile::new(7),
        );
        let requests = vec![
            RpcRequest::new(0, RpcMethod::BlockNumber),
            RpcRequest::new(1, RpcMethod::GetBalance { address: addr }),
            RpcRequest::new(2, RpcMethod::ChainId),
        ];
        for _ in 0..8 {
            let matched = crate::envelope::match_to_requests(&requests, provider.batch(&requests));
            // Whatever order the wire delivered, tags restore request
            // order and each slot holds its own method's result shape.
            assert!(matches!(matched[0].result, Ok(RpcResult::BlockNumber(_))));
            assert!(matches!(matched[1].result, Ok(RpcResult::Balance(_))));
            assert!(matches!(matched[2].result, Ok(RpcResult::ChainId(_))));
        }
    }
}
