//! Typed contract bindings over `ofl_eth::abi` and the [`EthApi`] trait.
//!
//! The [`contract_bindings!`](crate::contract_bindings) macro turns a declarative description of a
//! contract's functions and events into a typed handle: read methods that
//! encode the call, dispatch it through any [`EthApi`] provider, and decode
//! the return into native Rust types with typed errors; calldata builders
//! for transaction methods; and event topic/decode/range-query helpers.
//! Nothing outside this layer ever touches a raw selector string.
//!
//! [`ModelMarketContract`] is the binding for the paper's `CidStorage`
//! contract — the model market's on-chain CID registry.
//!
//! [`EthApi`]: crate::eth::EthApi

use crate::envelope::RpcError;
use ofl_eth::abi::{self, AbiError, Type, Value};
use ofl_eth::chain::CallResult;
use ofl_primitives::u256::U256;
use ofl_primitives::H160;

/// Items the [`contract_bindings!`](crate::contract_bindings) macro expansion references. Not part of
/// the public API surface; `pub` only so macro expansions in downstream
/// crates resolve.
#[doc(hidden)]
pub mod __support {
    pub use ofl_eth::abi;
    pub use ofl_eth::block::Receipt;
    pub use ofl_eth::chain::LogFilter;
    pub use ofl_eth::evm::LogEntry;
    pub use ofl_primitives::{H160, H256};
}

/// Typed errors from a contract binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindingError {
    /// Transport/node failure underneath the binding.
    Rpc(RpcError),
    /// The call executed and reverted; carries the revert payload.
    Reverted(Vec<u8>),
    /// Returndata failed ABI decoding (truncated, trailing garbage, …).
    Decode(AbiError),
    /// Returndata decoded, but not into the declared Rust type (e.g. a
    /// `uint256` counter that does not fit `u64`).
    TypeMismatch,
}

impl core::fmt::Display for BindingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BindingError::Rpc(e) => write!(f, "rpc: {e}"),
            BindingError::Reverted(data) => {
                write!(
                    f,
                    "contract call reverted ({} bytes of revert data)",
                    data.len()
                )
            }
            BindingError::Decode(e) => write!(f, "returndata decode: {e}"),
            BindingError::TypeMismatch => write!(f, "returndata does not fit the bound type"),
        }
    }
}

impl std::error::Error for BindingError {}

impl From<RpcError> for BindingError {
    fn from(e: RpcError) -> Self {
        BindingError::Rpc(e)
    }
}

/// Rust values that can travel as a single ABI argument.
pub trait AbiArg {
    /// Converts into the dynamic ABI value.
    fn into_abi(self) -> Value;
}

impl AbiArg for U256 {
    fn into_abi(self) -> Value {
        Value::Uint(self)
    }
}
impl AbiArg for u64 {
    fn into_abi(self) -> Value {
        Value::Uint(U256::from(self))
    }
}
impl AbiArg for H160 {
    fn into_abi(self) -> Value {
        Value::Address(self)
    }
}
impl AbiArg for bool {
    fn into_abi(self) -> Value {
        Value::Bool(self)
    }
}
impl AbiArg for &str {
    fn into_abi(self) -> Value {
        Value::String(self.to_string())
    }
}
impl AbiArg for String {
    fn into_abi(self) -> Value {
        Value::String(self)
    }
}
impl AbiArg for Vec<u8> {
    fn into_abi(self) -> Value {
        Value::Bytes(self)
    }
}

/// Rust types that can be decoded from a single ABI return value.
pub trait AbiRet: Sized {
    /// The ABI type this decodes from.
    const TYPE: Type;
    /// Narrows the dynamic value; `None` when it does not fit.
    fn from_abi(value: Value) -> Option<Self>;
}

impl AbiRet for U256 {
    const TYPE: Type = Type::Uint;
    fn from_abi(value: Value) -> Option<Self> {
        value.as_uint()
    }
}
impl AbiRet for u64 {
    const TYPE: Type = Type::Uint;
    fn from_abi(value: Value) -> Option<Self> {
        value.as_uint().and_then(|u| u.to_u64())
    }
}
impl AbiRet for H160 {
    const TYPE: Type = Type::Address;
    fn from_abi(value: Value) -> Option<Self> {
        value.as_address()
    }
}
impl AbiRet for bool {
    const TYPE: Type = Type::Bool;
    fn from_abi(value: Value) -> Option<Self> {
        match value {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}
impl AbiRet for String {
    const TYPE: Type = Type::String;
    fn from_abi(value: Value) -> Option<Self> {
        match value {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}
impl AbiRet for Vec<u8> {
    const TYPE: Type = Type::Bytes;
    fn from_abi(value: Value) -> Option<Self> {
        match value {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

/// Decodes a call's returndata into one typed value, surfacing reverts and
/// corrupt returndata as typed errors.
pub fn decode_return<T: AbiRet>(result: &CallResult) -> Result<T, BindingError> {
    if !result.success {
        return Err(BindingError::Reverted(result.output.clone()));
    }
    let mut values = abi::decode(&[T::TYPE], &result.output).map_err(BindingError::Decode)?;
    T::from_abi(values.remove(0)).ok_or(BindingError::TypeMismatch)
}

/// Decodes an event's (unindexed) data payload into one typed value.
pub fn decode_event_data<T: AbiRet>(data: &[u8]) -> Result<T, BindingError> {
    let mut values = abi::decode(&[T::TYPE], data).map_err(BindingError::Decode)?;
    T::from_abi(values.remove(0)).ok_or(BindingError::TypeMismatch)
}

/// Declares a typed contract binding.
///
/// ```ignore
/// contract_bindings! {
///     /// Docs for the generated handle.
///     pub contract MyContract {
///         init_code = my_init_code_fn;
///         read counter ["counter()"] () -> u64;
///         read entry ["entry(uint256)"] (index: u64) -> String;
///         calldata set_entry_calldata ["setEntry(string)"] (value: &str);
///         event {
///             topic: updated_topic,
///             decode: decode_updated,
///             query: updated_in,
///             sig: "Updated(string)",
///             data: String
///         }
///     }
/// }
/// ```
///
/// Generated per `read`: a method dispatching a free `eth_call` through any
/// [`EthApi`](crate::eth::EthApi) provider and decoding the declared return
/// type. Per `calldata`: an associated function building the transaction
/// calldata. Per `event`: the topic hash, a log decoder, and an
/// `eth_getLogs` range query returning decoded payloads.
#[macro_export]
macro_rules! contract_bindings {
    (
        $(#[$cmeta:meta])*
        pub contract $name:ident {
            init_code = $init:path;
            $( read $rfn:ident [$rsig:literal] ( $($rarg:ident : $rty:ty),* ) -> $rret:ty; )*
            $( calldata $wfn:ident [$wsig:literal] ( $($warg:ident : $wty:ty),* ); )*
            $( event {
                topic: $etopic:ident,
                decode: $edecode:ident,
                query: $equery:ident,
                sig: $esig:literal,
                data: $eret:ty
            } )*
        }
    ) => {
        $(#[$cmeta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct $name {
            /// Deployed contract address.
            pub address: $crate::bindings::__support::H160,
        }

        impl $name {
            /// Wraps an already-deployed address.
            pub fn at(address: $crate::bindings::__support::H160) -> Self {
                Self { address }
            }

            /// The deployable init code (broadcast it from any funded
            /// account to create a fresh instance).
            pub fn init_code() -> Vec<u8> {
                $init()
            }

            /// Typed handle from a mined deployment receipt: fails on a
            /// reverted deployment or a receipt without a contract address.
            pub fn from_deploy_receipt(
                receipt: &$crate::bindings::__support::Receipt,
            ) -> Result<Self, $crate::bindings::BindingError> {
                if !receipt.is_success() {
                    return Err($crate::bindings::BindingError::Reverted(
                        receipt.output.clone(),
                    ));
                }
                receipt
                    .contract_address
                    .map(Self::at)
                    .ok_or($crate::bindings::BindingError::TypeMismatch)
            }

            $(
                #[doc = concat!("Typed free read of `", $rsig, "`.")]
                pub fn $rfn<E: $crate::eth::EthApi + ?Sized>(
                    &self,
                    eth: &mut E,
                    from: &$crate::bindings::__support::H160,
                    $( $rarg: $rty, )*
                ) -> $crate::Billed<Result<$rret, $crate::bindings::BindingError>> {
                    let data = $crate::bindings::__support::abi::encode_call(
                        $rsig,
                        &[ $( $crate::bindings::AbiArg::into_abi($rarg) ),* ],
                    );
                    let billed = eth.call(from, &self.address, data);
                    $crate::Billed {
                        cost: billed.cost,
                        value: billed
                            .value
                            .map_err($crate::bindings::BindingError::Rpc)
                            .and_then(|result| $crate::bindings::decode_return::<$rret>(&result)),
                    }
                }
            )*

            $(
                #[doc = concat!("ABI calldata for a `", $wsig, "` transaction.")]
                pub fn $wfn( $( $warg: $wty ),* ) -> Vec<u8> {
                    $crate::bindings::__support::abi::encode_call(
                        $wsig,
                        &[ $( $crate::bindings::AbiArg::into_abi($warg) ),* ],
                    )
                }
            )*

            $(
                #[doc = concat!("Topic hash of `", $esig, "`.")]
                pub fn $etopic() -> $crate::bindings::__support::H256 {
                    $crate::bindings::__support::H256::from_bytes(
                        $crate::bindings::__support::abi::event_topic($esig),
                    )
                }

                #[doc = concat!("Decodes one `", $esig, "` log's data payload.")]
                pub fn $edecode(
                    log: &$crate::bindings::__support::LogEntry,
                ) -> Result<$eret, $crate::bindings::BindingError> {
                    $crate::bindings::decode_event_data::<$eret>(&log.data)
                }

                #[doc = concat!(
                    "Typed `eth_getLogs` query for `", $esig,
                    "` over the inclusive block range `[from_block, to_block]`."
                )]
                pub fn $equery<E: $crate::eth::EthApi + ?Sized>(
                    &self,
                    eth: &mut E,
                    from_block: u64,
                    to_block: u64,
                ) -> $crate::Billed<Result<Vec<$eret>, $crate::bindings::BindingError>> {
                    let filter = $crate::bindings::__support::LogFilter::all()
                        .in_blocks(from_block, to_block)
                        .at_address(self.address)
                        .with_topic(Self::$etopic());
                    let billed = eth.get_logs(&filter);
                    $crate::Billed {
                        cost: billed.cost,
                        value: billed
                            .value
                            .map_err($crate::bindings::BindingError::Rpc)
                            .and_then(|logs| {
                                logs.iter().map(|entry| Self::$edecode(&entry.log)).collect()
                            }),
                    }
                }
            )*
        }
    };
}

contract_bindings! {
    /// Typed handle for the model market's on-chain CID registry — the
    /// paper's `CidStorage` contract (Fig 2). All selector encoding and
    /// returndata decoding lives behind these methods; core never touches a
    /// raw signature string.
    pub contract ModelMarketContract {
        init_code = ofl_eth::contracts::cid_storage_init_code;
        read cid_count ["cidCount()"] () -> u64;
        read get_cid ["getCid(uint256)"] (index: u64) -> String;
        calldata upload_cid_calldata ["uploadCid(string)"] (cid: &str);
        calldata get_cid_calldata ["getCid(uint256)"] (index: u64);
        event {
            topic: uploaded_topic,
            decode: decode_uploaded,
            query: uploaded_cids_in,
            sig: "CidUploaded(string)",
            data: String
        }
    }
}

impl ModelMarketContract {
    /// Reads every stored CID in upload order: one `cidCount` plus one
    /// batched-friendly `getCid` per index.
    pub fn all_cids<E: crate::eth::EthApi + ?Sized>(
        &self,
        eth: &mut E,
        from: &H160,
    ) -> crate::Billed<Result<Vec<String>, BindingError>> {
        let counted = self.cid_count(eth, from);
        let mut cost = counted.cost;
        let count = match counted.value {
            Ok(n) => n,
            Err(e) => {
                return crate::Billed {
                    value: Err(e),
                    cost,
                }
            }
        };
        let mut cids = Vec::with_capacity(count as usize);
        for index in 0..count {
            let billed = self.get_cid(eth, from, index);
            cost = cost.saturating_add(billed.cost);
            match billed.value {
                Ok(cid) => cids.push(cid),
                Err(e) => {
                    return crate::Billed {
                        value: Err(e),
                        cost,
                    }
                }
            }
        }
        crate::Billed {
            value: Ok(cids),
            cost,
        }
    }

    /// Reads every stored CID in **two** provider round trips regardless of
    /// count: one `cidCount` call, then all `getCid` reads as a single
    /// [`EthApi::batch`](crate::eth::EthApi::batch) — the Fig 7b
    /// "download CIDs" path without the per-index wire tax.
    pub fn all_cids_batched<E: crate::eth::EthApi + ?Sized>(
        &self,
        eth: &mut E,
        from: &H160,
    ) -> crate::Billed<Result<Vec<String>, BindingError>> {
        use crate::envelope::{RpcMethod, RpcRequest, RpcResult};

        let counted = self.cid_count(eth, from);
        let mut cost = counted.cost;
        let count = match counted.value {
            Ok(n) => n,
            Err(e) => {
                return crate::Billed {
                    value: Err(e),
                    cost,
                }
            }
        };
        if count == 0 {
            return crate::Billed {
                value: Ok(Vec::new()),
                cost,
            };
        }
        let requests: Vec<RpcRequest> = (0..count)
            .map(|index| {
                RpcRequest::new(
                    index,
                    RpcMethod::Call {
                        from: *from,
                        to: self.address,
                        data: Self::get_cid_calldata(index),
                    },
                )
            })
            .collect();
        // Tag-match the reply array: the CIDs are collected positionally,
        // and a reordering endpoint shuffles what the wire delivers.
        let responses = crate::envelope::match_to_requests(&requests, eth.batch(&requests));
        let mut cids = Vec::with_capacity(count as usize);
        for response in responses {
            cost = cost.saturating_add(response.cost);
            let decoded = match response.result {
                Ok(RpcResult::Call(call)) => decode_return::<String>(&call),
                Ok(_) => Err(BindingError::Rpc(RpcError::UnexpectedResponse)),
                Err(e) => Err(BindingError::Rpc(e)),
            };
            match decoded {
                Ok(cid) => cids.push(cid),
                Err(e) => {
                    return crate::Billed {
                        value: Err(e),
                        cost,
                    }
                }
            }
        }
        crate::Billed {
            value: Ok(cids),
            cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eth::EthApi;
    use crate::sim::SimProvider;
    use ofl_eth::chain::{Chain, ChainConfig};
    use ofl_eth::wallet::Wallet;
    use ofl_ipfs::swarm::Swarm;
    use ofl_primitives::wei_per_eth;

    struct Fixture {
        provider: SimProvider,
        contract: ModelMarketContract,
        wallet: Wallet,
        caller: H160,
        time: u64,
    }

    impl Fixture {
        fn new() -> Fixture {
            let wallet = Wallet::from_seed("bindings", 1);
            let caller = wallet.addresses()[0];
            let chain = Chain::new(
                ChainConfig::default(),
                &[(caller, wei_per_eth().wrapping_mul(&U256::from(10u64)))],
            );
            let mut provider = SimProvider::new(chain, Swarm::new());
            let raw = wallet
                .sign_raw(
                    &provider.chain,
                    &caller,
                    None,
                    U256::ZERO,
                    ModelMarketContract::init_code(),
                )
                .unwrap();
            let hash = provider.send_raw_transaction(&raw).value.unwrap();
            provider.chain.mine_block(12);
            let receipt = provider.chain.receipt(&hash).unwrap().clone();
            let contract = ModelMarketContract::from_deploy_receipt(&receipt).unwrap();
            Fixture {
                provider,
                contract,
                wallet,
                caller,
                time: 12,
            }
        }

        fn upload(&mut self, cid: &str) {
            let raw = self
                .wallet
                .sign_raw(
                    &self.provider.chain,
                    &self.caller,
                    Some(self.contract.address),
                    U256::ZERO,
                    ModelMarketContract::upload_cid_calldata(cid),
                )
                .unwrap();
            self.provider.send_raw_transaction(&raw).value.unwrap();
            self.time += 12;
            self.provider.chain.mine_block(self.time);
        }
    }

    #[test]
    fn typed_reads_roundtrip_through_the_provider() {
        let mut f = Fixture::new();
        assert_eq!(
            f.contract
                .cid_count(&mut f.provider, &f.caller)
                .value
                .unwrap(),
            0
        );
        let cid = "QmYwAPJzv5CZsnA625s3Xf2nemtYgPpHdWEz79ojWnPbdG";
        f.upload(cid);
        f.upload("short-cid");
        assert_eq!(
            f.contract
                .cid_count(&mut f.provider, &f.caller)
                .value
                .unwrap(),
            2
        );
        assert_eq!(
            f.contract
                .get_cid(&mut f.provider, &f.caller, 0)
                .value
                .unwrap(),
            cid
        );
        assert_eq!(
            f.contract
                .all_cids(&mut f.provider, &f.caller)
                .value
                .unwrap(),
            vec![cid.to_string(), "short-cid".to_string()]
        );
    }

    #[test]
    fn batched_cid_reads_agree_with_per_call_reads_in_two_round_trips() {
        let mut f = Fixture::new();
        for cid in ["QmAlpha", "QmBeta", "QmGamma", "QmDelta"] {
            f.upload(cid);
        }
        let per_call = f
            .contract
            .all_cids(&mut f.provider, &f.caller)
            .value
            .unwrap();
        let batched = f
            .contract
            .all_cids_batched(&mut f.provider, &f.caller)
            .value
            .unwrap();
        assert_eq!(per_call, batched);
        // Round-trip accounting through a metered stack: 1 count + 1 batch.
        let mut metered = crate::decorators::MeteredProvider::new(f.provider);
        let again = f
            .contract
            .all_cids_batched(&mut metered, &f.caller)
            .value
            .unwrap();
        assert_eq!(again, batched);
        let metrics = metered.snapshot();
        assert_eq!(metrics.round_trips, 2);
        assert_eq!(metrics.method("eth_call").calls, 5);
        assert_eq!(metrics.batched_requests, 4);
    }

    #[test]
    fn out_of_range_read_is_a_typed_revert() {
        let mut f = Fixture::new();
        let result = f.contract.get_cid(&mut f.provider, &f.caller, 7).value;
        assert!(matches!(result, Err(BindingError::Reverted(_))));
    }

    #[test]
    fn event_query_decodes_over_a_range() {
        let mut f = Fixture::new();
        for cid in ["QmFirst", "QmSecond", "QmThird"] {
            f.upload(cid);
        }
        let head = f.provider.chain.height();
        let all = f
            .contract
            .uploaded_cids_in(&mut f.provider, 1, head)
            .value
            .unwrap();
        assert_eq!(all, vec!["QmFirst", "QmSecond", "QmThird"]);
        // The range actually filters: skip the first upload's block.
        let later = f
            .contract
            .uploaded_cids_in(&mut f.provider, 3, head)
            .value
            .unwrap();
        assert_eq!(later, vec!["QmSecond", "QmThird"]);
    }

    #[test]
    fn corrupt_returndata_is_a_decode_error_not_a_truncation() {
        // Decode path only: returndata with trailing garbage must surface
        // AbiError::TrailingData through the typed binding.
        let mut output = abi::encode(&[Value::Uint(U256::from(3u64))]);
        output.push(0xAA);
        let corrupt = CallResult {
            success: true,
            output,
            gas_used: 0,
        };
        assert_eq!(
            decode_return::<u64>(&corrupt),
            Err(BindingError::Decode(AbiError::TrailingData))
        );
    }

    #[test]
    fn type_mismatch_is_surfaced() {
        // A uint256 that cannot fit u64.
        let output = abi::encode(&[Value::Uint(U256::MAX)]);
        let result = CallResult {
            success: true,
            output,
            gas_used: 0,
        };
        assert_eq!(
            decode_return::<u64>(&result),
            Err(BindingError::TypeMismatch)
        );
    }

    #[test]
    fn deploy_receipt_validation() {
        let f = Fixture::new();
        let good = f
            .provider
            .chain
            .receipt(&f.provider.chain.block(1).unwrap().tx_hashes[0])
            .unwrap()
            .clone();
        assert!(ModelMarketContract::from_deploy_receipt(&good).is_ok());
        let mut bad = good.clone();
        bad.status = ofl_eth::block::TxStatus::Reverted;
        assert!(matches!(
            ModelMarketContract::from_deploy_receipt(&bad),
            Err(BindingError::Reverted(_))
        ));
    }
}
