//! # ofl-data
//!
//! Dataset substrate for the OFL-W3 reproduction: a deterministic synthetic
//! MNIST stand-in (documented substitution — real MNIST is unavailable
//! offline) and the federated partitioners the one-shot FL literature uses
//! (IID, PFNM-style Dirichlet, McMahan shards, `#C = k` label skew).
//!
//! ## Example
//!
//! ```
//! use ofl_data::mnist;
//! use ofl_data::partition;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let (train, _test) = mnist::generate(42, 1000, 200);
//! let mut rng = StdRng::seed_from_u64(0);
//! // Ten model owners with PFNM-style heterogeneous data.
//! let silos = partition::dirichlet(&train, 10, 10, 0.5, &mut rng);
//! assert_eq!(silos.len(), 10);
//! ```

#![forbid(unsafe_code)]

pub mod dataset;
pub mod mnist;
pub mod partition;

pub use dataset::Dataset;
pub use mnist::SyntheticMnist;
