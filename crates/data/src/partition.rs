//! Federated data partitioners: how a central dataset is split across
//! clients. The paper uses "the data partitioning techniques in PFNM" —
//! heterogeneous Dirichlet label skew — which [`dirichlet`] implements;
//! [`iid`], [`shards`], and [`label_skew`] cover the standard baselines.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// Splits into `k` IID shares of (nearly) equal size.
pub fn iid(dataset: &Dataset, k: usize, rng: &mut impl Rng) -> Vec<Dataset> {
    assert!(k > 0, "need at least one client");
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.shuffle(rng);
    let mut parts = Vec::with_capacity(k);
    let base = dataset.len() / k;
    let extra = dataset.len() % k;
    let mut cursor = 0;
    for i in 0..k {
        let take = base + usize::from(i < extra);
        parts.push(dataset.subset(&order[cursor..cursor + take]));
        cursor += take;
    }
    parts
}

/// PFNM-style heterogeneous split: for each class, the share of its
/// examples assigned to each client is drawn from `Dirichlet(alpha)`.
/// Small `alpha` (e.g. 0.5) gives strongly skewed clients.
pub fn dirichlet(
    dataset: &Dataset,
    k: usize,
    n_classes: usize,
    alpha: f64,
    rng: &mut impl Rng,
) -> Vec<Dataset> {
    assert!(k > 0 && alpha > 0.0);
    // Indices per class, shuffled.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &l) in dataset.labels.iter().enumerate() {
        by_class[l].push(i);
    }
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); k];
    for indices in by_class.iter_mut() {
        indices.shuffle(rng);
        let weights = dirichlet_sample(alpha, k, rng);
        // Cumulative proportional slicing.
        let n = indices.len();
        let mut start = 0usize;
        let mut acc = 0.0f64;
        for (client, &w) in weights.iter().enumerate() {
            acc += w;
            let end = if client == k - 1 {
                n
            } else {
                (acc * n as f64).round() as usize
            }
            .min(n);
            assignments[client].extend_from_slice(&indices[start..end.max(start)]);
            start = end.max(start);
        }
    }
    assignments
        .into_iter()
        .map(|idx| dataset.subset(&idx))
        .collect()
}

/// McMahan-style shard partition: sort by label, cut into `k ·
/// shards_per_client` contiguous shards, deal each client
/// `shards_per_client` shards at random. Produces clients that see ~2
/// classes when `shards_per_client = 2`.
pub fn shards(
    dataset: &Dataset,
    k: usize,
    shards_per_client: usize,
    rng: &mut impl Rng,
) -> Vec<Dataset> {
    assert!(k > 0 && shards_per_client > 0);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.sort_by_key(|&i| dataset.labels[i]);
    let n_shards = k * shards_per_client;
    let shard_size = dataset.len() / n_shards;
    assert!(shard_size > 0, "dataset too small for shard count");
    let mut shard_ids: Vec<usize> = (0..n_shards).collect();
    shard_ids.shuffle(rng);
    let mut parts = Vec::with_capacity(k);
    for c in 0..k {
        let mut idx = Vec::with_capacity(shards_per_client * shard_size);
        for s in 0..shards_per_client {
            let shard = shard_ids[c * shards_per_client + s];
            let start = shard * shard_size;
            // Last shard absorbs the remainder.
            let end = if shard == n_shards - 1 {
                dataset.len()
            } else {
                start + shard_size
            };
            idx.extend_from_slice(&order[start..end]);
        }
        parts.push(dataset.subset(&idx));
    }
    parts
}

/// `#C = c` label-skew: each client is assigned `c` classes round-robin and
/// receives an equal slice of each assigned class's examples.
pub fn label_skew(
    dataset: &Dataset,
    k: usize,
    n_classes: usize,
    classes_per_client: usize,
    rng: &mut impl Rng,
) -> Vec<Dataset> {
    assert!(classes_per_client >= 1 && classes_per_client <= n_classes);
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
    for (i, &l) in dataset.labels.iter().enumerate() {
        by_class[l].push(i);
    }
    for v in by_class.iter_mut() {
        v.shuffle(rng);
    }
    // Assign classes to clients round-robin so every class is covered.
    let mut client_classes: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut next_class = 0usize;
    for client_list in client_classes.iter_mut() {
        for _ in 0..classes_per_client {
            client_list.push(next_class % n_classes);
            next_class += 1;
        }
    }
    // Count how many clients want each class, then slice evenly.
    let mut takers = vec![0usize; n_classes];
    for cs in &client_classes {
        for &c in cs {
            takers[c] += 1;
        }
    }
    let mut cursors = vec![0usize; n_classes];
    let mut parts = Vec::with_capacity(k);
    for cs in &client_classes {
        let mut idx = Vec::new();
        for &c in cs {
            let pool = &by_class[c];
            let share = pool.len() / takers[c].max(1);
            let start = cursors[c];
            let end = (start + share).min(pool.len());
            idx.extend_from_slice(&pool[start..end]);
            cursors[c] = end;
        }
        parts.push(dataset.subset(&idx));
    }
    parts
}

/// Samples `Dirichlet(alpha)` over `k` coordinates via normalized Gamma
/// draws.
pub fn dirichlet_sample(alpha: f64, k: usize, rng: &mut impl Rng) -> Vec<f64> {
    let draws: Vec<f64> = (0..k).map(|_| gamma_sample(alpha, rng)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        // Degenerate fallback: uniform.
        return vec![1.0 / k as f64; k];
    }
    draws.into_iter().map(|g| g / total).collect()
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler; shapes < 1 are boosted via
/// `Gamma(shape+1) · U^{1/shape}`.
pub fn gamma_sample(shape: f64, rng: &mut impl Rng) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal_sample(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Standard normal via Box–Muller.
fn normal_sample(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mnist::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn partition_covers_everything(parts: &[Dataset], total: usize) {
        assert_eq!(parts.iter().map(Dataset::len).sum::<usize>(), total);
    }

    #[test]
    fn iid_split_is_balanced() {
        let (train, _) = generate(1, 1000, 10);
        let mut rng = StdRng::seed_from_u64(0);
        let parts = iid(&train, 10, &mut rng);
        partition_covers_everything(&parts, 1000);
        for p in &parts {
            assert_eq!(p.len(), 100);
            // Each IID client should see most classes.
            assert!(p.distinct_classes() >= 8, "{}", p.distinct_classes());
        }
    }

    #[test]
    fn dirichlet_low_alpha_is_skewed() {
        let (train, _) = generate(2, 2000, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let parts = dirichlet(&train, 10, 10, 0.3, &mut rng);
        partition_covers_everything(&parts, 2000);
        // With alpha = 0.3 at least one client must be heavily concentrated:
        // its top class holds > 40 % of its data.
        let mut max_concentration: f64 = 0.0;
        for p in &parts {
            if p.is_empty() {
                continue;
            }
            let hist = p.class_histogram(10);
            let top = *hist.iter().max().unwrap() as f64 / p.len() as f64;
            max_concentration = max_concentration.max(top);
        }
        assert!(max_concentration > 0.4, "max {max_concentration}");
    }

    #[test]
    fn dirichlet_high_alpha_approaches_iid() {
        let (train, _) = generate(3, 2000, 10);
        let mut rng = StdRng::seed_from_u64(2);
        let parts = dirichlet(&train, 5, 10, 100.0, &mut rng);
        partition_covers_everything(&parts, 2000);
        for p in &parts {
            assert!(p.distinct_classes() >= 9);
        }
    }

    #[test]
    fn shards_give_few_classes() {
        let (train, _) = generate(4, 2000, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let parts = shards(&train, 10, 2, &mut rng);
        partition_covers_everything(&parts, 2000);
        for p in &parts {
            // Two shards → at most ~3 classes (shard boundaries may straddle).
            assert!(p.distinct_classes() <= 4, "{}", p.distinct_classes());
        }
    }

    #[test]
    fn label_skew_respects_class_budget() {
        let (train, _) = generate(5, 2000, 10);
        let mut rng = StdRng::seed_from_u64(4);
        let parts = label_skew(&train, 10, 10, 2, &mut rng);
        for p in &parts {
            assert!(p.distinct_classes() <= 2);
            assert!(!p.is_empty());
        }
        // Round-robin over 10 clients × 2 classes covers all 10 classes.
        let mut covered = std::collections::HashSet::new();
        for p in &parts {
            covered.extend(p.labels.iter().cloned());
        }
        assert_eq!(covered.len(), 10);
    }

    #[test]
    fn gamma_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        for &shape in &[0.5f64, 1.0, 2.0, 5.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma_sample(shape, &mut rng)).sum::<f64>() / n as f64;
            // Gamma(shape, 1) has mean = shape.
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sample_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(6);
        for &alpha in &[0.1f64, 0.5, 1.0, 10.0] {
            let w = dirichlet_sample(alpha, 10, &mut rng);
            assert_eq!(w.len(), 10);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }
}
