//! Labelled datasets and batching.

use ofl_tensor::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled classification dataset: row-per-example features plus integer
/// labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Features, shape (n, d).
    pub images: Tensor,
    /// Labels in `0..n_classes`.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset, validating shapes.
    pub fn new(images: Tensor, labels: Vec<usize>) -> Dataset {
        assert_eq!(images.rows(), labels.len(), "image/label count mismatch");
        Dataset { images, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.images.cols()
    }

    /// Number of distinct classes present.
    pub fn distinct_classes(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for &l in &self.labels {
            seen.insert(l);
        }
        seen.len()
    }

    /// Per-class example counts over `n_classes`.
    pub fn class_histogram(&self, n_classes: usize) -> Vec<usize> {
        let mut hist = vec![0usize; n_classes];
        for &l in &self.labels {
            assert!(l < n_classes, "label {l} out of range");
            hist[l] += 1;
        }
        hist
    }

    /// Extracts the subset at `indices` (copying).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let d = self.dim();
        let mut data = Vec::with_capacity(indices.len() * d);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.images.row(i));
            labels.push(self.labels[i]);
        }
        Dataset {
            images: Tensor::from_vec(indices.len(), d, data),
            labels,
        }
    }

    /// Randomly shuffles examples in place.
    pub fn shuffle(&mut self, rng: &mut impl Rng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let shuffled = self.subset(&order);
        *self = shuffled;
    }

    /// Iterates over `(features, labels)` minibatches of up to `batch_size`.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Tensor, &[usize])> + '_ {
        assert!(batch_size > 0, "batch size must be positive");
        let n = self.len();
        let d = self.dim();
        (0..n).step_by(batch_size).map(move |start| {
            let end = (start + batch_size).min(n);
            let mut buf = Vec::with_capacity((end - start) * d);
            for r in start..end {
                buf.extend_from_slice(self.images.row(r));
            }
            (
                Tensor::from_vec(end - start, d, buf),
                &self.labels[start..end],
            )
        })
    }

    /// Concatenates datasets (same dimensionality required).
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat of nothing");
        let d = parts[0].dim();
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut data = Vec::with_capacity(total * d);
        let mut labels = Vec::with_capacity(total);
        for p in parts {
            assert_eq!(p.dim(), d, "dimension mismatch in concat");
            data.extend_from_slice(p.images.data());
            labels.extend_from_slice(&p.labels);
        }
        Dataset {
            images: Tensor::from_vec(total, d, data),
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> Dataset {
        let images = Tensor::from_vec(4, 2, vec![0., 0., 1., 1., 2., 2., 3., 3.]);
        Dataset::new(images, vec![0, 1, 0, 1])
    }

    #[test]
    fn subset_picks_rows() {
        let ds = small();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.images.row(0), &[2., 2.]);
        assert_eq!(sub.labels, vec![0, 0]);
    }

    #[test]
    fn batches_cover_everything_once() {
        let ds = small();
        let mut seen = 0;
        for (x, y) in ds.batches(3) {
            assert_eq!(x.rows(), y.len());
            seen += y.len();
        }
        assert_eq!(seen, 4);
        // Batch sizes: 3 then 1.
        let sizes: Vec<usize> = ds.batches(3).map(|(_, y)| y.len()).collect();
        assert_eq!(sizes, vec![3, 1]);
    }

    #[test]
    fn histogram_and_classes() {
        let ds = small();
        assert_eq!(ds.class_histogram(3), vec![2, 2, 0]);
        assert_eq!(ds.distinct_classes(), 2);
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut ds = small();
        let mut rng = StdRng::seed_from_u64(0);
        ds.shuffle(&mut rng);
        assert_eq!(ds.len(), 4);
        let mut hist = ds.class_histogram(2);
        hist.sort();
        assert_eq!(hist, vec![2, 2]);
        // Every original row still present.
        for needle in [[0., 0.], [1., 1.], [2., 2.], [3., 3.]] {
            assert!((0..4).any(|r| ds.images.row(r) == needle));
        }
    }

    #[test]
    fn concat_works() {
        let a = small();
        let b = small();
        let joined = Dataset::concat(&[&a, &b]);
        assert_eq!(joined.len(), 8);
        assert_eq!(joined.class_histogram(2), vec![4, 4]);
    }

    #[test]
    #[should_panic(expected = "image/label count mismatch")]
    fn mismatched_lengths_panic() {
        Dataset::new(Tensor::zeros(3, 2), vec![0, 1]);
    }
}
