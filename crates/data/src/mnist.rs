//! Synthetic MNIST: a deterministic, class-structured 10-way image task.
//!
//! Real MNIST files are unavailable offline, so this generator produces a
//! statistically similar stand-in (documented as a substitution in
//! DESIGN.md): each class is a smooth prototype of 28×28 "stroke blobs";
//! samples are the prototype under random translation, per-pixel noise, and
//! intensity jitter. An MLP(784,100,10) reaches >95 % accuracy on the full
//! task but degrades sharply when a client sees only a couple of classes —
//! the same qualitative behaviour non-IID MNIST exhibits in the paper's
//! Fig 4.

use crate::dataset::Dataset;
use ofl_tensor::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const SIDE: usize = 28;
/// Flattened image dimension.
pub const DIM: usize = SIDE * SIDE;
/// Number of classes.
pub const CLASSES: usize = 10;

/// The synthetic digit generator.
#[derive(Debug, Clone)]
pub struct SyntheticMnist {
    prototypes: Vec<Vec<f32>>,
}

impl SyntheticMnist {
    /// Builds the ten class prototypes deterministically from `seed`.
    pub fn new(seed: u64) -> SyntheticMnist {
        let mut prototypes = Vec::with_capacity(CLASSES);
        for class in 0..CLASSES {
            let mut rng = StdRng::seed_from_u64(
                seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(class as u64 + 1)),
            );
            prototypes.push(Self::make_prototype(&mut rng));
        }
        SyntheticMnist { prototypes }
    }

    /// A prototype: several soft "strokes" (random walks of Gaussian blobs)
    /// on the canvas, normalized to [0, 1].
    fn make_prototype(rng: &mut StdRng) -> Vec<f32> {
        let mut img = vec![0.0f32; DIM];
        let strokes = rng.gen_range(3..=5);
        for _ in 0..strokes {
            let mut x = rng.gen_range(6.0..22.0f32);
            let mut y = rng.gen_range(6.0..22.0f32);
            let mut dx = rng.gen_range(-1.5..1.5f32);
            let mut dy = rng.gen_range(-1.5..1.5f32);
            let steps = rng.gen_range(6..14);
            for _ in 0..steps {
                Self::stamp_blob(&mut img, x, y, 1.6);
                dx += rng.gen_range(-0.6..0.6f32);
                dy += rng.gen_range(-0.6..0.6f32);
                dx = dx.clamp(-2.0, 2.0);
                dy = dy.clamp(-2.0, 2.0);
                x = (x + dx).clamp(2.0, 25.0);
                y = (y + dy).clamp(2.0, 25.0);
            }
        }
        let max = img.iter().cloned().fold(0.0f32, f32::max).max(1e-6);
        for v in &mut img {
            *v = (*v / max).min(1.0);
        }
        img
    }

    fn stamp_blob(img: &mut [f32], cx: f32, cy: f32, sigma: f32) {
        let r = (3.0 * sigma) as i32;
        let (icx, icy) = (cx as i32, cy as i32);
        for py in (icy - r).max(0)..=(icy + r).min(SIDE as i32 - 1) {
            for px in (icx - r).max(0)..=(icx + r).min(SIDE as i32 - 1) {
                let d2 = (px as f32 - cx).powi(2) + (py as f32 - cy).powi(2);
                img[py as usize * SIDE + px as usize] += (-d2 / (2.0 * sigma * sigma)).exp();
            }
        }
    }

    /// Prototype for a class (test inspection).
    pub fn prototype(&self, class: usize) -> &[f32] {
        &self.prototypes[class]
    }

    /// Draws one sample of `class`: translated, intensity-jittered, noisy
    /// prototype.
    pub fn sample_one(&self, class: usize, rng: &mut impl Rng) -> Vec<f32> {
        let proto = &self.prototypes[class];
        let shift_x = rng.gen_range(-2i32..=2);
        let shift_y = rng.gen_range(-2i32..=2);
        let gain = rng.gen_range(0.7..1.1f32);
        let noise = 0.12f32;
        let mut out = vec![0.0f32; DIM];
        for y in 0..SIDE as i32 {
            for x in 0..SIDE as i32 {
                let sx = x - shift_x;
                let sy = y - shift_y;
                let base = if (0..SIDE as i32).contains(&sx) && (0..SIDE as i32).contains(&sy) {
                    proto[sy as usize * SIDE + sx as usize]
                } else {
                    0.0
                };
                let n: f32 = rng.gen_range(-noise..noise);
                out[y as usize * SIDE + x as usize] = (base * gain + n).clamp(0.0, 1.0);
            }
        }
        out
    }

    /// Draws a dataset of `n` examples with the given class mix
    /// (`class_weights` need not be normalized).
    pub fn sample_weighted(&self, n: usize, class_weights: &[f64], rng: &mut impl Rng) -> Dataset {
        assert_eq!(class_weights.len(), CLASSES, "need 10 class weights");
        let total: f64 = class_weights.iter().sum();
        assert!(total > 0.0, "class weights must not all be zero");
        let mut data = Vec::with_capacity(n * DIM);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let mut u = rng.gen_range(0.0..total);
            let mut class = CLASSES - 1;
            for (c, &w) in class_weights.iter().enumerate() {
                if u < w {
                    class = c;
                    break;
                }
                u -= w;
            }
            data.extend_from_slice(&self.sample_one(class, rng));
            labels.push(class);
        }
        Dataset::new(Tensor::from_vec(n, DIM, data), labels)
    }

    /// Draws `n` examples with uniform class balance.
    pub fn sample(&self, n: usize, rng: &mut impl Rng) -> Dataset {
        self.sample_weighted(n, &[1.0; CLASSES], rng)
    }
}

/// Convenience: deterministic train/test split of the synthetic task.
pub fn generate(seed: u64, n_train: usize, n_test: usize) -> (Dataset, Dataset) {
    let gen = SyntheticMnist::new(seed);
    let mut rng_train = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut rng_test = StdRng::seed_from_u64(seed.wrapping_add(2));
    (
        gen.sample(n_train, &mut rng_train),
        gen.sample(n_test, &mut rng_test),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_tensor::nn::Mlp;
    use ofl_tensor::optim::{Adam, Optimizer};

    #[test]
    fn deterministic_generation() {
        let (a_train, _) = generate(7, 50, 10);
        let (b_train, _) = generate(7, 50, 10);
        assert_eq!(a_train.labels, b_train.labels);
        assert_eq!(a_train.images.data(), b_train.images.data());
        let (c_train, _) = generate(8, 50, 10);
        assert_ne!(a_train.images.data(), c_train.images.data());
    }

    #[test]
    fn pixels_in_unit_range() {
        let (train, _) = generate(1, 100, 10);
        assert!(train
            .images
            .data()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(train.dim(), 784);
    }

    #[test]
    fn class_weights_respected() {
        let gen = SyntheticMnist::new(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut weights = [0.0f64; 10];
        weights[3] = 1.0;
        weights[7] = 1.0;
        let ds = gen.sample_weighted(200, &weights, &mut rng);
        let hist = ds.class_histogram(10);
        assert_eq!(hist[3] + hist[7], 200);
        assert!(hist[3] > 50 && hist[7] > 50);
    }

    #[test]
    fn prototypes_are_distinct() {
        let gen = SyntheticMnist::new(5);
        for a in 0..CLASSES {
            for b in (a + 1)..CLASSES {
                let pa = gen.prototype(a);
                let pb = gen.prototype(b);
                let dist: f32 = pa
                    .iter()
                    .zip(pb)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f32>()
                    .sqrt();
                assert!(dist > 1.0, "classes {a},{b} too similar ({dist})");
            }
        }
    }

    #[test]
    fn task_is_learnable_by_paper_mlp() {
        // A quick sanity check that the synthetic task behaves like MNIST:
        // a small MLP must reach high accuracy fast on balanced data.
        let (train, test) = generate(42, 600, 200);
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Mlp::new(&[784, 100, 10], &mut rng);
        let mut opt = Adam::new(0.001);
        for _ in 0..10 {
            for (x, y) in train.batches(64) {
                let (_, grads) = model.loss_and_grads(&x, y);
                opt.step(&mut model, &grads);
            }
        }
        let acc = model.accuracy(&test.images, &test.labels);
        assert!(acc > 0.9, "synthetic task accuracy only {acc}");
    }

    #[test]
    fn single_class_training_fails_on_balanced_test() {
        // The Fig 4 phenomenon: a model that only ever saw one class cannot
        // exceed ~10-20 % on a balanced test set.
        let gen = SyntheticMnist::new(42);
        let mut rng = StdRng::seed_from_u64(1);
        let mut weights = [0.0f64; 10];
        weights[0] = 1.0;
        let train = gen.sample_weighted(300, &weights, &mut rng);
        let test = gen.sample(200, &mut rng);
        let mut model = Mlp::new(&[784, 100, 10], &mut StdRng::seed_from_u64(2));
        let mut opt = Adam::new(0.001);
        for _ in 0..5 {
            for (x, y) in train.batches(64) {
                let (_, grads) = model.loss_and_grads(&x, y);
                opt.step(&mut model, &grads);
            }
        }
        let acc = model.accuracy(&test.images, &test.labels);
        assert!(acc < 0.35, "single-class model suspiciously good: {acc}");
    }
}
