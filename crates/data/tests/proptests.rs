//! Property-based tests for the dataset substrate: partitions always form an
//! exact cover, generators are deterministic, and samplers respect their
//! distributions.

use ofl_data::dataset::Dataset;
use ofl_data::mnist::{self, SyntheticMnist};
use ofl_data::partition;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn total_histogram(parts: &[Dataset], classes: usize) -> Vec<usize> {
    let mut hist = vec![0usize; classes];
    for p in parts {
        for (i, c) in p.class_histogram(classes).into_iter().enumerate() {
            hist[i] += c;
        }
    }
    hist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_partition_is_an_exact_cover(
        n in 100usize..600,
        k in 1usize..8,
        seed in any::<u64>(),
        scheme in 0usize..3,
    ) {
        let (train, _) = mnist::generate(seed, n, 10);
        let mut rng = StdRng::seed_from_u64(seed ^ 1);
        let parts = match scheme {
            0 => partition::iid(&train, k, &mut rng),
            1 => partition::dirichlet(&train, k, 10, 0.5, &mut rng),
            _ => partition::label_skew(&train, k, 10, 2, &mut rng),
        };
        prop_assert_eq!(parts.len(), k);
        // Class-mass conservation for iid/dirichlet (label_skew may leave a
        // remainder unassigned by design of the equal-slice split).
        if scheme < 2 {
            prop_assert_eq!(parts.iter().map(Dataset::len).sum::<usize>(), n);
            prop_assert_eq!(total_histogram(&parts, 10), train.class_histogram(10));
        } else {
            prop_assert!(parts.iter().map(Dataset::len).sum::<usize>() <= n);
        }
    }

    #[test]
    fn generation_is_pure(seed in any::<u64>(), n in 1usize..200) {
        let (a, at) = mnist::generate(seed, n, 5);
        let (b, bt) = mnist::generate(seed, n, 5);
        prop_assert_eq!(a.images.data(), b.images.data());
        prop_assert_eq!(a.labels, b.labels);
        prop_assert_eq!(at.images.data(), bt.images.data());
    }

    #[test]
    fn samples_stay_in_unit_interval(seed in any::<u64>(), class in 0usize..10) {
        let gen = SyntheticMnist::new(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let img = gen.sample_one(class, &mut rng);
        prop_assert_eq!(img.len(), 784);
        prop_assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn weighted_sampling_respects_support(
        seed in any::<u64>(),
        on in proptest::collection::btree_set(0usize..10, 1..5),
    ) {
        let gen = SyntheticMnist::new(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let mut weights = [0.0f64; 10];
        for &c in &on {
            weights[c] = 1.0;
        }
        let ds = gen.sample_weighted(100, &weights, &mut rng);
        for &l in &ds.labels {
            prop_assert!(on.contains(&l), "label {l} outside support {on:?}");
        }
    }

    #[test]
    fn subset_then_concat_roundtrip(
        n in 10usize..100,
        seed in any::<u64>(),
        split_at in 1usize..9,
    ) {
        let (ds, _) = mnist::generate(seed, n, 5);
        let cut = n * split_at / 10;
        let left: Vec<usize> = (0..cut).collect();
        let right: Vec<usize> = (cut..n).collect();
        let a = ds.subset(&left);
        let b = ds.subset(&right);
        let joined = Dataset::concat(&[&a, &b]);
        prop_assert_eq!(joined.images.data(), ds.images.data());
        prop_assert_eq!(joined.labels, ds.labels);
    }

    #[test]
    fn dirichlet_samples_form_simplex(alpha in 0.05f64..50.0, k in 1usize..20, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = partition::dirichlet_sample(alpha, k, &mut rng);
        prop_assert_eq!(w.len(), k);
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }
}
