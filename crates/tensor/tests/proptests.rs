//! Property-based tests for the tensor/NN layer: linear-algebra laws, loss
//! gradient sanity, and the model codec as a bijection.

use ofl_tensor::nn::Mlp;
use ofl_tensor::serialize::{decode_model, encode_model};
use ofl_tensor::tensor::{cross_entropy_with_grad, softmax_rows, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_tensor(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Tensor> {
    (rows, cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_associates_with_identity(a in arb_tensor(1..6, 1..6)) {
        // A · I = A
        let n = a.cols();
        let mut eye = Tensor::zeros(n, n);
        for i in 0..n {
            eye.set(i, i, 1.0);
        }
        let product = a.matmul(&eye);
        for (x, y) in product.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_swaps_matmul_order(a in arb_tensor(1..5, 1..5), seed in any::<u64>()) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let mut rng = StdRng::seed_from_u64(seed);
        let b = Tensor::randn(a.cols(), 3, 1.0, &mut rng);
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_nt_tn_consistency(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(4, 7, 1.0, &mut rng);
        let w = Tensor::randn(5, 7, 1.0, &mut rng);
        // x @ wᵀ computed two ways.
        let a = x.matmul_nt(&w);
        let b = x.matmul(&w.transpose());
        for (p, q) in a.data().iter().zip(b.data()) {
            prop_assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_is_distribution(logits in arb_tensor(1..6, 2..8)) {
        let p = softmax_rows(&logits);
        for r in 0..p.rows() {
            let row_sum: f32 = p.row(r).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_shift_invariant(logits in arb_tensor(1..4, 2..6), shift in -5.0f32..5.0) {
        let p1 = softmax_rows(&logits);
        let mut shifted = logits.clone();
        shifted.map_inplace(|v| v + shift);
        let p2 = softmax_rows(&shifted);
        for (a, b) in p1.data().iter().zip(p2.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_grad_rows_sum_zero(
        logits in arb_tensor(1..6, 2..8),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels: Vec<usize> = (0..logits.rows())
            .map(|_| rand::Rng::gen_range(&mut rng, 0..logits.cols()))
            .collect();
        let (loss, grad) = cross_entropy_with_grad(&logits, &labels);
        prop_assert!(loss >= 0.0);
        // Each gradient row sums to ~0 (softmax − one-hot).
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4, "row {r} sums to {s}");
        }
    }

    #[test]
    fn model_codec_is_bijective(
        dims in proptest::collection::vec(1usize..32, 2..5),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Mlp::new(&dims, &mut rng);
        let bytes = encode_model(&model);
        let decoded = decode_model(&bytes).unwrap();
        prop_assert_eq!(&decoded, &model);
        // Encoding is canonical: re-encode gives identical bytes.
        prop_assert_eq!(encode_model(&decoded), bytes);
    }

    #[test]
    fn codec_rejects_any_truncation(
        dims in proptest::collection::vec(1usize..8, 2..4),
        seed in any::<u64>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Mlp::new(&dims, &mut rng);
        let bytes = encode_model(&model);
        let cut_at = cut.index(bytes.len().max(1));
        if cut_at < bytes.len() {
            prop_assert!(decode_model(&bytes[..cut_at]).is_err());
        }
    }

    #[test]
    fn forward_is_deterministic_and_finite(
        seed in any::<u64>(),
        batch in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = Mlp::new(&[6, 10, 4], &mut rng);
        let x = Tensor::randn(batch, 6, 2.0, &mut rng);
        let y1 = model.forward(&x);
        let y2 = model.forward(&x);
        prop_assert_eq!(&y1, &y2);
        prop_assert!(y1.data().iter().all(|v| v.is_finite()));
    }
}
