//! Model (de)serialization: the byte format model owners upload to IPFS.
//!
//! Layout (all little-endian):
//! `magic "OFLW" ‖ version u16 ‖ n_layers u16 ‖ (in u32, out u32)*n ‖
//!  per-layer weights row-major f32 ‖ per-layer bias f32`.
//!
//! For the paper's 784-100-10 MLP this serializes to 318 064 bytes ≈ 311 KiB,
//! matching the ~317 KB model size reported in §4.4.

use crate::nn::{Linear, Mlp};
use crate::tensor::Tensor;

/// Format magic.
pub const MAGIC: &[u8; 4] = b"OFLW";
/// Current format version.
pub const VERSION: u16 = 1;

/// Errors from decoding model bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCodecError {
    /// Missing/incorrect magic.
    BadMagic,
    /// Unsupported version.
    BadVersion(u16),
    /// Byte count inconsistent with the header.
    Truncated,
    /// A layer's input does not match the previous layer's output.
    InconsistentDims,
}

impl core::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ModelCodecError::BadMagic => write!(f, "not an OFLW model file"),
            ModelCodecError::BadVersion(v) => write!(f, "unsupported model format version {v}"),
            ModelCodecError::Truncated => write!(f, "model bytes truncated"),
            ModelCodecError::InconsistentDims => write!(f, "layer dimensions inconsistent"),
        }
    }
}

impl std::error::Error for ModelCodecError {}

/// Serializes a model.
pub fn encode_model(model: &Mlp) -> Vec<u8> {
    let mut out = Vec::with_capacity(model.param_count() * 4 + 64);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(model.layers.len() as u16).to_le_bytes());
    for layer in &model.layers {
        out.extend_from_slice(&(layer.in_dim() as u32).to_le_bytes());
        out.extend_from_slice(&(layer.out_dim() as u32).to_le_bytes());
    }
    for layer in &model.layers {
        for &w in layer.weight.data() {
            out.extend_from_slice(&w.to_le_bytes());
        }
        for &b in &layer.bias {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }
    out
}

/// Deserializes a model.
pub fn decode_model(bytes: &[u8]) -> Result<Mlp, ModelCodecError> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(ModelCodecError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(ModelCodecError::BadVersion(version));
    }
    let n_layers = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
    let mut pos = 8;
    let mut dims = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let end = pos + 8;
        let chunk = bytes.get(pos..end).ok_or(ModelCodecError::Truncated)?;
        let in_dim = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) as usize;
        let out_dim = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]) as usize;
        dims.push((in_dim, out_dim));
        pos = end;
    }
    for w in dims.windows(2) {
        if w[0].1 != w[1].0 {
            return Err(ModelCodecError::InconsistentDims);
        }
    }
    let mut layers = Vec::with_capacity(n_layers);
    for &(in_dim, out_dim) in &dims {
        let w_len = in_dim * out_dim * 4;
        let w_bytes = bytes
            .get(pos..pos + w_len)
            .ok_or(ModelCodecError::Truncated)?;
        pos += w_len;
        let weight_data: Vec<f32> = w_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let b_len = out_dim * 4;
        let b_bytes = bytes
            .get(pos..pos + b_len)
            .ok_or(ModelCodecError::Truncated)?;
        pos += b_len;
        let bias: Vec<f32> = b_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        layers.push(Linear {
            weight: Tensor::from_vec(out_dim, in_dim, weight_data),
            bias,
        });
    }
    if pos != bytes.len() {
        return Err(ModelCodecError::Truncated);
    }
    Ok(Mlp { layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_model_exactly() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = Mlp::new(&[784, 100, 10], &mut rng);
        let bytes = encode_model(&model);
        let decoded = decode_model(&bytes).unwrap();
        assert_eq!(decoded, model);
    }

    #[test]
    fn paper_model_size_is_317_kb() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = Mlp::new(&[784, 100, 10], &mut rng);
        let bytes = encode_model(&model);
        // §4.4: "the models in our experiments occupying 317Kb".
        // 79 510 f32 params + 24-byte header = 318 064 bytes ≈ 310.6 KiB.
        assert_eq!(bytes.len(), 318_064);
        assert_eq!(bytes.len() / 1024, 310);
        assert!((bytes.len() as f64 / 1024.0 - 317.0).abs() < 8.0);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode_model(b"nope"), Err(ModelCodecError::BadMagic));
        assert_eq!(decode_model(b""), Err(ModelCodecError::BadMagic));
        let mut ok = encode_model(&Mlp::new(&[2, 2], &mut StdRng::seed_from_u64(0)));
        ok[4] = 99; // version
        assert_eq!(decode_model(&ok), Err(ModelCodecError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation_and_trailing() {
        let model = Mlp::new(&[3, 4, 2], &mut StdRng::seed_from_u64(1));
        let bytes = encode_model(&model);
        assert_eq!(
            decode_model(&bytes[..bytes.len() - 1]),
            Err(ModelCodecError::Truncated)
        );
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(decode_model(&extended), Err(ModelCodecError::Truncated));
    }

    #[test]
    fn rejects_inconsistent_dims() {
        // Hand-craft a header where layer 1 output ≠ layer 2 input.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes()); // in
        bytes.extend_from_slice(&3u32.to_le_bytes()); // out
        bytes.extend_from_slice(&4u32.to_le_bytes()); // in ≠ 3
        bytes.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(decode_model(&bytes), Err(ModelCodecError::InconsistentDims));
    }

    #[test]
    fn decoded_model_predicts_identically() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = Mlp::new(&[10, 8, 4], &mut rng);
        let decoded = decode_model(&encode_model(&model)).unwrap();
        let x = Tensor::randn(6, 10, 1.0, &mut rng);
        assert_eq!(model.predict(&x), decoded.predict(&x));
    }
}
