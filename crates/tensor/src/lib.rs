//! # ofl-tensor
//!
//! A small, dependency-light neural-network library sufficient for the
//! paper's experiments: dense f32 tensors, multi-layer perceptrons with
//! explicit backpropagation, SGD/Adam optimizers, and the byte-level model
//! codec whose output is what model owners upload to IPFS.
//!
//! The paper's network — MLP (784, 100, 10), batch 64, lr 0.001, 10 local
//! epochs — trains in well under a second per client on CPU at the sample
//! counts used by the benchmark harness.
//!
//! ## Example
//!
//! ```
//! use ofl_tensor::nn::Mlp;
//! use ofl_tensor::optim::{Adam, Optimizer};
//! use ofl_tensor::tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Mlp::new(&[4, 16, 2], &mut rng);
//! let x = Tensor::randn(32, 4, 1.0, &mut rng);
//! let labels: Vec<usize> = (0..32).map(|i| i % 2).collect();
//!
//! let mut opt = Adam::new(0.01);
//! for _ in 0..10 {
//!     let (_loss, grads) = model.loss_and_grads(&x, &labels);
//!     opt.step(&mut model, &grads);
//! }
//! let bytes = ofl_tensor::serialize::encode_model(&model);
//! let restored = ofl_tensor::serialize::decode_model(&bytes).unwrap();
//! assert_eq!(restored, model);
//! ```

#![forbid(unsafe_code)]

pub mod nn;
pub mod optim;
pub mod serialize;
pub mod tensor;

pub use nn::{Linear, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
pub use serialize::{decode_model, encode_model};
pub use tensor::Tensor;
