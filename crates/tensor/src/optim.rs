//! Optimizers: SGD with momentum and Adam. The paper trains locally with
//! Adam-style settings (lr = 0.001), which is this module's default.

use crate::nn::{LinearGrad, Mlp};
use crate::tensor::Tensor;

/// A first-order optimizer over an [`Mlp`]'s parameters.
pub trait Optimizer {
    /// Applies one update step given per-layer gradients.
    fn step(&mut self, model: &mut Mlp, grads: &[LinearGrad]);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Option<Vec<(Tensor, Vec<f32>)>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Sgd {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: None,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut Mlp, grads: &[LinearGrad]) {
        if self.momentum == 0.0 {
            for (layer, g) in model.layers.iter_mut().zip(grads) {
                layer.weight.axpy(-self.lr, &g.weight);
                for (b, &gb) in layer.bias.iter_mut().zip(&g.bias) {
                    *b -= self.lr * gb;
                }
            }
            return;
        }
        let velocity = self.velocity.get_or_insert_with(|| {
            model
                .layers
                .iter()
                .map(|l| {
                    (
                        Tensor::zeros(l.weight.rows(), l.weight.cols()),
                        vec![0.0; l.bias.len()],
                    )
                })
                .collect()
        });
        for ((layer, g), (vw, vb)) in model.layers.iter_mut().zip(grads).zip(velocity.iter_mut()) {
            vw.scale(self.momentum);
            vw.axpy(1.0, &g.weight);
            layer.weight.axpy(-self.lr, vw);
            for ((b, &gb), v) in layer.bias.iter_mut().zip(&g.bias).zip(vb.iter_mut()) {
                *v = self.momentum * *v + gb;
                *b -= self.lr * *v;
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper setting: 0.001).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    moments: Option<Vec<AdamState>>,
}

#[derive(Debug, Clone)]
struct AdamState {
    m_w: Tensor,
    v_w: Tensor,
    m_b: Vec<f32>,
    v_b: Vec<f32>,
}

impl Adam {
    /// Adam with standard hyperparameters.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: None,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut Mlp, grads: &[LinearGrad]) {
        self.t += 1;
        let t = self.t as f32;
        let (b1, b2) = (self.beta1, self.beta2);
        let corr1 = 1.0 - b1.powf(t);
        let corr2 = 1.0 - b2.powf(t);
        let moments = self.moments.get_or_insert_with(|| {
            model
                .layers
                .iter()
                .map(|l| AdamState {
                    m_w: Tensor::zeros(l.weight.rows(), l.weight.cols()),
                    v_w: Tensor::zeros(l.weight.rows(), l.weight.cols()),
                    m_b: vec![0.0; l.bias.len()],
                    v_b: vec![0.0; l.bias.len()],
                })
                .collect()
        });
        for ((layer, g), st) in model.layers.iter_mut().zip(grads).zip(moments.iter_mut()) {
            for i in 0..layer.weight.len() {
                let grad = g.weight.data()[i];
                let m = &mut st.m_w.data_mut()[i];
                *m = b1 * *m + (1.0 - b1) * grad;
                let m_val = *m;
                let v = &mut st.v_w.data_mut()[i];
                *v = b2 * *v + (1.0 - b2) * grad * grad;
                let m_hat = m_val / corr1;
                let v_hat = *v / corr2;
                layer.weight.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            for i in 0..layer.bias.len() {
                let grad = g.bias[i];
                st.m_b[i] = b1 * st.m_b[i] + (1.0 - b1) * grad;
                st.v_b[i] = b2 * st.v_b[i] + (1.0 - b2) * grad * grad;
                let m_hat = st.m_b[i] / corr1;
                let v_hat = st.v_b[i] / corr2;
                layer.bias[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_problem() -> (Mlp, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new(&[2, 12, 2], &mut rng);
        let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let labels = vec![0usize, 1, 1, 0];
        (mlp, x, labels)
    }

    fn train_to_convergence(opt: &mut dyn Optimizer, steps: usize) -> (f32, f32) {
        let (mut mlp, x, labels) = toy_problem();
        let (initial, _) = mlp.loss_and_grads(&x, &labels);
        for _ in 0..steps {
            let (_, grads) = mlp.loss_and_grads(&x, &labels);
            opt.step(&mut mlp, &grads);
        }
        let (final_loss, _) = mlp.loss_and_grads(&x, &labels);
        (initial, final_loss)
    }

    #[test]
    fn sgd_converges() {
        let mut opt = Sgd::new(0.5);
        let (initial, final_loss) = train_to_convergence(&mut opt, 500);
        assert!(final_loss < initial / 5.0, "{initial} → {final_loss}");
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain() {
        let mut plain = Sgd::new(0.1);
        let mut momentum = Sgd::with_momentum(0.1, 0.9);
        let (_, plain_loss) = train_to_convergence(&mut plain, 150);
        let (_, momentum_loss) = train_to_convergence(&mut momentum, 150);
        assert!(
            momentum_loss < plain_loss,
            "momentum {momentum_loss} !< plain {plain_loss}"
        );
    }

    #[test]
    fn adam_converges_with_paper_lr() {
        let mut opt = Adam::new(0.01);
        let (initial, final_loss) = train_to_convergence(&mut opt, 500);
        assert!(final_loss < initial / 5.0, "{initial} → {final_loss}");
    }

    #[test]
    fn adam_bias_correction_first_step_bounded() {
        // After one step with gradient g, Adam's update ≈ lr·sign(g); ensure
        // no blow-up from uncorrected moments.
        let (mut mlp, x, labels) = toy_problem();
        let before = mlp.layers[0].weight.clone();
        let mut opt = Adam::new(0.001);
        let (_, grads) = mlp.loss_and_grads(&x, &labels);
        opt.step(&mut mlp, &grads);
        let mut max_delta = 0.0f32;
        for (a, b) in mlp.layers[0].weight.data().iter().zip(before.data()) {
            max_delta = max_delta.max((a - b).abs());
        }
        assert!(max_delta <= 0.0011, "first Adam step moved {max_delta}");
    }

    #[test]
    fn optimizers_leave_shapes_intact() {
        let (mut mlp, x, labels) = toy_problem();
        let dims = mlp.dims();
        let mut opt = Adam::new(0.001);
        let (_, grads) = mlp.loss_and_grads(&x, &labels);
        opt.step(&mut mlp, &grads);
        assert_eq!(mlp.dims(), dims);
    }
}
