//! Dense row-major f32 matrices/vectors with the operations an MLP needs.
//!
//! The matmul kernels are register-blocked over the k dimension with the
//! transposed-B variant (`matmul_nt`) as the hot path, since layer weights
//! are stored row-per-neuron.

use rand::Rng;

/// A dense row-major tensor of rank 1 or 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Zero-filled `rows × cols` tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Builds from a flat row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} != {}×{}",
            data.len(),
            rows,
            cols
        );
        Tensor { data, rows, cols }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Tensor {
        let cols = data.len();
        Tensor {
            data,
            rows: 1,
            cols,
        }
    }

    /// Gaussian-initialized tensor with the given standard deviation.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Tensor {
        // Box–Muller from the uniform generator; avoids needing rand_distr.
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < rows * cols {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat immutable view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable row view.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row view.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other`: (m,k) × (k,n) → (m,n).
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        // ikj loop order: streams through `other` rows, cache-friendly.
        for i in 0..m {
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for kk in 0..k {
                let a = self.data[i * k + kk];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ other.T`: (m,k) × (n,k) → (m,n). The layer forward pass.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// `self.T @ other`: (k,m) × (k,n) → (m,n). The weight-gradient pass.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise addition into self: `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.data.len(), other.data.len(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Scales every element.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Index of the maximum element in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                for (i, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Row-wise softmax (numerically stabilized).
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            denom += *v;
        }
        for v in row.iter_mut() {
            *v /= denom;
        }
    }
    out
}

/// Mean cross-entropy of `logits` against integer `labels`, together with
/// the gradient w.r.t. the logits (softmax − one-hot, scaled by 1/batch).
pub fn cross_entropy_with_grad(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.rows(), labels.len(), "label count mismatch");
    let probs = softmax_rows(logits);
    let batch = logits.rows() as f32;
    let mut loss = 0.0;
    let mut grad = probs.clone();
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < logits.cols(), "label {y} out of range");
        loss -= probs.get(r, y).max(1e-12).ln();
        let g = grad.get(r, y);
        grad.set(r, y, g - 1.0);
    }
    grad.scale(1.0 / batch);
    (loss / batch, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, vals.to_vec())
    }

    #[test]
    fn matmul_known() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(4, 7, 1.0, &mut rng);
        let b = Tensor::randn(5, 7, 1.0, &mut rng);
        let direct = a.matmul_nt(&b);
        let via_t = a.matmul(&b.transpose());
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_transpose_matmul() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn(6, 3, 1.0, &mut rng);
        let b = Tensor::randn(6, 4, 1.0, &mut rng);
        let direct = a.matmul_tn(&b);
        let via_t = a.transpose().matmul(&b);
        for (x, y) in direct.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(3, 8, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_broadcast() {
        let mut a = Tensor::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.data(), &[1., 2., 1., 2., 1., 2.]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = t(2, 3, &[1., 2., 3., -1., 0., 1.]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone in logits.
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_handles_large_logits() {
        let logits = t(1, 2, &[1000.0, 1001.0]);
        let p = softmax_rows(&logits);
        assert!(p.get(0, 1) > p.get(0, 0));
        assert!(p.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_perfect_prediction_low_loss() {
        let logits = t(1, 3, &[100.0, 0.0, 0.0]);
        let (loss, _) = cross_entropy_with_grad(&logits, &[0]);
        assert!(loss < 1e-6);
        let (bad_loss, _) = cross_entropy_with_grad(&logits, &[1]);
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = t(2, 3, &[0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy_with_grad(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[idx] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[idx] -= eps;
            let (lp, _) = cross_entropy_with_grad(&plus, &labels);
            let (lm, _) = cross_entropy_with_grad(&minus, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad.data()[idx] - numeric).abs() < 1e-3,
                "idx {idx}: analytic {} vs numeric {numeric}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn argmax_rows_works() {
        let a = t(2, 3, &[0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::randn(100, 100, 2.0, &mut rng);
        let mean = x.sum() / x.len() as f32;
        let var: f32 = x
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / x.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[10., 10., 10.]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6., 7., 8.]);
        a.scale(2.0);
        assert_eq!(a.data(), &[12., 14., 16.]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        let _ = a.matmul(&b);
    }
}
