//! MLP layers with explicit forward/backward passes, matching the paper's
//! experimental network: three fully-connected layers (784, 100, 10) with
//! ReLU activations.

use crate::tensor::{cross_entropy_with_grad, softmax_rows, Tensor};
use rand::Rng;

/// A fully-connected layer `y = x Wᵀ + b` with weights stored one row per
/// output neuron — the layout PFNM's neuron matching operates on.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weights, shape (out, in).
    pub weight: Tensor,
    /// Bias, length `out`.
    pub bias: Vec<f32>,
}

impl Linear {
    /// He-initialized layer (appropriate for ReLU networks).
    pub fn new_he(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Linear {
        let std = (2.0 / in_dim as f32).sqrt();
        Linear {
            weight: Tensor::randn(out_dim, in_dim, std, rng),
            bias: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Output dimension (neuron count).
    pub fn out_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Forward pass: `x` is (batch, in) → (batch, out).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut y = x.matmul_nt(&self.weight);
        y.add_row_broadcast(&self.bias);
        y
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// Gradients for one linear layer.
#[derive(Debug, Clone)]
pub struct LinearGrad {
    /// dL/dW, shape (out, in).
    pub weight: Tensor,
    /// dL/db, length `out`.
    pub bias: Vec<f32>,
}

/// A multi-layer perceptron: Linear → ReLU → … → Linear (logits).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// The linear layers; ReLU is applied between consecutive layers.
    pub layers: Vec<Linear>,
}

/// Cached activations from a forward pass, consumed by backward.
pub struct ForwardCache {
    /// Input and post-activation outputs of each layer (len = layers + 1).
    activations: Vec<Tensor>,
    /// Pre-activation outputs of each hidden layer.
    pre_activations: Vec<Tensor>,
    /// Final logits.
    pub logits: Tensor,
}

impl Mlp {
    /// Builds an MLP with the given layer dimensions, e.g. `[784, 100, 10]`.
    pub fn new(dims: &[usize], rng: &mut impl Rng) -> Mlp {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new_he(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Layer dimensions, e.g. `[784, 100, 10]`.
    pub fn dims(&self) -> Vec<usize> {
        let mut dims = vec![self.layers[0].in_dim()];
        dims.extend(self.layers.iter().map(Linear::out_dim));
        dims
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Inference forward pass: returns logits.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            cur = layer.forward(&cur);
            if i + 1 < self.layers.len() {
                cur.map_inplace(|v| v.max(0.0));
            }
        }
        cur
    }

    /// Class probabilities.
    pub fn predict_proba(&self, x: &Tensor) -> Tensor {
        softmax_rows(&self.forward(x))
    }

    /// Hard class predictions.
    pub fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.forward(x).argmax_rows()
    }

    /// Classification accuracy on `(x, labels)`.
    pub fn accuracy(&self, x: &Tensor, labels: &[usize]) -> f64 {
        let preds = self.predict(x);
        let correct = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        correct as f64 / labels.len().max(1) as f64
    }

    /// Forward pass that keeps the activations needed for backward.
    pub fn forward_cached(&self, x: &Tensor) -> ForwardCache {
        let mut activations = vec![x.clone()];
        let mut pre_activations = Vec::new();
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(&cur);
            if i + 1 < self.layers.len() {
                pre_activations.push(pre.clone());
                let mut act = pre;
                act.map_inplace(|v| v.max(0.0));
                activations.push(act.clone());
                cur = act;
            } else {
                cur = pre;
            }
        }
        ForwardCache {
            activations,
            pre_activations,
            logits: cur,
        }
    }

    /// Backward pass from a loss gradient on the logits. Returns per-layer
    /// gradients, outermost layer last (same order as `self.layers`).
    pub fn backward(&self, cache: &ForwardCache, grad_logits: &Tensor) -> Vec<LinearGrad> {
        let n = self.layers.len();
        let mut grads: Vec<Option<LinearGrad>> = (0..n).map(|_| None).collect();
        let mut delta = grad_logits.clone(); // (batch, out_n)
        for i in (0..n).rev() {
            let input = &cache.activations[i]; // (batch, in_i)
                                               // dW = deltaᵀ @ input; db = column sums of delta.
            let dw = delta.matmul_tn(input);
            let mut db = vec![0.0f32; self.layers[i].out_dim()];
            for r in 0..delta.rows() {
                for (b, &d) in db.iter_mut().zip(delta.row(r)) {
                    *b += d;
                }
            }
            grads[i] = Some(LinearGrad {
                weight: dw,
                bias: db,
            });
            if i > 0 {
                // dX = delta @ W, then gate through the ReLU derivative.
                let mut dx = delta.matmul(&self.layers[i].weight);
                let pre = &cache.pre_activations[i - 1];
                for (g, &p) in dx.data_mut().iter_mut().zip(pre.data()) {
                    if p <= 0.0 {
                        *g = 0.0;
                    }
                }
                delta = dx;
            }
        }
        grads.into_iter().map(|g| g.expect("filled")).collect()
    }

    /// One training step on a batch: forward, cross-entropy, backward.
    /// Returns `(loss, grads)` so the optimizer can apply the update.
    pub fn loss_and_grads(&self, x: &Tensor, labels: &[usize]) -> (f32, Vec<LinearGrad>) {
        let cache = self.forward_cached(x);
        let (loss, grad_logits) = cross_entropy_with_grad(&cache.logits, labels);
        let grads = self.backward(&cache, &grad_logits);
        (loss, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dims_and_param_count_match_paper_network() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[784, 100, 10], &mut rng);
        assert_eq!(mlp.dims(), vec![784, 100, 10]);
        // 784·100 + 100 + 100·10 + 10 = 79 510 params ≈ 317 KB as f32 —
        // exactly the model size reported in the paper's §4.4.
        assert_eq!(mlp.param_count(), 79_510);
        assert_eq!(mlp.param_count() * 4, 318_040);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mlp = Mlp::new(&[8, 5, 3], &mut rng);
        let x = Tensor::zeros(4, 8);
        let y = mlp.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 3));
        let p = mlp.predict_proba(&x);
        for r in 0..4 {
            assert!((p.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[4, 6, 3], &mut rng);
        let x = Tensor::randn(5, 4, 1.0, &mut rng);
        let labels = vec![0usize, 1, 2, 1, 0];
        let (_, grads) = mlp.loss_and_grads(&x, &labels);
        let eps = 1e-2;
        // Spot-check a handful of weight coordinates in every layer. The
        // index drives both `mlp.layers` (mutated) and `grads` (read), so a
        // range loop is the honest shape here.
        #[allow(clippy::needless_range_loop)]
        for li in 0..mlp.layers.len() {
            for &(r, c) in &[(0usize, 0usize), (1, 2), (2, 3)] {
                if r >= mlp.layers[li].weight.rows() || c >= mlp.layers[li].weight.cols() {
                    continue;
                }
                let orig = mlp.layers[li].weight.get(r, c);
                mlp.layers[li].weight.set(r, c, orig + eps);
                let (lp, _) = mlp.loss_and_grads(&x, &labels);
                mlp.layers[li].weight.set(r, c, orig - eps);
                let (lm, _) = mlp.loss_and_grads(&x, &labels);
                mlp.layers[li].weight.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grads[li].weight.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 2e-2,
                    "layer {li} w[{r},{c}]: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn bias_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut mlp = Mlp::new(&[3, 4, 2], &mut rng);
        let x = Tensor::randn(6, 3, 1.0, &mut rng);
        let labels = vec![0usize, 1, 0, 1, 0, 1];
        let (_, grads) = mlp.loss_and_grads(&x, &labels);
        let eps = 1e-2;
        #[allow(clippy::needless_range_loop)]
        for li in 0..mlp.layers.len() {
            for bi in 0..mlp.layers[li].bias.len().min(2) {
                let orig = mlp.layers[li].bias[bi];
                mlp.layers[li].bias[bi] = orig + eps;
                let (lp, _) = mlp.loss_and_grads(&x, &labels);
                mlp.layers[li].bias[bi] = orig - eps;
                let (lm, _) = mlp.loss_and_grads(&x, &labels);
                mlp.layers[li].bias[bi] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grads[li].bias[bi]).abs() < 2e-2,
                    "layer {li} b[{bi}]"
                );
            }
        }
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mlp = Mlp::new(&[2, 16, 2], &mut rng);
        // XOR-ish separable data.
        let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let labels = vec![0usize, 1, 1, 0];
        let (initial, _) = mlp.loss_and_grads(&x, &labels);
        for _ in 0..400 {
            let (_, grads) = mlp.loss_and_grads(&x, &labels);
            for (layer, g) in mlp.layers.iter_mut().zip(&grads) {
                layer.weight.axpy(-0.5, &g.weight);
                for (b, &gb) in layer.bias.iter_mut().zip(&g.bias) {
                    *b -= 0.5 * gb;
                }
            }
        }
        let (final_loss, _) = mlp.loss_and_grads(&x, &labels);
        assert!(
            final_loss < initial / 4.0,
            "loss {initial} → {final_loss} did not shrink enough"
        );
        assert_eq!(mlp.accuracy(&x, &labels), 1.0);
    }

    #[test]
    fn accuracy_bounds() {
        let mut rng = StdRng::seed_from_u64(10);
        let mlp = Mlp::new(&[4, 8, 3], &mut rng);
        let x = Tensor::randn(30, 4, 1.0, &mut rng);
        let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let acc = mlp.accuracy(&x, &labels);
        assert!((0.0..=1.0).contains(&acc));
    }
}
