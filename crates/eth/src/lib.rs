//! # ofl-eth
//!
//! An Ethereum-like blockchain simulator built from scratch for the OFL-W3
//! reproduction. It stands in for the Sepolia testnet the paper runs on:
//!
//! - [`secp256k1`]: curve arithmetic, ECDSA with RFC-6979 nonces, and
//!   public-key recovery (`ecrecover`).
//! - [`tx`]: EIP-1559 transactions — signing hashes, RLP envelopes, sender
//!   recovery, CREATE address derivation.
//! - [`gas`]: the Yellow-Paper gas schedule subset and intrinsic gas.
//! - [`evm`]: a metered EVM interpreter (arithmetic, control flow, memory,
//!   storage with warm/cold pricing, logs).
//! - [`asm`]: an EVM assembler with labels, used to author contracts.
//! - [`contracts`]: the `CidStorage` contract from the paper's Fig 2, plus a
//!   typed Rust client.
//! - [`state`]: the account/world state with snapshot rollback.
//! - [`block`] / [`chain`]: receipts, bloom filters, the mempool, PoA block
//!   production on 12-second slots, and EIP-1559 base-fee dynamics.
//! - [`wallet`]: the MetaMask analogue — seed-derived keys, fee summaries,
//!   sign-and-broadcast.
//!
//! ## Example
//!
//! ```
//! use ofl_eth::chain::{Chain, ChainConfig};
//! use ofl_eth::contracts::{cid_storage_init_code, CidStorage};
//! use ofl_eth::wallet::Wallet;
//! use ofl_primitives::u256::U256;
//! use ofl_primitives::wei_per_eth;
//!
//! let wallet = Wallet::from_seed("quickstart", 1);
//! let owner = wallet.addresses()[0];
//! let mut chain = Chain::new(ChainConfig::default(), &[(owner, wei_per_eth())]);
//!
//! // Deploy CidStorage, upload a CID, read it back for free.
//! let hash = wallet
//!     .send(&mut chain, &owner, None, U256::ZERO, cid_storage_init_code())
//!     .unwrap();
//! chain.mine_block(12);
//! let contract = CidStorage::at(chain.receipt(&hash).unwrap().contract_address.unwrap());
//! wallet
//!     .send(
//!         &mut chain,
//!         &owner,
//!         Some(contract.address),
//!         U256::ZERO,
//!         CidStorage::upload_cid_calldata("QmExample"),
//!     )
//!     .unwrap();
//! chain.mine_block(24);
//! assert_eq!(contract.all_cids(&chain, &owner).unwrap(), vec!["QmExample"]);
//! ```

#![forbid(unsafe_code)]

pub mod abi;
pub mod asm;
pub mod block;
pub mod chain;
pub mod contracts;
pub mod evm;
pub mod gas;
pub mod secp256k1;
pub mod state;
pub mod tx;
pub mod wallet;

pub use chain::{Chain, ChainConfig};
pub use contracts::CidStorage;
pub use wallet::{TxEnv, Wallet};
