//! The OFL-W3 smart contracts, authored in EVM assembly.
//!
//! [`cid_storage_runtime`] reproduces the `CidStorage` contract from Fig 2 of
//! the paper with solc-compatible ABI and storage layout:
//!
//! ```solidity
//! pragma solidity ^0.8.7;
//! contract CidStorage {
//!     uint256 public cidCount;                      // slot 0
//!     mapping(uint256 => string) cids;              // slot 1
//!     event CidUploaded(string cid);
//!     function uploadCid(string memory cid) public {
//!         cids[cidCount] = cid;
//!         cidCount++;
//!         emit CidUploaded(cid);
//!     }
//!     function getCid(uint256 index) public view returns (string memory) {
//!         require(index < cidCount, "Invalid CID index");
//!         return cids[index];
//!     }
//! }
//! ```
//!
//! Strings use Solidity's storage encoding: values ≤ 31 bytes pack into the
//! main slot with `2·len` in the low byte; longer values store `2·len + 1`
//! in the main slot and the payload at `keccak256(main_slot)` onward.

use crate::abi::{self, Type, Value};
use crate::asm::{assemble, deployment_code, Op};
use crate::chain::{CallResult, Chain};
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};

/// Canonical signature of the upload function.
pub const UPLOAD_CID_SIG: &str = "uploadCid(string)";
/// Canonical signature of the indexed read.
pub const GET_CID_SIG: &str = "getCid(uint256)";
/// Canonical signature of the counter read.
pub const CID_COUNT_SIG: &str = "cidCount()";
/// Canonical signature of the upload event.
pub const CID_UPLOADED_EVENT: &str = "CidUploaded(string)";

/// Builds the CidStorage runtime bytecode.
pub fn cid_storage_runtime() -> Vec<u8> {
    use Op::*;
    let sel_upload = U256::from_be_slice(&abi::selector(UPLOAD_CID_SIG));
    let sel_getcid = U256::from_be_slice(&abi::selector(GET_CID_SIG));
    let sel_count = U256::from_be_slice(&abi::selector(CID_COUNT_SIG));
    let topic = U256::from_be_bytes(&abi::event_topic(CID_UPLOADED_EVENT));

    // Memory map: 0x00–0x3f hashing scratch; 0x40 slot_main; 0x60 len/index;
    // 0x80 calldata payload position; 0xa0 saved count; 0xc0 data_slot;
    // 0xe0 loop counter; 0x100+ return/log staging.
    let program: Vec<Op> = vec![
        // Non-payable guard.
        CallValue,
        PushLabel("revert"),
        JumpI,
        // Selector dispatch.
        Push(U256::ZERO),
        CallDataLoad,
        Push(U256::from(224u64)),
        Shr,
        Dup(1),
        Push(sel_upload),
        Eq,
        PushLabel("fn_upload"),
        JumpI,
        Dup(1),
        Push(sel_getcid),
        Eq,
        PushLabel("fn_getcid"),
        JumpI,
        Dup(1),
        Push(sel_count),
        Eq,
        PushLabel("fn_count"),
        JumpI,
        Label("revert"),
        Push(U256::ZERO),
        Push(U256::ZERO),
        Revert,
        //
        // cidCount() → uint256
        //
        Label("fn_count"),
        Pop,
        Push(U256::ZERO),
        SLoad,
        Push(U256::ZERO),
        MStore,
        Push(U256::from(0x20u64)),
        Push(U256::ZERO),
        Return,
        //
        // uploadCid(string)
        //
        Label("fn_upload"),
        Pop,
        // count = SLOAD(0); mem[0xa0] = count
        Push(U256::ZERO),
        SLoad,
        Dup(1),
        Push(U256::from(0xa0u64)),
        MStore,
        // slot_main = keccak256(count ‖ 1); mem[0x40] = slot_main
        Push(U256::ZERO),
        MStore,
        Push(U256::ONE),
        Push(U256::from(0x20u64)),
        MStore,
        Push(U256::from(0x40u64)),
        Push(U256::ZERO),
        Keccak256,
        Push(U256::from(0x40u64)),
        MStore,
        // off = calldataload(4); len_pos = 4 + off
        Push(U256::from(4u64)),
        CallDataLoad,
        Push(U256::from(4u64)),
        Add,
        // len = calldataload(len_pos); mem[0x60] = len
        Dup(1),
        CallDataLoad,
        Dup(1),
        Push(U256::from(0x60u64)),
        MStore,
        // data_pos = len_pos + 32; mem[0x80] = data_pos  (stack: [len_pos, len])
        Swap(1),
        Push(U256::from(0x20u64)),
        Add,
        Push(U256::from(0x80u64)),
        MStore,
        Pop, // drop len copy; everything is in memory now
        // if len < 32 → short string
        Push(U256::from(0x20u64)),
        Push(U256::from(0x60u64)),
        MLoad,
        Lt,
        PushLabel("upload_short"),
        JumpI,
        // Long path: SSTORE(slot_main, 2·len + 1)
        Push(U256::from(0x60u64)),
        MLoad,
        Push(U256::from(2u64)),
        Mul,
        Push(U256::ONE),
        Add,
        Push(U256::from(0x40u64)),
        MLoad,
        SStore,
        // data_slot = keccak256(slot_main); mem[0xc0] = data_slot
        Push(U256::from(0x40u64)),
        MLoad,
        Push(U256::ZERO),
        MStore,
        Push(U256::from(0x20u64)),
        Push(U256::ZERO),
        Keccak256,
        Push(U256::from(0xc0u64)),
        MStore,
        // i = 0
        Push(U256::ZERO),
        Push(U256::from(0xe0u64)),
        MStore,
        Label("upload_loop"),
        // while (i·32 < len)
        Push(U256::from(0x60u64)),
        MLoad,
        Push(U256::from(0xe0u64)),
        MLoad,
        Push(U256::from(0x20u64)),
        Mul,
        Lt,
        IsZero,
        PushLabel("upload_fin"),
        JumpI,
        // SSTORE(data_slot + i, calldataload(data_pos + i·32))
        Push(U256::from(0x80u64)),
        MLoad,
        Push(U256::from(0xe0u64)),
        MLoad,
        Push(U256::from(0x20u64)),
        Mul,
        Add,
        CallDataLoad,
        Push(U256::from(0xc0u64)),
        MLoad,
        Push(U256::from(0xe0u64)),
        MLoad,
        Add,
        SStore,
        // i += 1
        Push(U256::from(0xe0u64)),
        MLoad,
        Push(U256::ONE),
        Add,
        Push(U256::from(0xe0u64)),
        MStore,
        PushLabel("upload_loop"),
        Jump,
        // Short path: SSTORE(slot_main, data | 2·len)
        Label("upload_short"),
        Push(U256::from(0x80u64)),
        MLoad,
        CallDataLoad,
        Push(U256::from(0x60u64)),
        MLoad,
        Push(U256::from(2u64)),
        Mul,
        Or,
        Push(U256::from(0x40u64)),
        MLoad,
        SStore,
        // fallthrough to fin
        Label("upload_fin"),
        // cidCount = count + 1
        Push(U256::from(0xa0u64)),
        MLoad,
        Push(U256::ONE),
        Add,
        Push(U256::ZERO),
        SStore,
        // emit CidUploaded(cid): log the ABI-encoded args region verbatim.
        Push(U256::from(4u64)),
        CallDataSize,
        Sub, // args_len = calldatasize − 4
        Dup(1),
        Push(U256::from(4u64)),
        Push(U256::from(0x100u64)),
        CallDataCopy, // memcpy(0x100, calldata[4..], args_len)
        PushN(32, topic),
        Swap(1),
        Push(U256::from(0x100u64)),
        Log(1),
        Stop,
        //
        // getCid(uint256) → string
        //
        Label("fn_getcid"),
        Pop,
        // require(index < cidCount)
        Push(U256::ZERO),
        SLoad,
        Push(U256::from(4u64)),
        CallDataLoad,
        Dup(1),
        Push(U256::from(0x60u64)),
        MStore,
        Lt,
        PushLabel("getcid_ok"),
        JumpI,
        Push(U256::ZERO),
        Push(U256::ZERO),
        Revert,
        Label("getcid_ok"),
        // slot_main = keccak256(index ‖ 1)
        Push(U256::from(0x60u64)),
        MLoad,
        Push(U256::ZERO),
        MStore,
        Push(U256::ONE),
        Push(U256::from(0x20u64)),
        MStore,
        Push(U256::from(0x40u64)),
        Push(U256::ZERO),
        Keccak256,
        Dup(1),
        Push(U256::from(0x40u64)),
        MStore,
        SLoad, // v = SLOAD(slot_main)
        Dup(1),
        Push(U256::ONE),
        And,
        PushLabel("getcid_long"),
        JumpI,
        // Short string: len = (v & 0xff) >> 1, payload = v & ~0xff.
        Dup(1),
        Push(U256::from(0xffu64)),
        And,
        Push(U256::ONE),
        Shr,
        Push(U256::from(0x20u64)),
        Push(U256::from(0x100u64)),
        MStore, // mem[0x100] = 0x20 (abi offset)
        Push(U256::from(0x120u64)),
        MStore, // mem[0x120] = len
        Push(U256::from(0xffu64)),
        Not,
        And,
        Push(U256::from(0x140u64)),
        MStore, // mem[0x140] = payload word
        Push(U256::from(0x60u64)),
        Push(U256::from(0x100u64)),
        Return,
        Label("getcid_long"),
        // len = v >> 1
        Push(U256::ONE),
        Shr,
        Dup(1),
        Push(U256::from(0x120u64)),
        MStore,
        Push(U256::from(0x20u64)),
        Push(U256::from(0x100u64)),
        MStore,
        // data_slot = keccak256(slot_main); mem[0xc0] = data_slot
        Push(U256::from(0x40u64)),
        MLoad,
        Push(U256::ZERO),
        MStore,
        Push(U256::from(0x20u64)),
        Push(U256::ZERO),
        Keccak256,
        Push(U256::from(0xc0u64)),
        MStore,
        Push(U256::ZERO),
        Push(U256::from(0xe0u64)),
        MStore,
        Label("getcid_loop"),
        // while (i·32 < len): stack holds [len] throughout
        Dup(1),
        Push(U256::from(0xe0u64)),
        MLoad,
        Push(U256::from(0x20u64)),
        Mul,
        Lt,
        IsZero,
        PushLabel("getcid_done"),
        JumpI,
        // mem[0x140 + i·32] = SLOAD(data_slot + i)
        Push(U256::from(0xc0u64)),
        MLoad,
        Push(U256::from(0xe0u64)),
        MLoad,
        Add,
        SLoad,
        Push(U256::from(0xe0u64)),
        MLoad,
        Push(U256::from(0x20u64)),
        Mul,
        Push(U256::from(0x140u64)),
        Add,
        MStore,
        Push(U256::from(0xe0u64)),
        MLoad,
        Push(U256::ONE),
        Add,
        Push(U256::from(0xe0u64)),
        MStore,
        PushLabel("getcid_loop"),
        Jump,
        Label("getcid_done"),
        // return(0x100, 0x40 + ceil32(len))
        Push(U256::from(31u64)),
        Add,
        Push(U256::from(0x20u64)),
        Swap(1),
        Div,
        Push(U256::from(0x20u64)),
        Mul,
        Push(U256::from(0x40u64)),
        Add,
        Push(U256::from(0x100u64)),
        Return,
    ];
    assemble(&program).expect("CidStorage program assembles")
}

/// The deployable init code for CidStorage.
pub fn cid_storage_init_code() -> Vec<u8> {
    deployment_code(&cid_storage_runtime())
}

/// Typed client for a deployed CidStorage contract: encodes calls, decodes
/// results, and reads via free `eth_call`s.
#[derive(Debug, Clone, Copy)]
pub struct CidStorage {
    /// Deployed contract address.
    pub address: H160,
}

impl CidStorage {
    /// Wraps an already-deployed address.
    pub fn at(address: H160) -> CidStorage {
        CidStorage { address }
    }

    /// Calldata for `uploadCid(cid)` — submitted as a transaction.
    pub fn upload_cid_calldata(cid: &str) -> Vec<u8> {
        abi::encode_call(UPLOAD_CID_SIG, &[Value::String(cid.to_string())])
    }

    /// Reads `cidCount()` (free).
    pub fn cid_count(&self, chain: &Chain, from: &H160) -> Result<u64, ContractError> {
        let result = chain.call(from, &self.address, abi::encode_call(CID_COUNT_SIG, &[]));
        let values = decode_ok(&result, &[Type::Uint])?;
        values[0]
            .as_uint()
            .and_then(|u| u.to_u64())
            .ok_or(ContractError::BadReturnData)
    }

    /// Reads `getCid(index)` (free).
    pub fn get_cid(&self, chain: &Chain, from: &H160, index: u64) -> Result<String, ContractError> {
        let data = abi::encode_call(GET_CID_SIG, &[Value::Uint(U256::from(index))]);
        let result = chain.call(from, &self.address, data);
        let values = decode_ok(&result, &[Type::String])?;
        values[0]
            .as_string()
            .map(str::to_string)
            .ok_or(ContractError::BadReturnData)
    }

    /// Reads every stored CID (free), in upload order.
    pub fn all_cids(&self, chain: &Chain, from: &H160) -> Result<Vec<String>, ContractError> {
        let n = self.cid_count(chain, from)?;
        (0..n).map(|i| self.get_cid(chain, from, i)).collect()
    }

    /// The topic hash a `CidUploaded` log carries.
    pub fn uploaded_topic() -> H256 {
        H256::from_bytes(abi::event_topic(CID_UPLOADED_EVENT))
    }
}

/// Errors from contract interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContractError {
    /// The call reverted.
    Reverted,
    /// Return data did not decode as expected.
    BadReturnData,
}

impl core::fmt::Display for ContractError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ContractError::Reverted => write!(f, "contract call reverted"),
            ContractError::BadReturnData => write!(f, "contract returned malformed data"),
        }
    }
}

impl std::error::Error for ContractError {}

fn decode_ok(result: &CallResult, types: &[Type]) -> Result<Vec<Value>, ContractError> {
    if !result.success {
        return Err(ContractError::Reverted);
    }
    abi::decode(types, &result.output).map_err(|_| ContractError::BadReturnData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Chain, ChainConfig};
    use crate::secp256k1;
    use crate::tx::{sign_tx, TxRequest};
    use ofl_primitives::wei_per_eth;

    struct Fixture {
        chain: Chain,
        contract: CidStorage,
        caller: H160,
        key: U256,
        time: u64,
    }

    impl Fixture {
        fn new() -> Fixture {
            let key = U256::from(0xabcdefu64);
            let caller = secp256k1::public_key(&key)
                .unwrap()
                .to_eth_address()
                .unwrap();
            let mut chain = Chain::new(
                ChainConfig::default(),
                &[(caller, wei_per_eth().wrapping_mul(&U256::from(10u64)))],
            );
            let req = TxRequest {
                chain_id: chain.config().chain_id,
                nonce: 0,
                max_priority_fee_per_gas: U256::from(1_500_000_000u64),
                max_fee_per_gas: U256::from(40_000_000_000u64),
                gas_limit: 1_000_000,
                to: None,
                value: U256::ZERO,
                data: cid_storage_init_code(),
            };
            let hash = chain.submit(sign_tx(req, &key).unwrap()).unwrap();
            chain.mine_block(12);
            let receipt = chain.receipt(&hash).unwrap();
            assert!(receipt.is_success(), "deploy failed: {:?}", receipt.status);
            let contract = CidStorage::at(receipt.contract_address.unwrap());
            Fixture {
                chain,
                contract,
                caller,
                key,
                time: 12,
            }
        }

        fn upload(&mut self, cid: &str) -> crate::block::Receipt {
            let req = TxRequest {
                chain_id: self.chain.config().chain_id,
                nonce: self.chain.nonce(&self.caller),
                max_priority_fee_per_gas: U256::from(1_500_000_000u64),
                max_fee_per_gas: U256::from(40_000_000_000u64),
                gas_limit: 300_000,
                to: Some(self.contract.address),
                value: U256::ZERO,
                data: CidStorage::upload_cid_calldata(cid),
            };
            let hash = self.chain.submit(sign_tx(req, &self.key).unwrap()).unwrap();
            self.time += 12;
            self.chain.mine_block(self.time);
            self.chain.receipt(&hash).unwrap().clone()
        }
    }

    #[test]
    fn starts_empty() {
        let f = Fixture::new();
        assert_eq!(f.contract.cid_count(&f.chain, &f.caller).unwrap(), 0);
        assert_eq!(
            f.contract.get_cid(&f.chain, &f.caller, 0),
            Err(ContractError::Reverted)
        );
    }

    #[test]
    fn upload_and_read_long_cid() {
        let mut f = Fixture::new();
        // 46-char CIDv0: long-string storage path.
        let cid = "QmYwAPJzv5CZsnA625s3Xf2nemtYgPpHdWEz79ojWnPbdG";
        let receipt = f.upload(cid);
        assert!(receipt.is_success());
        assert_eq!(f.contract.cid_count(&f.chain, &f.caller).unwrap(), 1);
        assert_eq!(f.contract.get_cid(&f.chain, &f.caller, 0).unwrap(), cid);
    }

    #[test]
    fn upload_and_read_short_cid() {
        let mut f = Fixture::new();
        // ≤31 bytes: short-string storage path.
        let cid = "short-cid-123";
        let receipt = f.upload(cid);
        assert!(receipt.is_success());
        assert_eq!(f.contract.get_cid(&f.chain, &f.caller, 0).unwrap(), cid);
    }

    #[test]
    fn exactly_32_byte_cid_uses_long_path() {
        let mut f = Fixture::new();
        let cid = "ab".repeat(16); // 32 bytes
        f.upload(&cid);
        assert_eq!(f.contract.get_cid(&f.chain, &f.caller, 0).unwrap(), cid);
    }

    #[test]
    fn multiple_uploads_keep_order() {
        let mut f = Fixture::new();
        let cids: Vec<String> = (0..10)
            .map(|i| format!("QmOwner{i:02}Model{}", "x".repeat(30)))
            .collect();
        for c in &cids {
            assert!(f.upload(c).is_success());
        }
        assert_eq!(f.contract.cid_count(&f.chain, &f.caller).unwrap(), 10);
        let all = f.contract.all_cids(&f.chain, &f.caller).unwrap();
        assert_eq!(all, cids);
    }

    #[test]
    fn event_emitted_with_topic_and_payload() {
        let mut f = Fixture::new();
        let cid = "QmEventCheck999";
        let receipt = f.upload(cid);
        assert_eq!(receipt.logs.len(), 1);
        let log = &receipt.logs[0];
        assert_eq!(log.address, f.contract.address);
        assert_eq!(log.topics, vec![CidStorage::uploaded_topic()]);
        // Data is the ABI-encoded string.
        let decoded = abi::decode(&[Type::String], &log.data).unwrap();
        assert_eq!(decoded[0].as_string().unwrap(), cid);
    }

    #[test]
    fn reads_cost_no_gas_and_mine_no_blocks() {
        let mut f = Fixture::new();
        f.upload("QmFree");
        let height = f.chain.height();
        let balance = f.chain.balance(&f.caller);
        for _ in 0..5 {
            f.contract.all_cids(&f.chain, &f.caller).unwrap();
        }
        assert_eq!(f.chain.height(), height);
        assert_eq!(f.chain.balance(&f.caller), balance);
    }

    #[test]
    fn sending_value_reverts() {
        let mut f = Fixture::new();
        let req = TxRequest {
            chain_id: f.chain.config().chain_id,
            nonce: f.chain.nonce(&f.caller),
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 300_000,
            to: Some(f.contract.address),
            value: U256::ONE,
            data: CidStorage::upload_cid_calldata("QmX"),
        };
        let hash = f.chain.submit(sign_tx(req, &f.key).unwrap()).unwrap();
        f.chain.mine_block(100);
        let receipt = f.chain.receipt(&hash).unwrap();
        assert_eq!(receipt.status, crate::block::TxStatus::Reverted);
        assert_eq!(f.contract.cid_count(&f.chain, &f.caller).unwrap(), 0);
    }

    #[test]
    fn unknown_selector_reverts() {
        let f = Fixture::new();
        let result = f
            .chain
            .call(&f.caller, &f.contract.address, vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(!result.success);
    }

    #[test]
    fn get_logs_finds_upload_events() {
        use crate::chain::LogFilter;
        let mut f = Fixture::new();
        let cids = [
            "QmFirstUploadEvent",
            "QmSecondUploadEvent",
            "QmThirdUploadEvent",
        ];
        for c in cids {
            f.upload(c);
        }
        // Filter by contract + event topic over the whole chain.
        let logs = f.chain.get_logs(
            &LogFilter::all()
                .at_address(f.contract.address)
                .with_topic(CidStorage::uploaded_topic()),
        );
        assert_eq!(logs.len(), 3);
        for (log, expected) in logs.iter().zip(cids) {
            let decoded = abi::decode(&[Type::String], &log.log.data).unwrap();
            assert_eq!(decoded[0].as_string().unwrap(), expected);
        }
        // Block numbers are increasing (one upload per block).
        assert!(logs
            .windows(2)
            .all(|w| w[0].block_number < w[1].block_number));
        // A topic that never fired matches nothing (bloom short-circuits).
        let none = f.chain.get_logs(
            &LogFilter::all()
                .at_address(f.contract.address)
                .with_topic(H256::from_bytes(abi::event_topic("Nope()"))),
        );
        assert!(none.is_empty());
        // Range restriction works, via the builder an incremental watcher
        // would use.
        let first_block = logs[0].block_number;
        let only_first = f.chain.get_logs(
            &LogFilter::all()
                .in_blocks(first_block, first_block)
                .at_address(f.contract.address),
        );
        assert_eq!(only_first.len(), 1);
        // A later window excludes the first upload.
        let rest = f.chain.get_logs(
            &LogFilter::all()
                .in_blocks(first_block + 1, f.chain.height())
                .at_address(f.contract.address),
        );
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn storage_layout_matches_solidity() {
        use ofl_primitives::keccak256;
        let mut f = Fixture::new();
        let cid = "QmYwAPJzv5CZsnA625s3Xf2nemtYgPpHdWEz79ojWnPbdG"; // 46 bytes
        f.upload(cid);
        // slot 0 = cidCount = 1
        assert_eq!(f.chain.storage(&f.contract.address, &H256::ZERO), U256::ONE);
        // main slot = keccak(uint256(0) ‖ uint256(1)) holds 2·46+1 = 93
        let mut preimage = [0u8; 64];
        preimage[63] = 1;
        let main_slot = H256::from_bytes(keccak256(&preimage));
        assert_eq!(
            f.chain.storage(&f.contract.address, &main_slot),
            U256::from(93u64)
        );
        // data at keccak(main_slot): first 32 bytes of the cid.
        let data_slot = H256::from_bytes(keccak256(main_slot.as_bytes()));
        let word = f.chain.storage(&f.contract.address, &data_slot);
        assert_eq!(&word.to_be_bytes()[..], cid.as_bytes()[..32].as_ref());
    }

    #[test]
    fn deployment_gas_in_paper_range() {
        // At the default ~12 gwei base fee + 1.5 gwei tip the deployment fee
        // must land near the paper's 0.002 ETH (Fig 5b). Allow a factor ~2.
        let key = U256::from(0x55u64);
        let caller = secp256k1::public_key(&key)
            .unwrap()
            .to_eth_address()
            .unwrap();
        let chain = Chain::new(ChainConfig::default(), &[(caller, wei_per_eth())]);
        let gas = chain.estimate_gas(&caller, None, &cid_storage_init_code());
        // ≈ 53k intrinsic + calldata + execution + 200/byte deposit.
        assert!(gas > 100_000, "gas {gas}");
        assert!(gas < 400_000, "gas {gas}");
    }
}
