//! World state: the account map (nonce, balance, code, storage) with
//! snapshot/rollback support for failed transactions.

use crate::evm::Host;
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};
use std::collections::HashMap;

/// One account's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Account {
    /// Transaction count for EOAs / creation count for contracts.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Contract runtime bytecode (empty for EOAs).
    pub code: Vec<u8>,
    /// Contract storage.
    pub storage: HashMap<H256, U256>,
}

impl Account {
    /// True iff this account has contract code.
    pub fn is_contract(&self) -> bool {
        !self.code.is_empty()
    }
}

/// Errors from balance mutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateError {
    /// Debit exceeds balance.
    InsufficientBalance,
    /// Balance overflow on credit (cannot happen with a sane genesis but
    /// checked anyway: wei accounting must never wrap).
    BalanceOverflow,
}

impl core::fmt::Display for StateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StateError::InsufficientBalance => write!(f, "insufficient balance"),
            StateError::BalanceOverflow => write!(f, "balance overflow"),
        }
    }
}

impl std::error::Error for StateError {}

/// The full world state.
#[derive(Debug, Clone, Default)]
pub struct State {
    accounts: HashMap<H160, Account>,
}

impl State {
    /// An empty state.
    pub fn new() -> State {
        State::default()
    }

    /// Read-only account access (zero-valued default view for absent
    /// accounts).
    pub fn account(&self, address: &H160) -> Option<&Account> {
        self.accounts.get(address)
    }

    /// Mutable account access, creating an empty account on first touch.
    pub fn account_mut(&mut self, address: &H160) -> &mut Account {
        self.accounts.entry(*address).or_default()
    }

    /// Balance (zero for absent accounts).
    pub fn balance(&self, address: &H160) -> U256 {
        self.accounts
            .get(address)
            .map(|a| a.balance)
            .unwrap_or(U256::ZERO)
    }

    /// Nonce (zero for absent accounts).
    pub fn nonce(&self, address: &H160) -> u64 {
        self.accounts.get(address).map(|a| a.nonce).unwrap_or(0)
    }

    /// Contract code (empty for absent accounts / EOAs).
    pub fn code(&self, address: &H160) -> &[u8] {
        self.accounts
            .get(address)
            .map(|a| a.code.as_slice())
            .unwrap_or(&[])
    }

    /// Credits `amount` wei.
    pub fn credit(&mut self, address: &H160, amount: &U256) -> Result<(), StateError> {
        let acct = self.account_mut(address);
        acct.balance = acct
            .balance
            .checked_add(amount)
            .ok_or(StateError::BalanceOverflow)?;
        Ok(())
    }

    /// Debits `amount` wei, failing if the balance is insufficient.
    pub fn debit(&mut self, address: &H160, amount: &U256) -> Result<(), StateError> {
        let acct = self.account_mut(address);
        acct.balance = acct
            .balance
            .checked_sub(amount)
            .ok_or(StateError::InsufficientBalance)?;
        Ok(())
    }

    /// Moves `amount` wei between accounts.
    pub fn transfer(&mut self, from: &H160, to: &H160, amount: &U256) -> Result<(), StateError> {
        self.debit(from, amount)?;
        self.credit(to, amount)
            .expect("credit cannot overflow after debit of same supply");
        Ok(())
    }

    /// Increments an account's nonce.
    pub fn bump_nonce(&mut self, address: &H160) {
        self.account_mut(address).nonce += 1;
    }

    /// Reads contract storage.
    pub fn storage(&self, address: &H160, key: &H256) -> U256 {
        self.accounts
            .get(address)
            .and_then(|a| a.storage.get(key))
            .copied()
            .unwrap_or(U256::ZERO)
    }

    /// Writes contract storage (deleting zero values to keep maps compact).
    pub fn set_storage(&mut self, address: &H160, key: &H256, value: U256) {
        let acct = self.account_mut(address);
        if value.is_zero() {
            acct.storage.remove(key);
        } else {
            acct.storage.insert(*key, value);
        }
    }

    /// Full snapshot for transaction-level rollback. Account maps at our
    /// scale are tiny (tens of entries), so a clone is simpler and safer
    /// than a journal.
    pub fn snapshot(&self) -> State {
        self.clone()
    }

    /// Total wei across all accounts (conservation checks in tests).
    pub fn total_supply(&self) -> U256 {
        let mut total = U256::ZERO;
        // lint: ordered-ok(checked_add is commutative and associative; the sum is order-independent)
        for acct in self.accounts.values() {
            total = total
                .checked_add(&acct.balance)
                .expect("total supply fits in U256");
        }
        total
    }

    /// Number of existing accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Iterates over all (address, account) pairs in address order, so
    /// callers can fold the walk into a digest without re-sorting.
    pub fn iter(&self) -> impl Iterator<Item = (&H160, &Account)> {
        let mut pairs: Vec<(&H160, &Account)> = self.accounts.iter().collect();
        pairs.sort_by_key(|(address, _)| **address);
        pairs.into_iter()
    }
}

impl Host for State {
    fn sload(&self, address: &H160, key: &H256) -> U256 {
        self.storage(address, key)
    }

    fn sstore(&mut self, address: &H160, key: &H256, value: U256) {
        self.set_storage(address, key, value);
    }

    fn balance(&self, address: &H160) -> U256 {
        State::balance(self, address)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> H160 {
        H160::from_slice(&[b; 20])
    }

    #[test]
    fn credit_debit_transfer() {
        let mut st = State::new();
        st.credit(&addr(1), &U256::from(100u64)).unwrap();
        st.transfer(&addr(1), &addr(2), &U256::from(40u64)).unwrap();
        assert_eq!(st.balance(&addr(1)), U256::from(60u64));
        assert_eq!(st.balance(&addr(2)), U256::from(40u64));
        assert_eq!(
            st.debit(&addr(2), &U256::from(41u64)),
            Err(StateError::InsufficientBalance)
        );
        assert_eq!(st.total_supply(), U256::from(100u64));
    }

    #[test]
    fn transfer_preserves_supply() {
        let mut st = State::new();
        st.credit(&addr(1), &U256::from_u128(10u128.pow(20)))
            .unwrap();
        for i in 2..10u8 {
            st.transfer(&addr(1), &addr(i), &U256::from(12345u64))
                .unwrap();
        }
        assert_eq!(st.total_supply(), U256::from_u128(10u128.pow(20)));
    }

    #[test]
    fn storage_zero_is_deleted() {
        let mut st = State::new();
        let key = H256::from_u256(&U256::ONE);
        st.set_storage(&addr(3), &key, U256::from(9u64));
        assert_eq!(st.storage(&addr(3), &key), U256::from(9u64));
        st.set_storage(&addr(3), &key, U256::ZERO);
        assert_eq!(st.storage(&addr(3), &key), U256::ZERO);
        assert!(st.account(&addr(3)).unwrap().storage.is_empty());
    }

    #[test]
    fn snapshot_rollback() {
        let mut st = State::new();
        st.credit(&addr(1), &U256::from(50u64)).unwrap();
        let snap = st.snapshot();
        st.debit(&addr(1), &U256::from(20u64)).unwrap();
        st.set_storage(&addr(1), &H256::ZERO, U256::ONE);
        st = snap;
        assert_eq!(st.balance(&addr(1)), U256::from(50u64));
        assert_eq!(st.storage(&addr(1), &H256::ZERO), U256::ZERO);
    }

    #[test]
    fn nonce_bump() {
        let mut st = State::new();
        assert_eq!(st.nonce(&addr(9)), 0);
        st.bump_nonce(&addr(9));
        st.bump_nonce(&addr(9));
        assert_eq!(st.nonce(&addr(9)), 2);
    }

    #[test]
    fn host_impl_delegates() {
        let mut st = State::new();
        let a = addr(5);
        let k = H256::from_u256(&U256::from(7u64));
        Host::sstore(&mut st, &a, &k, U256::from(11u64));
        assert_eq!(Host::sload(&st, &a, &k), U256::from(11u64));
        st.credit(&a, &U256::from(33u64)).unwrap();
        assert_eq!(Host::balance(&st, &a), U256::from(33u64));
    }
}
