//! A small EVM assembler with labels, used to author the OFL-W3 contracts
//! in readable mnemonics instead of raw bytes.
//!
//! Label references assemble to fixed-width `PUSH2` immediates so that a
//! single pass can lay out code and a second pass can patch destinations.

use ofl_primitives::u256::U256;

/// One assembly instruction.
#[derive(Debug, Clone)]
pub enum Op {
    // Terminators & control
    Stop,
    Return,
    Revert,
    Jump,
    JumpI,
    /// `JUMPDEST` carrying a label name.
    Label(&'static str),
    /// `PUSH2 <label address>` — patched in pass two.
    PushLabel(&'static str),

    // Arithmetic / logic
    Add,
    Mul,
    Sub,
    Div,
    Mod,
    Exp,
    Lt,
    Gt,
    Eq,
    IsZero,
    And,
    Or,
    Xor,
    Not,
    Byte,
    Shl,
    Shr,
    Keccak256,

    // Environment
    Address,
    Balance,
    Origin,
    Caller,
    CallValue,
    CallDataLoad,
    CallDataSize,
    CallDataCopy,
    CodeSize,
    CodeCopy,
    Timestamp,
    Number,
    ChainId,
    SelfBalance,

    // Stack / memory / storage
    Pop,
    MLoad,
    MStore,
    MStore8,
    SLoad,
    SStore,
    Pc,
    MSize,
    Gas,
    /// `PUSH1`–`PUSH32` of a constant (width chosen from the value).
    Push(U256),
    /// `PUSH` with an explicit byte width (1–32).
    PushN(u8, U256),
    /// `DUP1`–`DUP16`.
    Dup(u8),
    /// `SWAP1`–`SWAP16`.
    Swap(u8),
    /// `LOG0`–`LOG4`.
    Log(u8),
    /// Raw byte escape hatch.
    Raw(u8),
}

/// Errors from assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A `PushLabel` refers to a label that never appears.
    UnknownLabel(String),
    /// The same label appears twice.
    DuplicateLabel(String),
    /// Label address exceeds 16 bits (program too large for PUSH2 patching).
    ProgramTooLarge,
    /// Dup/Swap/Log depth out of range.
    BadOperand(&'static str),
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsmError::UnknownLabel(l) => write!(f, "unknown label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmError::ProgramTooLarge => write!(f, "program exceeds PUSH2-addressable size"),
            AsmError::BadOperand(what) => write!(f, "operand out of range for {what}"),
        }
    }
}

impl std::error::Error for AsmError {}

fn op_size(op: &Op) -> Result<usize, AsmError> {
    Ok(match op {
        Op::Label(_) => 1,
        Op::PushLabel(_) => 3, // PUSH2 + 2 bytes
        Op::Push(v) => {
            let bytes = push_width(v);
            1 + bytes
        }
        Op::PushN(n, _) => {
            if *n == 0 || *n > 32 {
                return Err(AsmError::BadOperand("PushN"));
            }
            1 + *n as usize
        }
        _ => 1,
    })
}

fn push_width(v: &U256) -> usize {
    let bits = v.bits().max(1);
    (bits as usize).div_ceil(8)
}

/// Assembles a program into bytecode.
pub fn assemble(ops: &[Op]) -> Result<Vec<u8>, AsmError> {
    // Pass 1: label layout.
    let mut labels = std::collections::HashMap::new();
    let mut offset = 0usize;
    for op in ops {
        if let Op::Label(name) = op {
            if labels.insert(*name, offset).is_some() {
                return Err(AsmError::DuplicateLabel(name.to_string()));
            }
        }
        offset += op_size(op)?;
    }
    if offset > u16::MAX as usize {
        return Err(AsmError::ProgramTooLarge);
    }

    // Pass 2: emission.
    let mut out = Vec::with_capacity(offset);
    for op in ops {
        match op {
            Op::Stop => out.push(0x00),
            Op::Add => out.push(0x01),
            Op::Mul => out.push(0x02),
            Op::Sub => out.push(0x03),
            Op::Div => out.push(0x04),
            Op::Mod => out.push(0x06),
            Op::Exp => out.push(0x0a),
            Op::Lt => out.push(0x10),
            Op::Gt => out.push(0x11),
            Op::Eq => out.push(0x14),
            Op::IsZero => out.push(0x15),
            Op::And => out.push(0x16),
            Op::Or => out.push(0x17),
            Op::Xor => out.push(0x18),
            Op::Not => out.push(0x19),
            Op::Byte => out.push(0x1a),
            Op::Shl => out.push(0x1b),
            Op::Shr => out.push(0x1c),
            Op::Keccak256 => out.push(0x20),
            Op::Address => out.push(0x30),
            Op::Balance => out.push(0x31),
            Op::Origin => out.push(0x32),
            Op::Caller => out.push(0x33),
            Op::CallValue => out.push(0x34),
            Op::CallDataLoad => out.push(0x35),
            Op::CallDataSize => out.push(0x36),
            Op::CallDataCopy => out.push(0x37),
            Op::CodeSize => out.push(0x38),
            Op::CodeCopy => out.push(0x39),
            Op::Timestamp => out.push(0x42),
            Op::Number => out.push(0x43),
            Op::ChainId => out.push(0x46),
            Op::SelfBalance => out.push(0x47),
            Op::Pop => out.push(0x50),
            Op::MLoad => out.push(0x51),
            Op::MStore => out.push(0x52),
            Op::MStore8 => out.push(0x53),
            Op::SLoad => out.push(0x54),
            Op::SStore => out.push(0x55),
            Op::Jump => out.push(0x56),
            Op::JumpI => out.push(0x57),
            Op::Pc => out.push(0x58),
            Op::MSize => out.push(0x59),
            Op::Gas => out.push(0x5a),
            Op::Label(_) => out.push(0x5b),
            Op::PushLabel(name) => {
                let addr = *labels
                    .get(name)
                    .ok_or_else(|| AsmError::UnknownLabel(name.to_string()))?;
                out.push(0x61); // PUSH2
                out.extend_from_slice(&(addr as u16).to_be_bytes());
            }
            Op::Push(v) => {
                let width = push_width(v);
                out.push(0x5f + width as u8);
                let bytes = v.to_be_bytes();
                out.extend_from_slice(&bytes[32 - width..]);
            }
            Op::PushN(n, v) => {
                out.push(0x5f + n);
                let bytes = v.to_be_bytes();
                out.extend_from_slice(&bytes[32 - *n as usize..]);
            }
            Op::Dup(n) => {
                if *n == 0 || *n > 16 {
                    return Err(AsmError::BadOperand("Dup"));
                }
                out.push(0x80 + n - 1);
            }
            Op::Swap(n) => {
                if *n == 0 || *n > 16 {
                    return Err(AsmError::BadOperand("Swap"));
                }
                out.push(0x90 + n - 1);
            }
            Op::Log(n) => {
                if *n > 4 {
                    return Err(AsmError::BadOperand("Log"));
                }
                out.push(0xa0 + n);
            }
            Op::Return => out.push(0xf3),
            Op::Revert => out.push(0xfd),
            Op::Raw(b) => out.push(*b),
        }
    }
    Ok(out)
}

/// Wraps runtime bytecode in a standard init-code stub that copies the
/// runtime to memory and returns it (what solc's constructor epilogue does).
pub fn deployment_code(runtime: &[u8]) -> Vec<u8> {
    // PUSH2 len PUSH2 offset PUSH1 0 CODECOPY PUSH2 len PUSH1 0 RETURN
    // offset = size of this stub (15 bytes).
    const STUB: usize = 15;
    let len = runtime.len() as u16;
    let off = STUB as u16;
    let mut out = Vec::with_capacity(STUB + runtime.len());
    out.push(0x61);
    out.extend_from_slice(&len.to_be_bytes());
    out.push(0x61);
    out.extend_from_slice(&off.to_be_bytes());
    out.push(0x60);
    out.push(0x00);
    out.push(0x39); // CODECOPY
    out.push(0x61);
    out.extend_from_slice(&len.to_be_bytes());
    out.push(0x60);
    out.push(0x00);
    out.push(0xf3); // RETURN
    debug_assert_eq!(out.len(), STUB);
    out.extend_from_slice(runtime);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_width_minimal() {
        assert_eq!(assemble(&[Op::Push(U256::ZERO)]).unwrap(), vec![0x60, 0x00]);
        assert_eq!(
            assemble(&[Op::Push(U256::from(0xffu64))]).unwrap(),
            vec![0x60, 0xff]
        );
        assert_eq!(
            assemble(&[Op::Push(U256::from(0x100u64))]).unwrap(),
            vec![0x61, 0x01, 0x00]
        );
        let max = assemble(&[Op::Push(U256::MAX)]).unwrap();
        assert_eq!(max[0], 0x7f);
        assert_eq!(max.len(), 33);
    }

    #[test]
    fn labels_patch_to_offsets() {
        let prog = [
            Op::PushLabel("end"),
            Op::Jump,
            Op::Push(U256::from(1u64)), // skipped
            Op::Label("end"),
            Op::Stop,
        ];
        let code = assemble(&prog).unwrap();
        // PUSH2 0x0006 JUMP PUSH1 0x01 JUMPDEST STOP
        assert_eq!(code, vec![0x61, 0x00, 0x06, 0x56, 0x60, 0x01, 0x5b, 0x00]);
    }

    #[test]
    fn duplicate_and_unknown_labels_rejected() {
        assert!(matches!(
            assemble(&[Op::Label("a"), Op::Label("a")]),
            Err(AsmError::DuplicateLabel(_))
        ));
        assert!(matches!(
            assemble(&[Op::PushLabel("missing")]),
            Err(AsmError::UnknownLabel(_))
        ));
    }

    #[test]
    fn operand_ranges_enforced() {
        assert!(assemble(&[Op::Dup(0)]).is_err());
        assert!(assemble(&[Op::Dup(17)]).is_err());
        assert!(assemble(&[Op::Swap(17)]).is_err());
        assert!(assemble(&[Op::Log(5)]).is_err());
        assert!(assemble(&[Op::Log(4)]).is_ok());
    }

    #[test]
    fn deployment_stub_layout() {
        let runtime = vec![0x60, 0x01, 0x00];
        let init = deployment_code(&runtime);
        assert_eq!(init.len(), 15 + 3);
        assert_eq!(&init[15..], &runtime[..]);
        // Stub starts with PUSH2 <len>
        assert_eq!(init[0], 0x61);
        assert_eq!(u16::from_be_bytes([init[1], init[2]]), 3);
    }
}
