//! Blocks, receipts, and logs bloom filters.

use crate::evm::LogEntry;
use ofl_primitives::rlp::{self, Item};
use ofl_primitives::u256::U256;
use ofl_primitives::{keccak256, H160, H256};

/// A 2048-bit logs bloom filter, per the Yellow Paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom(pub [u8; 256]);

impl Default for Bloom {
    fn default() -> Self {
        Bloom([0; 256])
    }
}

impl Bloom {
    /// Adds a value: three bits selected by the low 11 bits of each of the
    /// first three 2-byte pairs of its Keccak-256.
    pub fn accrue(&mut self, value: &[u8]) {
        let digest = keccak256(value);
        for i in 0..3 {
            let bit_index = ((digest[2 * i] as usize & 0x07) << 8) | digest[2 * i + 1] as usize;
            // bit 0 is the most significant bit of the last byte
            let byte = 255 - bit_index / 8;
            self.0[byte] |= 1 << (bit_index % 8);
        }
    }

    /// Whether a value is possibly present (no false negatives).
    pub fn contains(&self, value: &[u8]) -> bool {
        let digest = keccak256(value);
        for i in 0..3 {
            let bit_index = ((digest[2 * i] as usize & 0x07) << 8) | digest[2 * i + 1] as usize;
            let byte = 255 - bit_index / 8;
            if self.0[byte] & (1 << (bit_index % 8)) == 0 {
                return false;
            }
        }
        true
    }

    /// Folds a log's address and topics in.
    pub fn accrue_log(&mut self, log: &LogEntry) {
        self.accrue(log.address.as_bytes());
        for t in &log.topics {
            self.accrue(t.as_bytes());
        }
    }
}

/// Why a transaction's execution finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Executed and committed.
    Success,
    /// Reverted (state rolled back, fee charged).
    Reverted,
    /// Exceptional halt (out of gas / invalid opcode).
    Failed,
}

/// A transaction receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Receipt {
    /// Hash of the transaction this receipt belongs to.
    pub tx_hash: H256,
    /// Execution status.
    pub status: TxStatus,
    /// Gas consumed by this transaction (after refunds).
    pub gas_used: u64,
    /// Effective price paid per gas unit, in wei.
    pub effective_gas_price: U256,
    /// Total fee paid: `gas_used × effective_gas_price`.
    pub fee: U256,
    /// Address of a contract created by this transaction, if any.
    pub contract_address: Option<H160>,
    /// Logs emitted (empty unless `Success`).
    pub logs: Vec<LogEntry>,
    /// Block number this receipt landed in.
    pub block_number: u64,
    /// Revert/return payload (useful for error reporting).
    pub output: Vec<u8>,
}

impl Receipt {
    /// True iff execution succeeded.
    pub fn is_success(&self) -> bool {
        self.status == TxStatus::Success
    }
}

/// A block header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Parent block hash.
    pub parent_hash: H256,
    /// Block height.
    pub number: u64,
    /// Unix timestamp (seconds).
    pub timestamp: u64,
    /// Fee recipient (PoA signer).
    pub coinbase: H160,
    /// Cumulative gas used by all transactions.
    pub gas_used: u64,
    /// Block gas limit.
    pub gas_limit: u64,
    /// EIP-1559 base fee for this block.
    pub base_fee: U256,
    /// Merkle-style commitment over transaction hashes (flat Keccak here).
    pub tx_root: H256,
    /// Logs bloom of all receipts.
    pub bloom: Bloom,
}

impl Header {
    /// The block hash: Keccak of the RLP of the header fields.
    pub fn hash(&self) -> H256 {
        let item = Item::List(vec![
            Item::bytes(self.parent_hash.as_bytes()),
            Item::u64(self.number),
            Item::u64(self.timestamp),
            Item::bytes(self.coinbase.as_bytes()),
            Item::u64(self.gas_used),
            Item::u64(self.gas_limit),
            Item::uint(&self.base_fee),
            Item::bytes(self.tx_root.as_bytes()),
            Item::bytes(self.bloom.0),
        ]);
        H256::from_bytes(keccak256(&rlp::encode(&item)))
    }
}

/// A full block: header plus transaction hashes (bodies live in the chain's
/// transaction index).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The header.
    pub header: Header,
    /// Hashes of the included transactions, in execution order.
    pub tx_hashes: Vec<H256>,
}

impl Block {
    /// The block hash.
    pub fn hash(&self) -> H256 {
        self.header.hash()
    }
}

/// Computes the flat transaction commitment: Keccak over concatenated hashes.
pub fn tx_root(hashes: &[H256]) -> H256 {
    let mut buf = Vec::with_capacity(hashes.len() * 32);
    for h in hashes {
        buf.extend_from_slice(h.as_bytes());
    }
    H256::from_bytes(keccak256(&buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_no_false_negatives() {
        let mut bloom = Bloom::default();
        let values: Vec<Vec<u8>> = (0..50u32).map(|i| i.to_be_bytes().to_vec()).collect();
        for v in &values {
            bloom.accrue(v);
        }
        for v in &values {
            assert!(bloom.contains(v));
        }
    }

    #[test]
    fn bloom_rejects_most_absent_values() {
        let mut bloom = Bloom::default();
        bloom.accrue(b"present");
        let mut misses = 0;
        for i in 0..1000u32 {
            if !bloom.contains(&i.to_be_bytes()) {
                misses += 1;
            }
        }
        // With 3 bits set out of 2048, almost everything must miss.
        assert!(misses > 990, "only {misses} misses");
    }

    #[test]
    fn bloom_accrues_log_topics() {
        let log = LogEntry {
            address: H160::from_slice(&[9; 20]),
            topics: vec![H256::from_slice(&[1; 32])],
            data: vec![],
        };
        let mut bloom = Bloom::default();
        bloom.accrue_log(&log);
        assert!(bloom.contains(log.address.as_bytes()));
        assert!(bloom.contains(log.topics[0].as_bytes()));
    }

    #[test]
    fn header_hash_changes_with_fields() {
        let base = Header {
            parent_hash: H256::ZERO,
            number: 1,
            timestamp: 1000,
            coinbase: H160::ZERO,
            gas_used: 0,
            gas_limit: 30_000_000,
            base_fee: U256::from(1_000_000_000u64),
            tx_root: H256::ZERO,
            bloom: Bloom::default(),
        };
        let h0 = base.hash();
        let mut h = base.clone();
        h.number = 2;
        assert_ne!(h.hash(), h0);
        let mut h = base.clone();
        h.timestamp = 1012;
        assert_ne!(h.hash(), h0);
    }

    #[test]
    fn tx_root_order_sensitive() {
        let a = H256::from_slice(&[1; 32]);
        let b = H256::from_slice(&[2; 32]);
        assert_ne!(tx_root(&[a, b]), tx_root(&[b, a]));
        assert_eq!(tx_root(&[]), H256::from_bytes(keccak256(&[])));
    }
}
