//! Transaction types: EIP-1559 dynamic-fee transactions (the default on
//! Sepolia, which the paper uses) and legacy EIP-155 transactions.
//!
//! Signing hashes, RLP envelopes, and sender recovery follow the Ethereum
//! specifications so that a transaction round-trips
//! `sign → encode → decode → recover_sender` byte-exactly.

use crate::secp256k1::{self, EcdsaError, Signature};
use ofl_primitives::rlp::{self, Item, RlpError};
use ofl_primitives::u256::U256;
use ofl_primitives::{keccak256, H160, H256};

/// EIP-1559 type-2 transaction payload (before signing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxRequest {
    /// Chain id (replay protection).
    pub chain_id: u64,
    /// Sender account nonce.
    pub nonce: u64,
    /// Max priority fee per gas (tip), in wei.
    pub max_priority_fee_per_gas: U256,
    /// Max total fee per gas, in wei.
    pub max_fee_per_gas: U256,
    /// Gas limit.
    pub gas_limit: u64,
    /// Recipient; `None` creates a contract.
    pub to: Option<H160>,
    /// Wei transferred.
    pub value: U256,
    /// Calldata or init code.
    pub data: Vec<u8>,
}

impl TxRequest {
    /// The EIP-2718 typed signing hash:
    /// `keccak256(0x02 ‖ rlp([chain_id, nonce, tip, fee, gas, to, value, data, []]))`.
    pub fn signing_hash(&self) -> H256 {
        let payload = rlp::encode(&Item::List(self.rlp_fields()));
        let mut pre = Vec::with_capacity(payload.len() + 1);
        pre.push(0x02);
        pre.extend_from_slice(&payload);
        H256::from_bytes(keccak256(&pre))
    }

    fn rlp_fields(&self) -> Vec<Item> {
        vec![
            Item::u64(self.chain_id),
            Item::u64(self.nonce),
            Item::uint(&self.max_priority_fee_per_gas),
            Item::uint(&self.max_fee_per_gas),
            Item::u64(self.gas_limit),
            match &self.to {
                Some(addr) => Item::bytes(addr.as_bytes()),
                None => Item::bytes([]),
            },
            Item::uint(&self.value),
            Item::bytes(&self.data),
            Item::List(vec![]), // access list (always empty here)
        ]
    }

    /// Attaches a signature, producing a broadcastable transaction.
    pub fn into_signed(self, signature: Signature) -> SignedTx {
        SignedTx {
            request: self,
            signature,
        }
    }

    /// True iff this deploys a contract.
    pub fn is_create(&self) -> bool {
        self.to.is_none()
    }
}

/// A signed EIP-1559 transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignedTx {
    /// The signed payload.
    pub request: TxRequest,
    /// secp256k1 signature with y-parity in `recovery_id`.
    pub signature: Signature,
}

/// Errors from decoding or validating raw transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// Not a type-2 envelope.
    UnsupportedType(u8),
    /// Malformed RLP.
    Rlp(RlpError),
    /// Wrong field count or field shapes.
    MalformedBody,
    /// Signature scalars invalid or recovery failed.
    Signature(EcdsaError),
    /// `to` field is neither empty nor 20 bytes.
    BadAddress,
}

impl From<RlpError> for TxError {
    fn from(e: RlpError) -> Self {
        TxError::Rlp(e)
    }
}

impl From<EcdsaError> for TxError {
    fn from(e: EcdsaError) -> Self {
        TxError::Signature(e)
    }
}

impl core::fmt::Display for TxError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TxError::UnsupportedType(t) => write!(f, "unsupported transaction type {t}"),
            TxError::Rlp(e) => write!(f, "rlp: {e}"),
            TxError::MalformedBody => write!(f, "malformed transaction body"),
            TxError::Signature(e) => write!(f, "signature: {e}"),
            TxError::BadAddress => write!(f, "recipient is neither empty nor 20 bytes"),
        }
    }
}

impl std::error::Error for TxError {}

impl SignedTx {
    /// The canonical encoding: `0x02 ‖ rlp([...fields, y_parity, r, s])`.
    pub fn encode(&self) -> Vec<u8> {
        let mut fields = self.request.rlp_fields();
        fields.push(Item::u64(self.signature.recovery_id as u64));
        fields.push(Item::uint(&self.signature.r));
        fields.push(Item::uint(&self.signature.s));
        let payload = rlp::encode(&Item::List(fields));
        let mut out = Vec::with_capacity(payload.len() + 1);
        out.push(0x02);
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a raw typed transaction.
    pub fn decode(raw: &[u8]) -> Result<SignedTx, TxError> {
        let (&ty, body) = raw.split_first().ok_or(TxError::MalformedBody)?;
        if ty != 0x02 {
            return Err(TxError::UnsupportedType(ty));
        }
        let item = rlp::decode(body)?;
        let fields = item.as_list().ok_or(TxError::MalformedBody)?;
        if fields.len() != 12 {
            return Err(TxError::MalformedBody);
        }
        let to_bytes = fields[5].as_bytes().ok_or(TxError::MalformedBody)?;
        let to = match to_bytes.len() {
            0 => None,
            20 => Some(H160::from_slice(to_bytes)),
            _ => return Err(TxError::BadAddress),
        };
        // Access list must be the empty list in our subset.
        if fields[8].as_list().map(|l| l.len()) != Some(0) {
            return Err(TxError::MalformedBody);
        }
        let recovery_id = fields[9].as_u64()?;
        if recovery_id > 1 {
            return Err(TxError::Signature(EcdsaError::InvalidSignature));
        }
        let request = TxRequest {
            chain_id: fields[0].as_u64()?,
            nonce: fields[1].as_u64()?,
            max_priority_fee_per_gas: fields[2].as_uint()?,
            max_fee_per_gas: fields[3].as_uint()?,
            gas_limit: fields[4].as_u64()?,
            to,
            value: fields[6].as_uint()?,
            data: fields[7].as_bytes().ok_or(TxError::MalformedBody)?.to_vec(),
        };
        let signature = Signature {
            recovery_id: recovery_id as u8,
            r: fields[10].as_uint()?,
            s: fields[11].as_uint()?,
        };
        Ok(SignedTx { request, signature })
    }

    /// The transaction hash (Keccak of the canonical encoding).
    pub fn hash(&self) -> H256 {
        H256::from_bytes(keccak256(&self.encode()))
    }

    /// Recovers the sender address from the signature.
    pub fn recover_sender(&self) -> Result<H160, TxError> {
        let hash = self.request.signing_hash();
        Ok(secp256k1::recover_address(&hash.0, &self.signature)?)
    }

    /// Verifies the signature against a claimed sender.
    pub fn verify_sender(&self, expected: &H160) -> bool {
        self.recover_sender()
            .map(|a| a == *expected)
            .unwrap_or(false)
    }
}

/// Signs a request with a private key, producing a broadcastable transaction.
pub fn sign_tx(request: TxRequest, private_key: &U256) -> Result<SignedTx, EcdsaError> {
    let hash = request.signing_hash();
    let signature = secp256k1::sign(private_key, &hash.0)?;
    Ok(request.into_signed(signature))
}

/// A legacy (pre-EIP-1559) transaction with EIP-155 replay protection.
///
/// Kept for wire-format completeness: older tooling still produces these,
/// and the chain accepts them via [`LegacyTx::into_dynamic_fee`], which maps
/// `gas_price` onto `max_fee = max_priority_fee = gas_price` — exactly how
/// EIP-1559 clients interpret legacy transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyTx {
    /// Chain id (EIP-155).
    pub chain_id: u64,
    /// Sender nonce.
    pub nonce: u64,
    /// Single gas price, in wei.
    pub gas_price: U256,
    /// Gas limit.
    pub gas_limit: u64,
    /// Recipient; `None` creates a contract.
    pub to: Option<H160>,
    /// Wei transferred.
    pub value: U256,
    /// Calldata or init code.
    pub data: Vec<u8>,
}

impl LegacyTx {
    /// The EIP-155 signing hash:
    /// `keccak256(rlp([nonce, gas_price, gas, to, value, data, chain_id, 0, 0]))`.
    pub fn signing_hash(&self) -> H256 {
        let item = Item::List(vec![
            Item::u64(self.nonce),
            Item::uint(&self.gas_price),
            Item::u64(self.gas_limit),
            match &self.to {
                Some(addr) => Item::bytes(addr.as_bytes()),
                None => Item::bytes([]),
            },
            Item::uint(&self.value),
            Item::bytes(&self.data),
            Item::u64(self.chain_id),
            Item::u64(0),
            Item::u64(0),
        ]);
        H256::from_bytes(keccak256(&rlp::encode(&item)))
    }

    /// The EIP-155 `v` value for a recovery id: `35 + 2·chain_id + parity`.
    pub fn v(&self, recovery_id: u8) -> u64 {
        35 + 2 * self.chain_id + recovery_id as u64
    }

    /// Extracts the recovery id from an EIP-155 `v`; `None` when `v` does
    /// not belong to this chain.
    pub fn recovery_id_from_v(chain_id: u64, v: u64) -> Option<u8> {
        let base = 35 + 2 * chain_id;
        match v.checked_sub(base) {
            Some(0) => Some(0),
            Some(1) => Some(1),
            _ => None,
        }
    }

    /// Signs and converts to the EIP-1559 representation the chain executes.
    pub fn sign_as_dynamic_fee(self, private_key: &U256) -> Result<SignedTx, EcdsaError> {
        sign_tx(self.into_dynamic_fee(), private_key)
    }

    /// Maps onto a [`TxRequest`] (`max_fee = tip = gas_price`).
    pub fn into_dynamic_fee(self) -> TxRequest {
        TxRequest {
            chain_id: self.chain_id,
            nonce: self.nonce,
            max_priority_fee_per_gas: self.gas_price,
            max_fee_per_gas: self.gas_price,
            gas_limit: self.gas_limit,
            to: self.to,
            value: self.value,
            data: self.data,
        }
    }

    /// Recovers the sender of a raw `(v, r, s)`-signed legacy transaction.
    pub fn recover_sender(&self, v: u64, r: U256, s: U256) -> Result<H160, TxError> {
        let recovery_id =
            Self::recovery_id_from_v(self.chain_id, v).ok_or(TxError::MalformedBody)?;
        let sig = Signature { r, s, recovery_id };
        Ok(secp256k1::recover_address(&self.signing_hash().0, &sig)?)
    }
}

/// The deterministic contract address for a CREATE by `sender` at `nonce`:
/// `keccak256(rlp([sender, nonce]))[12..]`.
pub fn create_address(sender: &H160, nonce: u64) -> H160 {
    let item = Item::List(vec![Item::bytes(sender.as_bytes()), Item::u64(nonce)]);
    let digest = keccak256(&rlp::encode(&item));
    H160::from_slice(&digest[12..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> TxRequest {
        TxRequest {
            chain_id: 11155111,
            nonce: 3,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(30_000_000_000u64),
            gas_limit: 100_000,
            to: Some(H160::from_slice(&[0x42; 20])),
            value: U256::from_u128(1_000_000_000_000_000),
            data: vec![0xde, 0xad, 0xbe, 0xef],
        }
    }

    #[test]
    fn sign_encode_decode_recover() {
        let key = U256::from(0xbeefu64);
        let expected_sender = secp256k1::public_key(&key)
            .unwrap()
            .to_eth_address()
            .unwrap();
        let tx = sign_tx(sample_request(), &key).unwrap();
        let raw = tx.encode();
        assert_eq!(raw[0], 0x02);
        let decoded = SignedTx::decode(&raw).unwrap();
        assert_eq!(decoded, tx);
        assert_eq!(decoded.recover_sender().unwrap(), expected_sender);
        assert!(decoded.verify_sender(&expected_sender));
        assert!(!decoded.verify_sender(&H160::ZERO));
    }

    #[test]
    fn tamper_changes_sender_or_fails() {
        let key = U256::from(0x1234u64);
        let honest = secp256k1::public_key(&key)
            .unwrap()
            .to_eth_address()
            .unwrap();
        let tx = sign_tx(sample_request(), &key).unwrap();
        let mut tampered = tx.clone();
        tampered.request.value = U256::from(999u64);
        // The recovered sender will not match the honest signer.
        // Recovery may legitimately fail; if it succeeds, the recovered
        // sender must differ.
        if let Ok(addr) = tampered.recover_sender() {
            assert_ne!(addr, honest);
        }
    }

    #[test]
    fn create_tx_roundtrip() {
        let mut req = sample_request();
        req.to = None;
        req.data = vec![0x60, 0x01, 0x60, 0x02];
        let key = U256::from(77u64);
        let tx = sign_tx(req, &key).unwrap();
        let dec = SignedTx::decode(&tx.encode()).unwrap();
        assert!(dec.request.is_create());
        assert_eq!(dec.request.data, vec![0x60, 0x01, 0x60, 0x02]);
    }

    #[test]
    fn signing_hash_depends_on_every_field() {
        let base = sample_request();
        let h0 = base.signing_hash();
        let mut variants = Vec::new();
        let mut r = base.clone();
        r.nonce += 1;
        variants.push(r.signing_hash());
        let mut r = base.clone();
        r.chain_id = 1;
        variants.push(r.signing_hash());
        let mut r = base.clone();
        r.value = U256::ZERO;
        variants.push(r.signing_hash());
        let mut r = base.clone();
        r.data.push(0);
        variants.push(r.signing_hash());
        let mut r = base.clone();
        r.to = None;
        variants.push(r.signing_hash());
        for v in variants {
            assert_ne!(v, h0);
        }
    }

    #[test]
    fn tx_hash_distinct_from_signing_hash() {
        let tx = sign_tx(sample_request(), &U256::from(5u64)).unwrap();
        assert_ne!(tx.hash(), tx.request.signing_hash());
    }

    #[test]
    fn decode_rejects_wrong_type() {
        assert!(matches!(
            SignedTx::decode(&[0x01, 0xc0]),
            Err(TxError::UnsupportedType(1))
        ));
        assert!(SignedTx::decode(&[]).is_err());
    }

    #[test]
    fn decode_rejects_bad_field_count() {
        let item = Item::List(vec![Item::u64(1); 5]);
        let mut raw = vec![0x02];
        raw.extend(rlp::encode(&item));
        assert_eq!(SignedTx::decode(&raw), Err(TxError::MalformedBody));
    }

    #[test]
    fn legacy_eip155_signing_and_recovery() {
        let legacy = LegacyTx {
            chain_id: 11155111,
            nonce: 2,
            gas_price: U256::from(20_000_000_000u64),
            gas_limit: 21_000,
            to: Some(H160::from_slice(&[0x11; 20])),
            value: U256::from(999u64),
            data: vec![],
        };
        let key = U256::from(0xc0ffeeu64);
        let sender = secp256k1::public_key(&key)
            .unwrap()
            .to_eth_address()
            .unwrap();
        let sig = secp256k1::sign(&key, &legacy.signing_hash().0).unwrap();
        let v = legacy.v(sig.recovery_id);
        assert!(v == 35 + 2 * 11155111 || v == 36 + 2 * 11155111);
        assert_eq!(legacy.recover_sender(v, sig.r, sig.s).unwrap(), sender);
        // Wrong chain's v is rejected.
        assert!(legacy.recover_sender(27, sig.r, sig.s).is_err());
        assert_eq!(LegacyTx::recovery_id_from_v(1, 37), Some(0));
        assert_eq!(LegacyTx::recovery_id_from_v(1, 38), Some(1));
        assert_eq!(LegacyTx::recovery_id_from_v(1, 39), None);
    }

    #[test]
    fn legacy_converts_to_dynamic_fee_and_executes_equivalently() {
        let legacy = LegacyTx {
            chain_id: 11155111,
            nonce: 0,
            gas_price: U256::from(15_000_000_000u64),
            gas_limit: 30_000,
            to: Some(H160::from_slice(&[0x22; 20])),
            value: U256::from(5u64),
            data: vec![1, 2, 3],
        };
        let req = legacy.clone().into_dynamic_fee();
        assert_eq!(req.max_fee_per_gas, legacy.gas_price);
        assert_eq!(req.max_priority_fee_per_gas, legacy.gas_price);
        assert_eq!(req.value, legacy.value);
        let signed = legacy.sign_as_dynamic_fee(&U256::from(42u64)).unwrap();
        assert!(signed.recover_sender().is_ok());
    }

    #[test]
    fn legacy_signing_hash_differs_from_typed() {
        let legacy = LegacyTx {
            chain_id: 1,
            nonce: 0,
            gas_price: U256::from(10u64),
            gas_limit: 21_000,
            to: None,
            value: U256::ZERO,
            data: vec![],
        };
        let typed = legacy.clone().into_dynamic_fee();
        assert_ne!(legacy.signing_hash(), typed.signing_hash());
    }

    #[test]
    fn create_address_known_vector() {
        // Known mainnet vector: sender 0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0
        // nonce 0 → Cryptokitties-era example; verify the generic property
        // instead: distinct nonces give distinct addresses and match the
        // hand-computed keccak.
        let sender = H160::from_hex("0x6ac7ea33f8831ea9dcc53393aaa88b25a785dbf0").unwrap();
        let a0 = create_address(&sender, 0);
        let a1 = create_address(&sender, 1);
        assert_ne!(a0, a1);
        let manual = {
            let item = Item::List(vec![Item::bytes(sender.as_bytes()), Item::u64(0)]);
            let d = keccak256(&rlp::encode(&item));
            H160::from_slice(&d[12..])
        };
        assert_eq!(a0, manual);
    }
}
