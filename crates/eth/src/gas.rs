//! The gas schedule (Yellow-Paper / post-Berlin subset used by the EVM
//! interpreter) and intrinsic-gas computation.
//!
//! These constants are what make Fig 5 of the paper reproducible: the fee
//! ordering *deployment ≫ uploadCid ≈ payment ≫ reads (free)* falls directly
//! out of `CREATE` code-deposit costs, `SSTORE` write costs, and the zero
//! cost of `eth_call`-style reads.

/// Base cost charged for every transaction.
pub const TX_BASE: u64 = 21_000;
/// Additional base cost for contract-creating transactions.
pub const TX_CREATE_EXTRA: u64 = 32_000;
/// Per-byte calldata cost: zero bytes.
pub const TX_DATA_ZERO: u64 = 4;
/// Per-byte calldata cost: nonzero bytes.
pub const TX_DATA_NONZERO: u64 = 16;

/// Cheapest opcode tier (PC, MSIZE, GAS, ...).
pub const BASE: u64 = 2;
/// Very-low tier (ADD, SUB, PUSH, DUP, SWAP, ...).
pub const VERY_LOW: u64 = 3;
/// Low tier (MUL, DIV, MOD, ...).
pub const LOW: u64 = 5;
/// Mid tier (ADDMOD, MULMOD, JUMP).
pub const MID: u64 = 8;
/// High tier (JUMPI).
pub const HIGH: u64 = 10;
/// JUMPDEST marker.
pub const JUMPDEST: u64 = 1;

/// SLOAD (post-Berlin warm access).
pub const SLOAD_WARM: u64 = 100;
/// SLOAD on a cold slot (EIP-2929).
pub const SLOAD_COLD: u64 = 2_100;
/// SSTORE setting a zero slot to nonzero.
pub const SSTORE_SET: u64 = 20_000;
/// SSTORE updating a nonzero slot.
pub const SSTORE_RESET: u64 = 2_900;
/// SSTORE no-op / dirty update (warm).
pub const SSTORE_WARM: u64 = 100;
/// Cold surcharge for the first touch of a slot in a transaction.
pub const SSTORE_COLD_SURCHARGE: u64 = 2_100;
/// Refund for clearing a slot to zero (EIP-3529 value).
pub const SSTORE_CLEAR_REFUND: u64 = 4_800;

/// KECCAK256 static cost.
pub const KECCAK256: u64 = 30;
/// KECCAK256 per 32-byte word.
pub const KECCAK256_WORD: u64 = 6;

/// Memory expansion: linear coefficient per 32-byte word.
pub const MEMORY_WORD: u64 = 3;

/// LOG static cost.
pub const LOG: u64 = 375;
/// LOG per topic.
pub const LOG_TOPIC: u64 = 375;
/// LOG per data byte.
pub const LOG_DATA: u64 = 8;

/// Per-byte cost of depositing contract code at deployment.
pub const CODE_DEPOSIT_BYTE: u64 = 200;

/// Cost of a nonzero-value transfer inside CALL.
pub const CALL_VALUE: u64 = 9_000;
/// Stipend forwarded with a value transfer.
pub const CALL_STIPEND: u64 = 2_300;
/// Cold account access (EIP-2929).
pub const ACCOUNT_COLD: u64 = 2_600;
/// Warm account access.
pub const ACCOUNT_WARM: u64 = 100;
/// Surcharge for creating a new account via value transfer.
pub const NEW_ACCOUNT: u64 = 25_000;

/// COPY operations per 32-byte word (CALLDATACOPY, CODECOPY, ...).
pub const COPY_WORD: u64 = 3;

/// BALANCE/EXTCODESIZE-style account queries (warm).
pub const EXT_WARM: u64 = 100;

/// EXP static cost.
pub const EXP: u64 = 10;
/// EXP per byte of exponent.
pub const EXP_BYTE: u64 = 50;

/// Maximum refund fraction of gas used (EIP-3529: 1/5).
pub const MAX_REFUND_QUOTIENT: u64 = 5;

/// Number of 32-byte words needed to hold `bytes` bytes.
#[inline]
pub fn words(bytes: u64) -> u64 {
    bytes.div_ceil(32)
}

/// Quadratic memory cost for a memory of `w` words:
/// `MEMORY_WORD * w + w² / 512`.
pub fn memory_cost(w: u64) -> u64 {
    MEMORY_WORD * w + (w * w) / 512
}

/// Intrinsic gas for a transaction: the amount charged before a single
/// opcode executes.
pub fn intrinsic_gas(data: &[u8], is_create: bool) -> u64 {
    let mut gas = TX_BASE;
    if is_create {
        gas += TX_CREATE_EXTRA;
    }
    for &b in data {
        gas += if b == 0 {
            TX_DATA_ZERO
        } else {
            TX_DATA_NONZERO
        };
    }
    gas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_plain_transfer() {
        assert_eq!(intrinsic_gas(&[], false), 21_000);
    }

    #[test]
    fn intrinsic_counts_zero_and_nonzero_bytes() {
        // 2 nonzero + 3 zero bytes
        let data = [1u8, 2, 0, 0, 0];
        assert_eq!(intrinsic_gas(&data, false), 21_000 + 2 * 16 + 3 * 4);
    }

    #[test]
    fn intrinsic_create_extra() {
        assert_eq!(intrinsic_gas(&[], true), 53_000);
    }

    #[test]
    fn memory_cost_is_quadratic() {
        assert_eq!(memory_cost(0), 0);
        assert_eq!(memory_cost(1), 3);
        assert_eq!(memory_cost(32), 32 * 3 + 2); // 1 KiB
        assert!(memory_cost(10_000) > 10 * memory_cost(1_000));
    }

    #[test]
    fn word_rounding() {
        assert_eq!(words(0), 0);
        assert_eq!(words(1), 1);
        assert_eq!(words(32), 1);
        assert_eq!(words(33), 2);
    }
}
