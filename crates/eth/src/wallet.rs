//! Wallets and the MetaMask-analogue signing flow.
//!
//! The paper's users interact through MetaMask: it derives keys, shows a
//! confirmation dialog with the estimated fee breakdown (Fig 5a–d), signs,
//! and broadcasts. [`Wallet`] reproduces that role: deterministic key
//! derivation from a seed, fee estimation against the chain, a
//! [`TxSummary`] matching what MetaMask displays, and one-call
//! sign-and-submit.

use crate::chain::{Chain, ChainError};
use crate::secp256k1;
use crate::tx::{sign_tx, TxRequest};
use ofl_primitives::u256::U256;
use ofl_primitives::{format_eth, keccak256, H160, H256};

/// A single account: private key and derived address.
#[derive(Debug, Clone)]
pub struct Account {
    /// secp256k1 private scalar.
    pub private_key: U256,
    /// keccak-derived Ethereum address.
    pub address: H160,
    /// Human-readable label shown in the wallet UI.
    pub label: String,
}

/// Errors from wallet operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalletError {
    /// No account with that address in the keystore.
    UnknownAccount(H160),
    /// Underlying signing failure.
    Signing(secp256k1::EcdsaError),
    /// Chain rejected the transaction.
    Chain(ChainError),
}

impl From<ChainError> for WalletError {
    fn from(e: ChainError) -> Self {
        WalletError::Chain(e)
    }
}

impl core::fmt::Display for WalletError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WalletError::UnknownAccount(a) => write!(f, "unknown account {a}"),
            WalletError::Signing(e) => write!(f, "signing: {e}"),
            WalletError::Chain(e) => write!(f, "chain: {e}"),
        }
    }
}

impl std::error::Error for WalletError {}

/// Everything a wallet must learn from a node before it can sign: chain
/// id, sender nonce, a gas estimate, and the current base fee. Callers
/// gather these however they like — the simulation's RPC layer fetches
/// them as one `eth_chainId`/`eth_getTransactionCount`/`eth_estimateGas`/
/// `eth_gasPrice` batch against the market's endpoint, so provider faults
/// cover the signing path; tests may build one straight off a local
/// [`Chain`] view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxEnv {
    /// Replay-protection chain id.
    pub chain_id: u64,
    /// The sender's next nonce.
    pub nonce: u64,
    /// Estimated gas units (before the wallet's safety margin).
    pub gas_estimate: u64,
    /// Current base fee per gas.
    pub base_fee: U256,
}

impl TxEnv {
    /// Reads the signing environment off a local chain view — the
    /// convenience used by backend-level tests; client code goes through
    /// the RPC envelopes instead.
    pub fn from_chain(chain: &Chain, from: &H160, to: Option<&H160>, data: &[u8]) -> TxEnv {
        TxEnv {
            chain_id: chain.config().chain_id,
            nonce: chain.nonce(from),
            gas_estimate: chain.estimate_gas(from, to, data),
            base_fee: chain.base_fee(),
        }
    }
}

/// The fee summary a user confirms before signing — the information content
/// of the MetaMask dialogs in the paper's Fig 5.
#[derive(Debug, Clone)]
pub struct TxSummary {
    /// What kind of action this is, e.g. "Contract Deployment".
    pub kind: String,
    /// Estimated gas units.
    pub estimated_gas: u64,
    /// Max fee per gas offered.
    pub max_fee_per_gas: U256,
    /// Estimated total fee in wei (`estimated_gas × (base fee + tip)`).
    pub estimated_fee_wei: U256,
    /// Value transferred.
    pub value: U256,
    /// Estimated total (fee + value).
    pub total_wei: U256,
}

impl TxSummary {
    /// Renders the summary the way MetaMask would (ETH amounts).
    pub fn display(&self) -> String {
        format!(
            "{}\n  Estimated gas: {}\n  Estimated fee: {} ETH\n  Value: {} ETH\n  Total: {} ETH",
            self.kind,
            self.estimated_gas,
            format_eth(&self.estimated_fee_wei, 8),
            format_eth(&self.value, 8),
            format_eth(&self.total_wei, 8),
        )
    }
}

/// A deterministic, seed-derived keystore plus the MetaMask-style
/// sign-and-broadcast flow.
#[derive(Debug, Clone, Default)]
pub struct Wallet {
    accounts: Vec<Account>,
    /// Default tip offered (1.5 gwei, MetaMask's long-time default).
    pub default_priority_fee: U256,
}

impl Wallet {
    /// An empty wallet.
    pub fn new() -> Wallet {
        Wallet {
            accounts: Vec::new(),
            default_priority_fee: U256::from(1_500_000_000u64),
        }
    }

    /// Derives `count` accounts from a seed string: key_i =
    /// keccak256(seed ‖ be64(i)), rejected and re-hashed if out of range
    /// (astronomically unlikely).
    pub fn from_seed(seed: &str, count: usize) -> Wallet {
        let mut wallet = Wallet::new();
        for i in 0..count {
            wallet.derive_account(seed, i as u64, format!("account-{i}"));
        }
        wallet
    }

    /// Adds one derived account with a label; returns its address.
    pub fn derive_account(&mut self, seed: &str, index: u64, label: String) -> H160 {
        let mut material = seed.as_bytes().to_vec();
        material.extend_from_slice(&index.to_be_bytes());
        let mut key = U256::from_be_bytes(&keccak256(&material));
        let address = loop {
            match secp256k1::public_key(&key) {
                Ok(pk) => break pk.to_eth_address().expect("finite point"),
                Err(_) => {
                    key = U256::from_be_bytes(&keccak256(&key.to_be_bytes()));
                }
            }
        };
        self.accounts.push(Account {
            private_key: key,
            address,
            label,
        });
        address
    }

    /// Imports a raw private key.
    pub fn import_key(&mut self, private_key: U256, label: String) -> Result<H160, WalletError> {
        let address = secp256k1::public_key(&private_key)
            .map_err(WalletError::Signing)?
            .to_eth_address()
            .expect("finite point");
        self.accounts.push(Account {
            private_key,
            address,
            label,
        });
        Ok(address)
    }

    /// All account addresses, in derivation order.
    pub fn addresses(&self) -> Vec<H160> {
        self.accounts.iter().map(|a| a.address).collect()
    }

    /// Looks up an account.
    pub fn account(&self, address: &H160) -> Option<&Account> {
        self.accounts.iter().find(|a| a.address == *address)
    }

    /// Builds the confirmation summary for a prospective transaction —
    /// the dialog of Fig 5a — from an explicit signing environment,
    /// without signing anything.
    pub fn summarize_with_env(
        &self,
        env: &TxEnv,
        to: Option<&H160>,
        value: &U256,
        data: &[u8],
    ) -> TxSummary {
        let estimated_gas = env.gas_estimate;
        let tip = self.default_priority_fee;
        let price = env.base_fee.wrapping_add(&tip);
        // MetaMask's max fee heuristic: 2× base fee + tip.
        let max_fee = env
            .base_fee
            .wrapping_mul(&U256::from(2u64))
            .wrapping_add(&tip);
        let fee = U256::from(estimated_gas).wrapping_mul(&price);
        let kind = match to {
            None => "Contract Deployment".to_string(),
            Some(_) if data.is_empty() => "Transfer".to_string(),
            Some(_) => "Contract Interaction".to_string(),
        };
        TxSummary {
            kind,
            estimated_gas,
            max_fee_per_gas: max_fee,
            estimated_fee_wei: fee,
            value: *value,
            total_wei: fee.wrapping_add(value),
        }
    }

    /// [`Wallet::summarize_with_env`] against a local chain view.
    pub fn summarize(
        &self,
        chain: &Chain,
        from: &H160,
        to: Option<&H160>,
        value: &U256,
        data: &[u8],
    ) -> TxSummary {
        let env = TxEnv::from_chain(chain, from, to, data);
        self.summarize_with_env(&env, to, value, data)
    }

    /// Builds and signs a transaction from an explicit [`TxEnv`] — the
    /// "Confirm" button up to, but not including, the broadcast. Applies
    /// MetaMask's heuristics to the environment the caller fetched (1.5×
    /// gas safety margin, max fee = 2× base fee + tip), signs with the
    /// account's key, and returns the raw encoded transaction ready for
    /// `eth_sendRawTransaction`. The wallet itself never reads a chain:
    /// where the environment came from — a local view or RPC envelopes
    /// against a market's endpoint — is the caller's business.
    pub fn sign_with_env(
        &self,
        env: &TxEnv,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<Vec<u8>, WalletError> {
        let account = self
            .account(from)
            .ok_or(WalletError::UnknownAccount(*from))?;
        let gas_limit = env.gas_estimate + env.gas_estimate / 2;
        let tip = self.default_priority_fee;
        let max_fee = env
            .base_fee
            .wrapping_mul(&U256::from(2u64))
            .wrapping_add(&tip);
        let request = TxRequest {
            chain_id: env.chain_id,
            nonce: env.nonce,
            max_priority_fee_per_gas: tip,
            max_fee_per_gas: max_fee,
            gas_limit,
            to,
            value,
            data,
        };
        let tx = sign_tx(request, &account.private_key).map_err(WalletError::Signing)?;
        let encoded = tx.encode();
        ofl_trace::trace_event!(
            ofl_trace::Category::Sign,
            "wallet.sign",
            "nonce" => env.nonce,
            "gas_limit" => gas_limit,
            "bytes" => encoded.len(),
            "digest" => ofl_trace::fnv1a64(&encoded),
        );
        Ok(encoded)
    }

    /// [`Wallet::sign_with_env`] against a local chain view — the
    /// backend-level convenience (the chain *is* the wallet's node here).
    pub fn sign_raw(
        &self,
        chain: &Chain,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<Vec<u8>, WalletError> {
        let env = TxEnv::from_chain(chain, from, to.as_ref(), &data);
        self.sign_with_env(&env, from, to, value, data)
    }

    /// Signs and submits a transaction — `sign_raw` plus the broadcast into
    /// the chain's mempool. Returns the transaction hash.
    pub fn send(
        &self,
        chain: &mut Chain,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<H256, WalletError> {
        let raw = self.sign_raw(chain, from, to, value, data)?;
        Ok(chain.submit_raw(&raw)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainConfig;
    use ofl_primitives::wei_per_eth;

    fn chain_with(wallet: &Wallet) -> Chain {
        let genesis: Vec<(H160, U256)> = wallet
            .addresses()
            .iter()
            .map(|a| (*a, wei_per_eth()))
            .collect();
        Chain::new(ChainConfig::default(), &genesis)
    }

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        let w1 = Wallet::from_seed("ofl-w3 demo", 10);
        let w2 = Wallet::from_seed("ofl-w3 demo", 10);
        assert_eq!(w1.addresses(), w2.addresses());
        let unique: std::collections::HashSet<_> = w1.addresses().into_iter().collect();
        assert_eq!(unique.len(), 10);
        let w3 = Wallet::from_seed("different seed", 10);
        assert_ne!(w1.addresses()[0], w3.addresses()[0]);
    }

    #[test]
    fn send_transfer_end_to_end() {
        let wallet = Wallet::from_seed("seed", 2);
        let mut chain = chain_with(&wallet);
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let hash = wallet
            .send(&mut chain, &a, Some(b), U256::from(12345u64), Vec::new())
            .unwrap();
        chain.mine_block(12);
        let receipt = chain.receipt(&hash).unwrap();
        assert!(receipt.is_success());
        assert_eq!(
            chain.balance(&b),
            wei_per_eth().wrapping_add(&U256::from(12345u64))
        );
    }

    #[test]
    fn summary_kinds() {
        let wallet = Wallet::from_seed("seed", 2);
        let chain = chain_with(&wallet);
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let transfer = wallet.summarize(&chain, &a, Some(&b), &U256::ONE, &[]);
        assert_eq!(transfer.kind, "Transfer");
        assert_eq!(transfer.estimated_gas, 21_000);
        let deploy = wallet.summarize(&chain, &a, None, &U256::ZERO, &[0x00]);
        assert_eq!(deploy.kind, "Contract Deployment");
        let interact = wallet.summarize(&chain, &a, Some(&b), &U256::ZERO, &[1, 2, 3, 4]);
        assert_eq!(interact.kind, "Contract Interaction");
        // Display renders ETH values.
        assert!(transfer.display().contains("ETH"));
    }

    #[test]
    fn sign_with_env_matches_local_view_signing() {
        let wallet = Wallet::from_seed("seed", 2);
        let chain = chain_with(&wallet);
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let env = TxEnv::from_chain(&chain, &a, Some(&b), &[]);
        assert_eq!(env.nonce, 0);
        assert_eq!(env.gas_estimate, 21_000);
        let via_env = wallet
            .sign_with_env(&env, &a, Some(b), U256::ONE, vec![])
            .unwrap();
        let via_chain = wallet
            .sign_raw(&chain, &a, Some(b), U256::ONE, vec![])
            .unwrap();
        assert_eq!(via_env, via_chain);
        // A stale nonce in the environment shows up in the signed bytes —
        // the wallet signs exactly what it was told.
        let stale = TxEnv { nonce: 3, ..env };
        assert_ne!(
            wallet
                .sign_with_env(&stale, &a, Some(b), U256::ONE, vec![])
                .unwrap(),
            via_env
        );
    }

    #[test]
    fn unknown_sender_rejected() {
        let wallet = Wallet::from_seed("seed", 1);
        let mut chain = chain_with(&wallet);
        let stranger = H160::from_slice(&[9; 20]);
        assert!(matches!(
            wallet.send(&mut chain, &stranger, None, U256::ZERO, vec![]),
            Err(WalletError::UnknownAccount(_))
        ));
    }

    #[test]
    fn import_key_roundtrip() {
        let mut wallet = Wallet::new();
        let addr = wallet.import_key(U256::ONE, "satoshi?".into()).unwrap();
        assert_eq!(
            addr.to_checksum(),
            "0x7E5F4552091A69125d5DfCb7b8C2659029395Bdf"
        );
        assert!(wallet.import_key(U256::ZERO, "bad".into()).is_err());
    }

    #[test]
    fn checksummed_addresses_printable() {
        // Table 1 of the paper prints checksummed addresses; ensure ours
        // render in that format.
        let wallet = Wallet::from_seed("ofl-w3 owners", 10);
        for addr in wallet.addresses() {
            let cs = addr.to_checksum();
            assert!(cs.starts_with("0x"));
            assert_eq!(cs.len(), 42);
        }
    }
}
