//! Wallets and the MetaMask-analogue signing flow.
//!
//! The paper's users interact through MetaMask: it derives keys, shows a
//! confirmation dialog with the estimated fee breakdown (Fig 5a–d), signs,
//! and broadcasts. [`Wallet`] reproduces that role: deterministic key
//! derivation from a seed, fee estimation against the chain, a
//! [`TxSummary`] matching what MetaMask displays, and one-call
//! sign-and-submit.

use crate::chain::{Chain, ChainError};
use crate::secp256k1;
use crate::tx::{sign_tx, TxRequest};
use ofl_primitives::u256::U256;
use ofl_primitives::{format_eth, keccak256, H160, H256};

/// A single account: private key and derived address.
#[derive(Debug, Clone)]
pub struct Account {
    /// secp256k1 private scalar.
    pub private_key: U256,
    /// keccak-derived Ethereum address.
    pub address: H160,
    /// Human-readable label shown in the wallet UI.
    pub label: String,
}

/// Errors from wallet operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalletError {
    /// No account with that address in the keystore.
    UnknownAccount(H160),
    /// Underlying signing failure.
    Signing(secp256k1::EcdsaError),
    /// Chain rejected the transaction.
    Chain(ChainError),
}

impl From<ChainError> for WalletError {
    fn from(e: ChainError) -> Self {
        WalletError::Chain(e)
    }
}

impl core::fmt::Display for WalletError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WalletError::UnknownAccount(a) => write!(f, "unknown account {a}"),
            WalletError::Signing(e) => write!(f, "signing: {e}"),
            WalletError::Chain(e) => write!(f, "chain: {e}"),
        }
    }
}

impl std::error::Error for WalletError {}

/// The fee summary a user confirms before signing — the information content
/// of the MetaMask dialogs in the paper's Fig 5.
#[derive(Debug, Clone)]
pub struct TxSummary {
    /// What kind of action this is, e.g. "Contract Deployment".
    pub kind: String,
    /// Estimated gas units.
    pub estimated_gas: u64,
    /// Max fee per gas offered.
    pub max_fee_per_gas: U256,
    /// Estimated total fee in wei (`estimated_gas × (base fee + tip)`).
    pub estimated_fee_wei: U256,
    /// Value transferred.
    pub value: U256,
    /// Estimated total (fee + value).
    pub total_wei: U256,
}

impl TxSummary {
    /// Renders the summary the way MetaMask would (ETH amounts).
    pub fn display(&self) -> String {
        format!(
            "{}\n  Estimated gas: {}\n  Estimated fee: {} ETH\n  Value: {} ETH\n  Total: {} ETH",
            self.kind,
            self.estimated_gas,
            format_eth(&self.estimated_fee_wei, 8),
            format_eth(&self.value, 8),
            format_eth(&self.total_wei, 8),
        )
    }
}

/// A deterministic, seed-derived keystore plus the MetaMask-style
/// sign-and-broadcast flow.
#[derive(Debug, Clone, Default)]
pub struct Wallet {
    accounts: Vec<Account>,
    /// Default tip offered (1.5 gwei, MetaMask's long-time default).
    pub default_priority_fee: U256,
}

impl Wallet {
    /// An empty wallet.
    pub fn new() -> Wallet {
        Wallet {
            accounts: Vec::new(),
            default_priority_fee: U256::from(1_500_000_000u64),
        }
    }

    /// Derives `count` accounts from a seed string: key_i =
    /// keccak256(seed ‖ be64(i)), rejected and re-hashed if out of range
    /// (astronomically unlikely).
    pub fn from_seed(seed: &str, count: usize) -> Wallet {
        let mut wallet = Wallet::new();
        for i in 0..count {
            wallet.derive_account(seed, i as u64, format!("account-{i}"));
        }
        wallet
    }

    /// Adds one derived account with a label; returns its address.
    pub fn derive_account(&mut self, seed: &str, index: u64, label: String) -> H160 {
        let mut material = seed.as_bytes().to_vec();
        material.extend_from_slice(&index.to_be_bytes());
        let mut key = U256::from_be_bytes(&keccak256(&material));
        let address = loop {
            match secp256k1::public_key(&key) {
                Ok(pk) => break pk.to_eth_address().expect("finite point"),
                Err(_) => {
                    key = U256::from_be_bytes(&keccak256(&key.to_be_bytes()));
                }
            }
        };
        self.accounts.push(Account {
            private_key: key,
            address,
            label,
        });
        address
    }

    /// Imports a raw private key.
    pub fn import_key(&mut self, private_key: U256, label: String) -> Result<H160, WalletError> {
        let address = secp256k1::public_key(&private_key)
            .map_err(WalletError::Signing)?
            .to_eth_address()
            .expect("finite point");
        self.accounts.push(Account {
            private_key,
            address,
            label,
        });
        Ok(address)
    }

    /// All account addresses, in derivation order.
    pub fn addresses(&self) -> Vec<H160> {
        self.accounts.iter().map(|a| a.address).collect()
    }

    /// Looks up an account.
    pub fn account(&self, address: &H160) -> Option<&Account> {
        self.accounts.iter().find(|a| a.address == *address)
    }

    /// Builds the confirmation summary for a prospective transaction —
    /// the dialog of Fig 5a — without signing anything.
    pub fn summarize(
        &self,
        chain: &Chain,
        from: &H160,
        to: Option<&H160>,
        value: &U256,
        data: &[u8],
    ) -> TxSummary {
        let estimated_gas = chain.estimate_gas(from, to, data);
        let tip = self.default_priority_fee;
        let price = chain.base_fee().wrapping_add(&tip);
        // MetaMask's max fee heuristic: 2× base fee + tip.
        let max_fee = chain
            .base_fee()
            .wrapping_mul(&U256::from(2u64))
            .wrapping_add(&tip);
        let fee = U256::from(estimated_gas).wrapping_mul(&price);
        let kind = match to {
            None => "Contract Deployment".to_string(),
            Some(_) if data.is_empty() => "Transfer".to_string(),
            Some(_) => "Contract Interaction".to_string(),
        };
        TxSummary {
            kind,
            estimated_gas,
            max_fee_per_gas: max_fee,
            estimated_fee_wei: fee,
            value: *value,
            total_wei: fee.wrapping_add(value),
        }
    }

    /// Builds and signs a transaction — the "Confirm" button up to, but not
    /// including, the broadcast: estimates gas (with a 1.5× safety margin,
    /// as MetaMask applies) against the wallet's view of the chain, signs
    /// with the account's key, and returns the raw encoded transaction ready
    /// for `eth_sendRawTransaction`.
    pub fn sign_raw(
        &self,
        chain: &Chain,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<Vec<u8>, WalletError> {
        let account = self
            .account(from)
            .ok_or(WalletError::UnknownAccount(*from))?;
        let estimated = chain.estimate_gas(from, to.as_ref(), &data);
        let gas_limit = estimated + estimated / 2;
        let tip = self.default_priority_fee;
        let max_fee = chain
            .base_fee()
            .wrapping_mul(&U256::from(2u64))
            .wrapping_add(&tip);
        let request = TxRequest {
            chain_id: chain.config().chain_id,
            nonce: chain.nonce(from) + self.pending_count(chain, from),
            max_priority_fee_per_gas: tip,
            max_fee_per_gas: max_fee,
            gas_limit,
            to,
            value,
            data,
        };
        let tx = sign_tx(request, &account.private_key).map_err(WalletError::Signing)?;
        Ok(tx.encode())
    }

    /// Signs and submits a transaction — `sign_raw` plus the broadcast into
    /// the chain's mempool. Returns the transaction hash.
    pub fn send(
        &self,
        chain: &mut Chain,
        from: &H160,
        to: Option<H160>,
        value: U256,
        data: Vec<u8>,
    ) -> Result<H256, WalletError> {
        let raw = self.sign_raw(chain, from, to, value, data)?;
        Ok(chain.submit_raw(&raw)?)
    }

    /// Counts this sender's transactions already waiting in the mempool so
    /// that several sends within one block get consecutive nonces.
    fn pending_count(&self, _chain: &Chain, _from: &H160) -> u64 {
        // The chain's mempool is not exposed per-sender; the OFL-W3 workflow
        // waits for each confirmation before the next send, so 0 is correct
        // for every paper scenario. Multi-tx-per-block senders should manage
        // nonces explicitly via `ofl_eth::tx`.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainConfig;
    use ofl_primitives::wei_per_eth;

    fn chain_with(wallet: &Wallet) -> Chain {
        let genesis: Vec<(H160, U256)> = wallet
            .addresses()
            .iter()
            .map(|a| (*a, wei_per_eth()))
            .collect();
        Chain::new(ChainConfig::default(), &genesis)
    }

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        let w1 = Wallet::from_seed("ofl-w3 demo", 10);
        let w2 = Wallet::from_seed("ofl-w3 demo", 10);
        assert_eq!(w1.addresses(), w2.addresses());
        let unique: std::collections::HashSet<_> = w1.addresses().into_iter().collect();
        assert_eq!(unique.len(), 10);
        let w3 = Wallet::from_seed("different seed", 10);
        assert_ne!(w1.addresses()[0], w3.addresses()[0]);
    }

    #[test]
    fn send_transfer_end_to_end() {
        let wallet = Wallet::from_seed("seed", 2);
        let mut chain = chain_with(&wallet);
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let hash = wallet
            .send(&mut chain, &a, Some(b), U256::from(12345u64), Vec::new())
            .unwrap();
        chain.mine_block(12);
        let receipt = chain.receipt(&hash).unwrap();
        assert!(receipt.is_success());
        assert_eq!(
            chain.balance(&b),
            wei_per_eth().wrapping_add(&U256::from(12345u64))
        );
    }

    #[test]
    fn summary_kinds() {
        let wallet = Wallet::from_seed("seed", 2);
        let chain = chain_with(&wallet);
        let [a, b]: [H160; 2] = wallet.addresses().try_into().unwrap();
        let transfer = wallet.summarize(&chain, &a, Some(&b), &U256::ONE, &[]);
        assert_eq!(transfer.kind, "Transfer");
        assert_eq!(transfer.estimated_gas, 21_000);
        let deploy = wallet.summarize(&chain, &a, None, &U256::ZERO, &[0x00]);
        assert_eq!(deploy.kind, "Contract Deployment");
        let interact = wallet.summarize(&chain, &a, Some(&b), &U256::ZERO, &[1, 2, 3, 4]);
        assert_eq!(interact.kind, "Contract Interaction");
        // Display renders ETH values.
        assert!(transfer.display().contains("ETH"));
    }

    #[test]
    fn unknown_sender_rejected() {
        let wallet = Wallet::from_seed("seed", 1);
        let mut chain = chain_with(&wallet);
        let stranger = H160::from_slice(&[9; 20]);
        assert!(matches!(
            wallet.send(&mut chain, &stranger, None, U256::ZERO, vec![]),
            Err(WalletError::UnknownAccount(_))
        ));
    }

    #[test]
    fn import_key_roundtrip() {
        let mut wallet = Wallet::new();
        let addr = wallet.import_key(U256::ONE, "satoshi?".into()).unwrap();
        assert_eq!(
            addr.to_checksum(),
            "0x7E5F4552091A69125d5DfCb7b8C2659029395Bdf"
        );
        assert!(wallet.import_key(U256::ZERO, "bad".into()).is_err());
    }

    #[test]
    fn checksummed_addresses_printable() {
        // Table 1 of the paper prints checksummed addresses; ensure ours
        // render in that format.
        let wallet = Wallet::from_seed("ofl-w3 owners", 10);
        for addr in wallet.addresses() {
            let cs = addr.to_checksum();
            assert!(cs.starts_with("0x"));
            assert_eq!(cs.len(), 42);
        }
    }
}
