//! The blockchain: mempool, transaction execution, PoA block production
//! with 12-second slots, EIP-1559 base-fee dynamics, and read-only calls.
//!
//! This is the "Sepolia testnet" of the reproduction. Time is externalized —
//! [`Chain::mine_block`] takes the slot timestamp — so the network simulator
//! in `ofl-netsim` can drive block production from its virtual clock and the
//! paper's Fig 7 "waiting for confirmation" latencies emerge naturally.

use crate::block::{tx_root, Block, Bloom, Header, Receipt, TxStatus};
use crate::evm::{Env, Interpreter, Outcome};
use crate::gas;
use crate::state::State;
use crate::tx::{create_address, SignedTx, TxError};
use ofl_primitives::u256::U256;
use ofl_primitives::{H160, H256};
use std::collections::HashMap;

/// Chain-level configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainConfig {
    /// Chain id; defaults to Sepolia's 11155111.
    pub chain_id: u64,
    /// Seconds between blocks (Ethereum PoS slot time: 12 s).
    pub block_time: u64,
    /// Per-block gas limit.
    pub gas_limit: u64,
    /// Genesis base fee, in wei.
    pub initial_base_fee: U256,
    /// PoA block producer / fee recipient.
    pub coinbase: H160,
    /// How many slots a confirmation wait may mine before giving up with a
    /// typed timeout (the old behaviour hardcoded 64 deep inside
    /// `World::mine_until`).
    pub max_wait_slots: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            chain_id: 11_155_111,
            block_time: 12,
            gas_limit: 30_000_000,
            // ~12 gwei: calibrated so CidStorage deployment costs ≈0.002 ETH
            // as reported in the paper's Fig 5 (see EXPERIMENTS.md).
            initial_base_fee: U256::from(12_000_000_000u64),
            coinbase: H160::from_slice(&[0xC0u8; 20]),
            max_wait_slots: 64,
        }
    }
}

/// Errors surfaced when a transaction cannot even enter the mempool or
/// begin execution (execution-time failures produce failed *receipts*
/// instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// Signature/encoding problem.
    Tx(TxError),
    /// Wrong chain id.
    WrongChain { expected: u64, got: u64 },
    /// Nonce lower than the account's current nonce.
    NonceTooLow { expected: u64, got: u64 },
    /// Cannot afford `gas_limit × max_fee + value`.
    InsufficientFunds,
    /// `max_fee_per_gas` below the current base fee.
    FeeTooLow,
    /// Gas limit below intrinsic cost.
    IntrinsicGas,
    /// Gas limit above the block gas limit.
    ExceedsBlockGas,
}

impl From<TxError> for ChainError {
    fn from(e: TxError) -> Self {
        ChainError::Tx(e)
    }
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainError::Tx(e) => write!(f, "transaction: {e}"),
            ChainError::WrongChain { expected, got } => {
                write!(f, "wrong chain id: expected {expected}, got {got}")
            }
            ChainError::NonceTooLow { expected, got } => {
                write!(f, "nonce too low: expected ≥ {expected}, got {got}")
            }
            ChainError::InsufficientFunds => {
                write!(f, "insufficient funds for gas × price + value")
            }
            ChainError::FeeTooLow => write!(f, "max fee per gas below base fee"),
            ChainError::IntrinsicGas => write!(f, "gas limit below intrinsic cost"),
            ChainError::ExceedsBlockGas => write!(f, "gas limit exceeds block gas limit"),
        }
    }
}

impl std::error::Error for ChainError {}

/// An `eth_getLogs`-style filter. `None` fields match everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LogFilter {
    /// First block to scan (inclusive; clamped to 1).
    pub from_block: u64,
    /// Last block to scan (inclusive; clamped to the chain head).
    pub to_block: u64,
    /// Emitting contract address.
    pub address: Option<H160>,
    /// Required first topic (the event signature hash).
    pub topic: Option<H256>,
}

impl LogFilter {
    /// A filter over the whole chain.
    pub fn all() -> LogFilter {
        LogFilter {
            from_block: 1,
            to_block: u64::MAX,
            address: None,
            topic: None,
        }
    }

    /// Restricts to one contract.
    pub fn at_address(mut self, address: H160) -> LogFilter {
        self.address = Some(address);
        self
    }

    /// Restricts to one event signature.
    pub fn with_topic(mut self, topic: H256) -> LogFilter {
        self.topic = Some(topic);
        self
    }

    /// Restricts to the inclusive block range `[from, to]` — what an
    /// incremental event watcher passes so re-polls only scan new blocks.
    pub fn in_blocks(mut self, from: u64, to: u64) -> LogFilter {
        self.from_block = from;
        self.to_block = to;
        self
    }
}

/// One log matched by [`Chain::get_logs`], with its position metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilteredLog {
    /// Block that contains the log.
    pub block_number: u64,
    /// Transaction that emitted it.
    pub tx_hash: H256,
    /// Index within the transaction's logs.
    pub log_index: usize,
    /// The log itself.
    pub log: crate::evm::LogEntry,
}

/// A pending transaction as a mempool watcher sees it: decoded once at
/// submission time, not re-parsed per subscriber. Carries enough for a
/// front-runner to act (who, which contract, which function, what bid)
/// without exposing the raw calldata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingTxEvent {
    /// Transaction hash.
    pub hash: H256,
    /// Recovered sender.
    pub sender: H160,
    /// Recipient (`None` for contract creation).
    pub to: Option<H160>,
    /// First four calldata bytes (the function selector), when present.
    pub selector: Option<[u8; 4]>,
    /// Effective tip per gas as priced against the base fee at submission.
    pub tip: U256,
    /// Sender nonce.
    pub nonce: u64,
}

/// One raw chain event, recorded in publish order. The chain assigns each
/// event a chain-monotonic sequence number at publish time; the `(slot,
/// shard, seq)` delivery key the subscription layer advertises is built
/// from it.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainEvent {
    /// A block was mined.
    Head(Box<Block>),
    /// A mined transaction emitted this log (execution order within the
    /// block).
    Log(FilteredLog),
    /// A transaction entered the mempool.
    Pending(PendingTxEvent),
}

/// The result of a read-only (`eth_call`) execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallResult {
    /// Whether the call succeeded.
    pub success: bool,
    /// Return or revert data.
    pub output: Vec<u8>,
    /// Gas that a transaction doing this would have used (excluding
    /// intrinsic).
    pub gas_used: u64,
}

/// The blockchain simulator.
pub struct Chain {
    config: ChainConfig,
    state: State,
    blocks: Vec<Block>,
    receipts: HashMap<H256, Receipt>,
    tx_index: HashMap<H256, SignedTx>,
    mempool: Vec<SignedTx>,
    base_fee: U256,
    /// Total wei burned via the base fee (EIP-1559).
    burned: U256,
    /// Senders recovered at submission, so mining a pool transaction does
    /// not pay `ecrecover` again on every block attempt (recovery is
    /// deterministic, so the memo can never disagree with a re-run).
    sender_memo: HashMap<H256, H160>,
    /// The raw event log: heads, logs, and pending transactions in publish
    /// order. Empty (and free) until [`Chain::enable_events`] — fleets
    /// without subscribers never buffer anything.
    events: Vec<(u64, ChainEvent)>,
    /// Next event sequence number (chain-monotonic, never reused).
    event_seq: u64,
    /// Whether publish sites record events at all.
    events_enabled: bool,
}

impl Chain {
    /// Creates a chain with the given config and genesis allocations.
    pub fn new(config: ChainConfig, genesis: &[(H160, U256)]) -> Chain {
        let mut state = State::new();
        for (addr, amount) in genesis {
            state
                .credit(addr, amount)
                .expect("genesis allocation overflow");
        }
        let base_fee = config.initial_base_fee;
        Chain {
            config,
            state,
            blocks: Vec::new(),
            receipts: HashMap::new(),
            tx_index: HashMap::new(),
            mempool: Vec::new(),
            base_fee,
            burned: U256::ZERO,
            sender_memo: HashMap::new(),
            events: Vec::new(),
            event_seq: 0,
            events_enabled: false,
        }
    }

    /// Turns on event recording. Off by default so non-subscribing worlds
    /// pay nothing; the first subscription flips it on — consistently
    /// across in-process and remote backends, which is what keeps their
    /// event streams bit-identical.
    pub fn enable_events(&mut self) {
        self.events_enabled = true;
    }

    /// Whether publish sites currently record events.
    pub fn events_enabled(&self) -> bool {
        self.events_enabled
    }

    /// Takes every event published since the last drain, in publish order
    /// with chain-monotonic sequence numbers.
    pub fn drain_events(&mut self) -> Vec<(u64, ChainEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Records one event (no-op until [`Chain::enable_events`]).
    fn publish(&mut self, event: ChainEvent) {
        if self.events_enabled {
            self.events.push((self.event_seq, event));
            self.event_seq += 1;
        }
    }

    /// Chain configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Current base fee.
    pub fn base_fee(&self) -> U256 {
        self.base_fee
    }

    /// Total burned wei.
    pub fn burned(&self) -> U256 {
        self.burned
    }

    /// Current block height (0 = genesis, no blocks mined).
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    /// Account balance.
    pub fn balance(&self, address: &H160) -> U256 {
        self.state.balance(address)
    }

    /// Account nonce.
    pub fn nonce(&self, address: &H160) -> u64 {
        self.state.nonce(address)
    }

    /// Contract code at an address.
    pub fn code(&self, address: &H160) -> &[u8] {
        self.state.code(address)
    }

    /// Raw storage read (for tests/inspection).
    pub fn storage(&self, address: &H160, key: &H256) -> U256 {
        self.state.storage(address, key)
    }

    /// Looks up a mined transaction's receipt.
    pub fn receipt(&self, tx_hash: &H256) -> Option<&Receipt> {
        self.receipts.get(tx_hash)
    }

    /// Looks up a block by number (1-based; block 1 is the first mined).
    pub fn block(&self, number: u64) -> Option<&Block> {
        if number == 0 || number > self.blocks.len() as u64 {
            None
        } else {
            Some(&self.blocks[number as usize - 1])
        }
    }

    /// The latest block, if any.
    pub fn latest_block(&self) -> Option<&Block> {
        self.blocks.last()
    }

    /// Number of transactions waiting in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Whether a submitted transaction is still waiting in the mempool.
    pub fn is_pending(&self, hash: &H256) -> bool {
        self.mempool.iter().any(|tx| tx.hash() == *hash)
    }

    /// `eth_getLogs`: collects logs matching `filter` from the inclusive
    /// block range, using each block's bloom filter to skip blocks that
    /// cannot contain a match.
    pub fn get_logs(&self, filter: &LogFilter) -> Vec<FilteredLog> {
        let from = filter.from_block.max(1);
        let to = filter.to_block.min(self.height());
        let mut out = Vec::new();
        for number in from..=to {
            let block = &self.blocks[number as usize - 1];
            // Bloom pre-filter: a definite miss skips receipt scanning.
            if let Some(addr) = &filter.address {
                if !block.header.bloom.contains(addr.as_bytes()) {
                    continue;
                }
            }
            if let Some(topic) = &filter.topic {
                if !block.header.bloom.contains(topic.as_bytes()) {
                    continue;
                }
            }
            for tx_hash in &block.tx_hashes {
                let receipt = &self.receipts[tx_hash];
                for (log_index, log) in receipt.logs.iter().enumerate() {
                    if let Some(addr) = &filter.address {
                        if log.address != *addr {
                            continue;
                        }
                    }
                    if let Some(topic) = &filter.topic {
                        if log.topics.first() != Some(topic) {
                            continue;
                        }
                    }
                    out.push(FilteredLog {
                        block_number: number,
                        tx_hash: *tx_hash,
                        log_index,
                        log: log.clone(),
                    });
                }
            }
        }
        out
    }

    /// Validates a signed transaction and queues it. Returns its hash.
    pub fn submit(&mut self, tx: SignedTx) -> Result<H256, ChainError> {
        let sender = tx.recover_sender()?;
        let req = &tx.request;
        if req.chain_id != self.config.chain_id {
            return Err(ChainError::WrongChain {
                expected: self.config.chain_id,
                got: req.chain_id,
            });
        }
        let current_nonce = self.state.nonce(&sender);
        // Allow future nonces (they wait in the pool); reject stale ones.
        if req.nonce < current_nonce {
            return Err(ChainError::NonceTooLow {
                expected: current_nonce,
                got: req.nonce,
            });
        }
        if req.gas_limit > self.config.gas_limit {
            return Err(ChainError::ExceedsBlockGas);
        }
        if req.gas_limit < gas::intrinsic_gas(&req.data, req.is_create()) {
            return Err(ChainError::IntrinsicGas);
        }
        let max_cost = U256::from(req.gas_limit)
            .checked_mul(&req.max_fee_per_gas)
            .and_then(|c| c.checked_add(&req.value))
            .ok_or(ChainError::InsufficientFunds)?;
        if self.state.balance(&sender) < max_cost {
            return Err(ChainError::InsufficientFunds);
        }
        let hash = tx.hash();
        if self.events_enabled {
            let selector = (req.data.len() >= 4).then(|| {
                let mut s = [0u8; 4];
                s.copy_from_slice(&req.data[..4]);
                s
            });
            let event = PendingTxEvent {
                hash,
                sender,
                to: req.to,
                selector,
                tip: effective_tip(&tx, &self.base_fee),
                nonce: req.nonce,
            };
            self.publish(ChainEvent::Pending(event));
        }
        self.sender_memo.insert(hash, sender);
        self.mempool.push(tx);
        Ok(hash)
    }

    /// Submits a raw encoded transaction (`eth_sendRawTransaction`).
    pub fn submit_raw(&mut self, raw: &[u8]) -> Result<H256, ChainError> {
        let tx = SignedTx::decode(raw)?;
        self.submit(tx)
    }

    /// Mines one block at `timestamp`, executing mempool transactions in
    /// order until the block gas limit is reached. Returns the new block.
    pub fn mine_block(&mut self, timestamp: u64) -> Block {
        let number = self.height() + 1;
        let parent_hash = self.latest_block().map(|b| b.hash()).unwrap_or(H256::ZERO);
        let mut included = Vec::new();
        let mut receipts = Vec::new();
        let mut gas_used_total = 0u64;
        let mut bloom = Bloom::default();
        let mut remaining = Vec::new();

        let mut pool = std::mem::take(&mut self.mempool);
        // Builder policy: highest effective tip first, as priced against this
        // block's base fee. The sort is stable, so submission order breaks
        // ties and a sender's equal-tip nonce run keeps its relative order.
        let base = self.base_fee;
        pool.sort_by_key(|tx| std::cmp::Reverse(effective_tip(tx, &base)));
        for tx in pool {
            if gas_used_total + tx.request.gas_limit > self.config.gas_limit {
                remaining.push(tx);
                continue;
            }
            // Not ready (future nonce): keep for a later block.
            let sender = match self.sender_memo.get(&tx.hash()).copied() {
                Some(s) => s,
                None => match tx.recover_sender() {
                    Ok(s) => s,
                    Err(_) => continue, // drop unverifiable txs
                },
            };
            if tx.request.nonce != self.state.nonce(&sender) {
                if tx.request.nonce > self.state.nonce(&sender) {
                    remaining.push(tx);
                }
                continue;
            }
            match self.execute(&tx, &sender, number, timestamp) {
                Ok(receipt) => {
                    gas_used_total += receipt.gas_used;
                    for log in &receipt.logs {
                        bloom.accrue_log(log);
                    }
                    included.push(tx.hash());
                    self.tx_index.insert(tx.hash(), tx);
                    receipts.push(receipt);
                }
                Err(_) => {
                    // Became invalid since submission (e.g. balance spent);
                    // drop it, as real clients evict such transactions.
                }
            }
        }
        self.mempool = remaining;
        // Only pool transactions can be mined again; drop memo entries for
        // everything that left the pool this block.
        if self.mempool.is_empty() {
            self.sender_memo.clear();
        } else {
            let live: std::collections::HashSet<H256> =
                self.mempool.iter().map(|tx| tx.hash()).collect();
            self.sender_memo.retain(|h, _| live.contains(h));
        }

        let header = Header {
            parent_hash,
            number,
            timestamp,
            coinbase: self.config.coinbase,
            gas_used: gas_used_total,
            gas_limit: self.config.gas_limit,
            base_fee: self.base_fee,
            tx_root: tx_root(&included),
            bloom,
        };
        let block = Block {
            header,
            tx_hashes: included,
        };
        if self.events_enabled {
            // Head first, then this block's logs in execution order — the
            // delivery-order contract subscribers rely on.
            self.publish(ChainEvent::Head(Box::new(block.clone())));
            let log_events: Vec<ChainEvent> = receipts
                .iter()
                .flat_map(|r| {
                    r.logs.iter().enumerate().map(|(log_index, log)| {
                        ChainEvent::Log(FilteredLog {
                            block_number: number,
                            tx_hash: r.tx_hash,
                            log_index,
                            log: log.clone(),
                        })
                    })
                })
                .collect();
            for event in log_events {
                self.publish(event);
            }
        }
        // lint: ordered-ok(receipts here is the per-block Vec in execution order, not the receipts map)
        for r in receipts {
            self.receipts.insert(r.tx_hash, r);
        }
        self.blocks.push(block.clone());
        self.update_base_fee(gas_used_total);
        block
    }

    /// EIP-1559 base fee update: ±1/8 proportional to deviation from the
    /// half-full target.
    fn update_base_fee(&mut self, gas_used: u64) {
        let target = self.config.gas_limit / 2;
        if gas_used == target {
            return;
        }
        let base = self.base_fee;
        if gas_used > target {
            let delta_num = base
                .wrapping_mul(&U256::from(gas_used - target))
                .div_rem(&U256::from(target))
                .0
                .div_rem(&U256::from(8u64))
                .0;
            let delta = delta_num.max(U256::ONE);
            self.base_fee = base.wrapping_add(&delta);
        } else {
            let delta = base
                .wrapping_mul(&U256::from(target - gas_used))
                .div_rem(&U256::from(target))
                .0
                .div_rem(&U256::from(8u64))
                .0;
            self.base_fee = base
                .checked_sub(&delta)
                .unwrap_or(U256::ZERO)
                .max(U256::from(7u64));
        }
    }

    /// Executes a validated transaction against the state. Only returns
    /// `Err` when the transaction cannot pay for itself; EVM-level failures
    /// produce receipts with `Reverted`/`Failed` status.
    fn execute(
        &mut self,
        tx: &SignedTx,
        sender: &H160,
        block_number: u64,
        timestamp: u64,
    ) -> Result<Receipt, ChainError> {
        let req = &tx.request;
        if req.max_fee_per_gas < self.base_fee {
            return Err(ChainError::FeeTooLow);
        }
        // effective price = base fee + min(tip, max_fee − base fee)
        let max_tip = req.max_fee_per_gas.wrapping_sub(&self.base_fee);
        let tip = if req.max_priority_fee_per_gas < max_tip {
            req.max_priority_fee_per_gas
        } else {
            max_tip
        };
        let price = self.base_fee.wrapping_add(&tip);

        let upfront = U256::from(req.gas_limit).wrapping_mul(&price);
        let total_needed = upfront
            .checked_add(&req.value)
            .ok_or(ChainError::InsufficientFunds)?;
        if self.state.balance(sender) < total_needed {
            return Err(ChainError::InsufficientFunds);
        }
        // Charge the maximum upfront; unused gas is refunded below.
        self.state
            .debit(sender, &upfront)
            .expect("balance checked above");
        let nonce_before = self.state.nonce(sender);
        self.state.bump_nonce(sender);

        let intrinsic = gas::intrinsic_gas(&req.data, req.is_create());
        debug_assert!(req.gas_limit >= intrinsic, "validated at submit");
        let exec_gas = req.gas_limit - intrinsic;

        // Everything past this point can roll back on failure, except the
        // fee and nonce which stay.
        let snapshot = self.state.snapshot();

        let (status, mut gas_used, refund, logs, contract_address, output) = if req.is_create() {
            self.execute_create(
                req,
                sender,
                nonce_before,
                price,
                block_number,
                timestamp,
                exec_gas,
            )
        } else {
            self.execute_call(req, sender, price, block_number, timestamp, exec_gas)
        };

        if status != TxStatus::Success {
            self.state = snapshot;
        }

        // EIP-3529 refund cap: at most gas_used / 5.
        let capped_refund = refund.min(gas_used / gas::MAX_REFUND_QUOTIENT);
        gas_used -= capped_refund;
        let total_gas = intrinsic + gas_used;

        // Return unused gas.
        let refund_wei = U256::from(req.gas_limit - total_gas).wrapping_mul(&price);
        self.state
            .credit(sender, &refund_wei)
            .expect("refund cannot overflow");
        // Tip to coinbase; base-fee share is burned.
        let tip_wei = U256::from(total_gas).wrapping_mul(&tip);
        let coinbase = self.config.coinbase;
        self.state
            .credit(&coinbase, &tip_wei)
            .expect("tip cannot overflow");
        self.burned = self
            .burned
            .wrapping_add(&U256::from(total_gas).wrapping_mul(&self.base_fee));

        Ok(Receipt {
            tx_hash: tx.hash(),
            status,
            gas_used: total_gas,
            effective_gas_price: price,
            fee: U256::from(total_gas).wrapping_mul(&price),
            contract_address,
            logs,
            block_number,
            output,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_create(
        &mut self,
        req: &crate::tx::TxRequest,
        sender: &H160,
        nonce_before: u64,
        price: U256,
        block_number: u64,
        timestamp: u64,
        exec_gas: u64,
    ) -> ExecOutcome {
        let new_address = create_address(sender, nonce_before);
        // Endow the new contract with the transaction value.
        if self
            .state
            .transfer(sender, &new_address, &req.value)
            .is_err()
        {
            return (TxStatus::Failed, exec_gas, 0, Vec::new(), None, Vec::new());
        }
        let env = self.env_for(
            req,
            sender,
            new_address,
            price,
            block_number,
            timestamp,
            Vec::new(),
        );
        let result = Interpreter::new(&mut self.state, env, req.data.clone(), exec_gas).run();
        match result.outcome {
            Outcome::Success => {
                let runtime = result.output;
                let deposit_cost = gas::CODE_DEPOSIT_BYTE * runtime.len() as u64;
                if result.gas_used + deposit_cost > exec_gas {
                    return (TxStatus::Failed, exec_gas, 0, Vec::new(), None, Vec::new());
                }
                self.state.account_mut(&new_address).code = runtime;
                (
                    TxStatus::Success,
                    result.gas_used + deposit_cost,
                    result.refund,
                    result.logs,
                    Some(new_address),
                    Vec::new(),
                )
            }
            Outcome::Revert => (
                TxStatus::Reverted,
                result.gas_used,
                0,
                Vec::new(),
                None,
                result.output,
            ),
            _ => (TxStatus::Failed, exec_gas, 0, Vec::new(), None, Vec::new()),
        }
    }

    fn execute_call(
        &mut self,
        req: &crate::tx::TxRequest,
        sender: &H160,
        price: U256,
        block_number: u64,
        timestamp: u64,
        exec_gas: u64,
    ) -> ExecOutcome {
        let to = req.to.expect("call path requires recipient");
        if self.state.transfer(sender, &to, &req.value).is_err() {
            return (TxStatus::Failed, exec_gas, 0, Vec::new(), None, Vec::new());
        }
        let code = self.state.code(&to).to_vec();
        if code.is_empty() {
            // Plain value transfer: no execution.
            return (TxStatus::Success, 0, 0, Vec::new(), None, Vec::new());
        }
        let env = self.env_for(
            req,
            sender,
            to,
            price,
            block_number,
            timestamp,
            req.data.clone(),
        );
        let result = Interpreter::new(&mut self.state, env, code, exec_gas).run();
        match result.outcome {
            Outcome::Success => (
                TxStatus::Success,
                result.gas_used,
                result.refund,
                result.logs,
                None,
                result.output,
            ),
            Outcome::Revert => (
                TxStatus::Reverted,
                result.gas_used,
                0,
                Vec::new(),
                None,
                result.output,
            ),
            _ => (TxStatus::Failed, exec_gas, 0, Vec::new(), None, Vec::new()),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn env_for(
        &self,
        req: &crate::tx::TxRequest,
        sender: &H160,
        address: H160,
        price: U256,
        block_number: u64,
        timestamp: u64,
        calldata: Vec<u8>,
    ) -> Env {
        Env {
            address,
            caller: *sender,
            origin: *sender,
            call_value: req.value,
            calldata,
            gas_price: price,
            block_number,
            timestamp,
            gas_limit: self.config.gas_limit,
            chain_id: self.config.chain_id,
            base_fee: self.base_fee,
        }
    }

    /// Read-only call (`eth_call`): executes against a scratch copy of the
    /// state. Free — this is why the paper's Step 5 "download CIDs" incurs
    /// no gas fee.
    pub fn call(&self, from: &H160, to: &H160, data: Vec<u8>) -> CallResult {
        let code = self.state.code(to).to_vec();
        if code.is_empty() {
            return CallResult {
                success: true,
                output: Vec::new(),
                gas_used: 0,
            };
        }
        let env = Env {
            address: *to,
            caller: *from,
            origin: *from,
            call_value: U256::ZERO,
            calldata: data,
            gas_price: self.base_fee,
            block_number: self.height() + 1,
            timestamp: self.latest_block().map(|b| b.header.timestamp).unwrap_or(0),
            gas_limit: self.config.gas_limit,
            chain_id: self.config.chain_id,
            base_fee: self.base_fee,
        };
        let mut scratch = self.state.clone();
        let result = Interpreter::new(&mut scratch, env, code, self.config.gas_limit).run();
        CallResult {
            success: result.is_success(),
            gas_used: result.gas_used,
            output: result.output,
        }
    }

    /// Estimates the total gas a transaction would use (intrinsic +
    /// execution), like `eth_estimateGas`.
    pub fn estimate_gas(&self, from: &H160, to: Option<&H160>, data: &[u8]) -> u64 {
        match to {
            Some(to) => {
                let result = self.call(from, to, data.to_vec());
                gas::intrinsic_gas(data, false) + result.gas_used
            }
            None => {
                // Creation: simulate init execution + deposit.
                let env = Env {
                    address: create_address(from, self.state.nonce(from)),
                    caller: *from,
                    origin: *from,
                    call_value: U256::ZERO,
                    calldata: Vec::new(),
                    gas_price: self.base_fee,
                    block_number: self.height() + 1,
                    timestamp: 0,
                    gas_limit: self.config.gas_limit,
                    chain_id: self.config.chain_id,
                    base_fee: self.base_fee,
                };
                let mut scratch = self.state.clone();
                let result =
                    Interpreter::new(&mut scratch, env, data.to_vec(), self.config.gas_limit).run();
                gas::intrinsic_gas(data, true)
                    + result.gas_used
                    + gas::CODE_DEPOSIT_BYTE * result.output.len() as u64
            }
        }
    }

    /// Direct state access for integration tests and the faucet.
    pub fn state_mut(&mut self) -> &mut State {
        &mut self.state
    }

    /// Read-only state access.
    pub fn state(&self) -> &State {
        &self.state
    }
}

/// The tip a transaction actually pays per gas at `base_fee`:
/// `min(max_priority_fee, max_fee − base_fee)`, zero when underwater.
fn effective_tip(tx: &SignedTx, base_fee: &U256) -> U256 {
    let headroom = tx
        .request
        .max_fee_per_gas
        .checked_sub(base_fee)
        .unwrap_or(U256::ZERO);
    if tx.request.max_priority_fee_per_gas < headroom {
        tx.request.max_priority_fee_per_gas
    } else {
        headroom
    }
}

type ExecOutcome = (
    TxStatus,
    u64,
    u64,
    Vec<crate::evm::LogEntry>,
    Option<H160>,
    Vec<u8>,
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secp256k1;
    use crate::tx::{sign_tx, TxRequest};
    use ofl_primitives::wei_per_eth;

    fn key(i: u64) -> U256 {
        U256::from(1_000_000 + i)
    }

    fn addr_of(k: &U256) -> H160 {
        secp256k1::public_key(k).unwrap().to_eth_address().unwrap()
    }

    fn funded_chain(n_accounts: u64) -> Chain {
        let genesis: Vec<(H160, U256)> = (0..n_accounts)
            .map(|i| (addr_of(&key(i)), wei_per_eth()))
            .collect();
        Chain::new(ChainConfig::default(), &genesis)
    }

    fn transfer_req(chain: &Chain, from: u64, to: H160, value: U256) -> TxRequest {
        TxRequest {
            chain_id: chain.config().chain_id,
            nonce: chain.nonce(&addr_of(&key(from))),
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 21_000,
            to: Some(to),
            value,
            data: Vec::new(),
        }
    }

    #[test]
    fn plain_transfer_executes() {
        let mut chain = funded_chain(2);
        let to = addr_of(&key(1));
        let value = U256::from_u128(1_000_000_000_000_000);
        let tx = sign_tx(transfer_req(&chain, 0, to, value), &key(0)).unwrap();
        let hash = chain.submit(tx).unwrap();
        let block = chain.mine_block(12);
        assert_eq!(block.tx_hashes, vec![hash]);
        let receipt = chain.receipt(&hash).unwrap();
        assert!(receipt.is_success());
        assert_eq!(receipt.gas_used, 21_000);
        assert_eq!(chain.balance(&to), wei_per_eth().wrapping_add(&value));
        // Sender lost value + fee.
        let sender = addr_of(&key(0));
        let expect_spent = value.wrapping_add(&receipt.fee);
        assert_eq!(
            chain.balance(&sender),
            wei_per_eth().wrapping_sub(&expect_spent)
        );
    }

    #[test]
    fn fee_splits_into_burn_and_tip() {
        let mut chain = funded_chain(2);
        let to = addr_of(&key(1));
        let tx = sign_tx(transfer_req(&chain, 0, to, U256::ONE), &key(0)).unwrap();
        chain.submit(tx).unwrap();
        let base_fee = chain.base_fee();
        chain.mine_block(12);
        let tip = U256::from(21_000u64).wrapping_mul(&U256::from(1_500_000_000u64));
        let burn = U256::from(21_000u64).wrapping_mul(&base_fee);
        assert_eq!(chain.balance(&chain.config().coinbase), tip);
        assert_eq!(chain.burned(), burn);
    }

    #[test]
    fn nonce_ordering_enforced() {
        let mut chain = funded_chain(2);
        let to = addr_of(&key(1));
        // Submit nonce 1 before nonce 0: both accepted, both mined in order.
        let mut req1 = transfer_req(&chain, 0, to, U256::ONE);
        req1.nonce = 1;
        let tx1 = sign_tx(req1, &key(0)).unwrap();
        let req0 = transfer_req(&chain, 0, to, U256::ONE);
        let tx0 = sign_tx(req0, &key(0)).unwrap();
        chain.submit(tx1).unwrap();
        chain.submit(tx0).unwrap();
        let b1 = chain.mine_block(12);
        assert_eq!(b1.tx_hashes.len(), 1); // only nonce 0 ready
        let b2 = chain.mine_block(24);
        assert_eq!(b2.tx_hashes.len(), 1); // nonce 1 now ready
        assert_eq!(chain.nonce(&addr_of(&key(0))), 2);
    }

    #[test]
    fn stale_nonce_rejected_at_submit() {
        let mut chain = funded_chain(2);
        let to = addr_of(&key(1));
        let tx = sign_tx(transfer_req(&chain, 0, to, U256::ONE), &key(0)).unwrap();
        chain.submit(tx.clone()).unwrap();
        chain.mine_block(12);
        assert!(matches!(
            chain.submit(tx),
            Err(ChainError::NonceTooLow { .. })
        ));
    }

    #[test]
    fn insufficient_funds_rejected() {
        let mut chain = funded_chain(2);
        let to = addr_of(&key(1));
        let tx = sign_tx(
            transfer_req(&chain, 0, to, wei_per_eth().wrapping_mul(&U256::from(2u64))),
            &key(0),
        )
        .unwrap();
        assert_eq!(chain.submit(tx), Err(ChainError::InsufficientFunds));
    }

    #[test]
    fn wrong_chain_rejected() {
        let mut chain = funded_chain(1);
        let mut req = transfer_req(&chain, 0, H160::ZERO, U256::ONE);
        req.chain_id = 1;
        let tx = sign_tx(req, &key(0)).unwrap();
        assert!(matches!(
            chain.submit(tx),
            Err(ChainError::WrongChain { .. })
        ));
    }

    #[test]
    fn contract_deploy_and_call() {
        // Deploy a contract that returns 42 for any call.
        // runtime: PUSH1 42 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
        let runtime = vec![0x60, 0x2a, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3];
        let init = crate::asm::deployment_code(&runtime);
        let mut chain = funded_chain(1);
        let req = TxRequest {
            chain_id: chain.config().chain_id,
            nonce: 0,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 200_000,
            to: None,
            value: U256::ZERO,
            data: init,
        };
        let tx = sign_tx(req, &key(0)).unwrap();
        let hash = chain.submit(tx).unwrap();
        chain.mine_block(12);
        let receipt = chain.receipt(&hash).unwrap().clone();
        assert!(receipt.is_success());
        let contract = receipt.contract_address.unwrap();
        assert_eq!(chain.code(&contract), &runtime[..]);
        // Read it.
        let out = chain.call(&addr_of(&key(0)), &contract, Vec::new());
        assert!(out.success);
        assert_eq!(U256::from_be_slice(&out.output), U256::from(42u64));
        // Deployment gas: intrinsic (53000 + calldata) + exec + deposit.
        assert!(receipt.gas_used > 53_000 + 200 * runtime.len() as u64);
    }

    #[test]
    fn reverting_tx_charges_fee_but_rolls_back_state() {
        // Contract that stores then reverts: PUSH1 1 PUSH1 0 SSTORE PUSH1 0 PUSH1 0 REVERT
        let runtime = vec![0x60, 0x01, 0x60, 0x00, 0x55, 0x60, 0x00, 0x60, 0x00, 0xfd];
        let init = crate::asm::deployment_code(&runtime);
        let mut chain = funded_chain(1);
        let sender = addr_of(&key(0));
        let deploy = TxRequest {
            chain_id: chain.config().chain_id,
            nonce: 0,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 200_000,
            to: None,
            value: U256::ZERO,
            data: init,
        };
        let dtx = sign_tx(deploy, &key(0)).unwrap();
        let dhash = chain.submit(dtx).unwrap();
        chain.mine_block(12);
        let contract = chain.receipt(&dhash).unwrap().contract_address.unwrap();

        let balance_before = chain.balance(&sender);
        let call = TxRequest {
            chain_id: chain.config().chain_id,
            nonce: 1,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 100_000,
            to: Some(contract),
            value: U256::ZERO,
            data: Vec::new(),
        };
        let ctx = sign_tx(call, &key(0)).unwrap();
        let chash = chain.submit(ctx).unwrap();
        chain.mine_block(24);
        let receipt = chain.receipt(&chash).unwrap();
        assert_eq!(receipt.status, TxStatus::Reverted);
        // Storage rolled back.
        assert_eq!(chain.storage(&contract, &H256::ZERO), U256::ZERO);
        // Fee charged.
        assert!(chain.balance(&sender) < balance_before);
        // Nonce advanced.
        assert_eq!(chain.nonce(&sender), 2);
    }

    #[test]
    fn base_fee_rises_when_blocks_full() {
        let cfg = ChainConfig {
            gas_limit: 42_000, // target = 21000: one transfer exactly fills it
            ..ChainConfig::default()
        };
        let genesis = vec![(addr_of(&key(0)), wei_per_eth())];
        let mut chain = Chain::new(cfg, &genesis);
        let fee0 = chain.base_fee();
        // Two transfers = 42000 gas = 2× target → base fee must rise.
        for n in 0..2 {
            let req = TxRequest {
                chain_id: chain.config().chain_id,
                nonce: n,
                max_priority_fee_per_gas: U256::from(1_000_000_000u64),
                max_fee_per_gas: U256::from(100_000_000_000u64),
                gas_limit: 21_000,
                to: Some(H160::from_slice(&[9; 20])),
                value: U256::ONE,
                data: Vec::new(),
            };
            chain.submit(sign_tx(req, &key(0)).unwrap()).unwrap();
        }
        chain.mine_block(12);
        assert!(chain.base_fee() > fee0);
        // Empty block → falls.
        let fee1 = chain.base_fee();
        chain.mine_block(24);
        assert!(chain.base_fee() < fee1);
    }

    #[test]
    fn same_slot_txs_from_distinct_senders_share_a_block_ordered_by_tip() {
        // The invariant the discrete-event session engine relies on: many
        // owners submitting within one 12 s window land in ONE block, and
        // the builder orders them by effective tip, not submission order.
        let mut chain = funded_chain(3);
        let to = H160::from_slice(&[7; 20]);
        let mut hashes = Vec::new();
        // Submission order: lowest tip first — the block must invert it.
        for (i, tip_gwei) in [1u64, 2, 3].into_iter().enumerate() {
            let mut req = transfer_req(&chain, i as u64, to, U256::ONE);
            req.max_priority_fee_per_gas = U256::from(tip_gwei * 1_000_000_000);
            let tx = sign_tx(req, &key(i as u64)).unwrap();
            hashes.push(chain.submit(tx).unwrap());
        }
        let block = chain.mine_block(12);
        assert_eq!(block.tx_hashes.len(), 3, "same slot ⇒ same block");
        assert_eq!(block.header.number, 1);
        // Effective tip descending: sender 2 (3 gwei), then 1, then 0.
        assert_eq!(block.tx_hashes[0], hashes[2]);
        assert_eq!(block.tx_hashes[1], hashes[1]);
        assert_eq!(block.tx_hashes[2], hashes[0]);
        for h in &hashes {
            assert_eq!(chain.receipt(h).unwrap().block_number, 1);
        }
        assert_eq!(chain.mempool_len(), 0);
    }

    #[test]
    fn tip_ordering_respects_per_sender_nonces() {
        // A sender's own nonce run is never reordered by the tip sort: the
        // stable sort keeps equal-tip transactions in submission order, and
        // a not-yet-ready nonce simply waits for the next block.
        let mut chain = funded_chain(2);
        let to = H160::from_slice(&[8; 20]);
        // Sender 0 submits nonces 0 and 1 with the same tip.
        for nonce in 0..2u64 {
            let mut req = transfer_req(&chain, 0, to, U256::ONE);
            req.nonce = nonce;
            chain.submit(sign_tx(req, &key(0)).unwrap()).unwrap();
        }
        // Sender 1 outbids both.
        let mut rich = transfer_req(&chain, 1, to, U256::ONE);
        rich.max_priority_fee_per_gas = U256::from(9_000_000_000u64);
        let rich_hash = chain.submit(sign_tx(rich, &key(1)).unwrap()).unwrap();
        let block = chain.mine_block(12);
        assert_eq!(block.tx_hashes.len(), 3);
        assert_eq!(block.tx_hashes[0], rich_hash);
        assert_eq!(chain.nonce(&addr_of(&key(0))), 2);
    }

    #[test]
    fn mempool_pending_visibility() {
        let mut chain = funded_chain(2);
        let to = addr_of(&key(1));
        let tx = sign_tx(transfer_req(&chain, 0, to, U256::ONE), &key(0)).unwrap();
        let hash = chain.submit(tx).unwrap();
        assert!(chain.is_pending(&hash));
        chain.mine_block(12);
        assert!(!chain.is_pending(&hash));
        assert!(chain.receipt(&hash).is_some());
    }

    #[test]
    fn value_conservation_across_many_txs() {
        let mut chain = funded_chain(4);
        let initial_supply = chain.state().total_supply();
        for round in 0..3u64 {
            for i in 0..4u64 {
                let to = addr_of(&key((i + 1) % 4));
                let req = TxRequest {
                    chain_id: chain.config().chain_id,
                    nonce: round,
                    max_priority_fee_per_gas: U256::from(1_000_000_000u64),
                    max_fee_per_gas: U256::from(40_000_000_000u64),
                    gas_limit: 21_000,
                    to: Some(to),
                    value: U256::from(1234u64),
                    data: Vec::new(),
                };
                chain.submit(sign_tx(req, &key(i)).unwrap()).unwrap();
            }
            chain.mine_block(12 * (round + 1));
        }
        // supply = remaining balances + burned
        let now = chain.state().total_supply().wrapping_add(&chain.burned());
        assert_eq!(now, initial_supply);
    }

    #[test]
    fn estimate_gas_matches_actual_for_transfer() {
        let chain = funded_chain(2);
        let from = addr_of(&key(0));
        let to = addr_of(&key(1));
        assert_eq!(chain.estimate_gas(&from, Some(&to), &[]), 21_000);
    }

    #[test]
    fn events_are_free_until_enabled() {
        let mut chain = funded_chain(2);
        let to = addr_of(&key(1));
        let tx = sign_tx(transfer_req(&chain, 0, to, U256::ONE), &key(0)).unwrap();
        chain.submit(tx).unwrap();
        chain.mine_block(12);
        assert!(!chain.events_enabled());
        assert!(chain.drain_events().is_empty());
    }

    #[test]
    fn enabled_chain_publishes_pending_head_and_log_events_in_order() {
        let mut chain = funded_chain(2);
        chain.enable_events();
        let to = addr_of(&key(1));
        let mut req = transfer_req(&chain, 0, to, U256::ONE);
        req.data = vec![0xaa, 0xbb, 0xcc, 0xdd, 0x01];
        req.gas_limit = 30_000;
        let tip = req.max_priority_fee_per_gas;
        let nonce = req.nonce;
        let tx = sign_tx(req, &key(0)).unwrap();
        let hash = chain.submit(tx).unwrap();

        let pending = chain.drain_events();
        assert_eq!(pending.len(), 1);
        let (seq0, ChainEvent::Pending(p)) = &pending[0] else {
            panic!("expected a pending event, got {pending:?}");
        };
        assert_eq!(*seq0, 0);
        assert_eq!(p.hash, hash);
        assert_eq!(p.sender, addr_of(&key(0)));
        assert_eq!(p.to, Some(to));
        assert_eq!(p.selector, Some([0xaa, 0xbb, 0xcc, 0xdd]));
        assert_eq!(p.tip, tip);
        assert_eq!(p.nonce, nonce);

        let block = chain.mine_block(12);
        let mined = chain.drain_events();
        // A plain transfer emits no logs: just the head, with the sequence
        // continuing past the drained pending event.
        assert_eq!(mined.len(), 1);
        let (seq1, ChainEvent::Head(head)) = &mined[0] else {
            panic!("expected a head event, got {mined:?}");
        };
        assert_eq!(*seq1, 1);
        assert_eq!(head.hash(), block.hash());
        // Drained means drained.
        assert!(chain.drain_events().is_empty());
    }

    #[test]
    fn log_events_follow_their_head_in_execution_order() {
        // A contract whose runtime emits LOG0 over memory[0..0]:
        // PUSH1 0 PUSH1 0 LOG0 STOP
        let runtime = vec![0x60, 0x00, 0x60, 0x00, 0xa0, 0x00];
        let init = crate::asm::deployment_code(&runtime);
        let mut chain = funded_chain(1);
        let deploy = TxRequest {
            chain_id: chain.config().chain_id,
            nonce: 0,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 200_000,
            to: None,
            value: U256::ZERO,
            data: init,
        };
        let dhash = chain.submit(sign_tx(deploy, &key(0)).unwrap()).unwrap();
        chain.mine_block(12);
        let contract = chain.receipt(&dhash).unwrap().contract_address.unwrap();

        chain.enable_events();
        let call = TxRequest {
            chain_id: chain.config().chain_id,
            nonce: 1,
            max_priority_fee_per_gas: U256::from(1_500_000_000u64),
            max_fee_per_gas: U256::from(40_000_000_000u64),
            gas_limit: 100_000,
            to: Some(contract),
            value: U256::ZERO,
            data: Vec::new(),
        };
        let chash = chain.submit(sign_tx(call, &key(0)).unwrap()).unwrap();
        chain.mine_block(24);
        let events = chain.drain_events();
        // Pending, then head, then the emitted log — seq strictly rising.
        assert_eq!(events.len(), 3);
        assert!(matches!(events[0].1, ChainEvent::Pending(_)));
        assert!(matches!(events[1].1, ChainEvent::Head(_)));
        let ChainEvent::Log(fl) = &events[2].1 else {
            panic!("expected a log event, got {:?}", events[2]);
        };
        assert_eq!(fl.tx_hash, chash);
        assert_eq!(fl.block_number, 2);
        assert_eq!(fl.log.address, contract);
        let seqs: Vec<u64> = events.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn reads_are_free() {
        let chain = funded_chain(1);
        let before = chain.balance(&addr_of(&key(0)));
        let _ = chain.call(
            &addr_of(&key(0)),
            &H160::from_slice(&[1; 20]),
            vec![1, 2, 3],
        );
        assert_eq!(chain.balance(&addr_of(&key(0))), before);
        assert_eq!(chain.height(), 0);
    }
}
