//! Minimal Solidity ABI encoding/decoding covering the types the OFL-W3
//! contracts use: `uint256`, `address`, `bool`, `string`, `bytes`.
//!
//! Function selectors are the first 4 bytes of the Keccak-256 of the
//! canonical signature, exactly as solc computes them, so our hand-assembled
//! contracts are call-compatible with the Solidity source in the paper's
//! Fig 2.

use ofl_primitives::u256::U256;
use ofl_primitives::{keccak256, H160};

/// An ABI value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `uint256`
    Uint(U256),
    /// `address`
    Address(H160),
    /// `bool`
    Bool(bool),
    /// `string` (UTF-8)
    String(String),
    /// `bytes` (dynamic)
    Bytes(Vec<u8>),
}

impl Value {
    fn is_dynamic(&self) -> bool {
        matches!(self, Value::String(_) | Value::Bytes(_))
    }

    /// Extracts a `uint256`, if that is the variant.
    pub fn as_uint(&self) -> Option<U256> {
        match self {
            Value::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `string`, if that is the variant.
    pub fn as_string(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts an `address`, if that is the variant.
    pub fn as_address(&self) -> Option<H160> {
        match self {
            Value::Address(a) => Some(*a),
            _ => None,
        }
    }
}

/// ABI type descriptors used for decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    Uint,
    Address,
    Bool,
    String,
    Bytes,
}

impl Type {
    fn is_dynamic(&self) -> bool {
        matches!(self, Type::String | Type::Bytes)
    }
}

/// Errors from ABI decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbiError {
    /// Data shorter than the encoding requires.
    Truncated,
    /// A dynamic offset or length does not fit in usize / points outside.
    BadOffset,
    /// String payload is not UTF-8.
    InvalidUtf8,
    /// Bool word is neither 0 nor 1.
    InvalidBool,
    /// Data extends past what the encoding consumes — corrupt returndata
    /// that a silent decoder would truncate instead of surfacing.
    TrailingData,
}

impl core::fmt::Display for AbiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            AbiError::Truncated => "ABI data truncated",
            AbiError::BadOffset => "ABI offset/length out of range",
            AbiError::InvalidUtf8 => "ABI string is not UTF-8",
            AbiError::InvalidBool => "ABI bool is not 0 or 1",
            AbiError::TrailingData => "ABI data has trailing bytes past the encoding",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for AbiError {}

/// Computes a 4-byte function selector from a canonical signature like
/// `"uploadCid(string)"`.
pub fn selector(signature: &str) -> [u8; 4] {
    let digest = keccak256(signature.as_bytes());
    [digest[0], digest[1], digest[2], digest[3]]
}

/// Computes an event topic (full 32-byte Keccak of the signature).
pub fn event_topic(signature: &str) -> [u8; 32] {
    keccak256(signature.as_bytes())
}

/// Encodes values per the ABI head/tail scheme (no function selector).
pub fn encode(values: &[Value]) -> Vec<u8> {
    let head_len = values.len() * 32;
    let mut head = Vec::with_capacity(head_len);
    let mut tail = Vec::new();
    for v in values {
        if v.is_dynamic() {
            let offset = U256::from(head_len + tail.len());
            head.extend_from_slice(&offset.to_be_bytes());
            match v {
                Value::String(s) => encode_dynamic_bytes(s.as_bytes(), &mut tail),
                Value::Bytes(b) => encode_dynamic_bytes(b, &mut tail),
                _ => unreachable!(),
            }
        } else {
            head.extend_from_slice(&encode_static(v));
        }
    }
    head.extend_from_slice(&tail);
    head
}

fn encode_static(v: &Value) -> [u8; 32] {
    match v {
        Value::Uint(u) => u.to_be_bytes(),
        Value::Address(a) => a.to_word().0,
        Value::Bool(b) => U256::from(*b as u64).to_be_bytes(),
        _ => unreachable!("dynamic value in static position"),
    }
}

fn encode_dynamic_bytes(data: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&U256::from(data.len()).to_be_bytes());
    out.extend_from_slice(data);
    let pad = (32 - data.len() % 32) % 32;
    out.extend(std::iter::repeat_n(0u8, pad));
}

/// Encodes a function call: selector followed by encoded arguments.
pub fn encode_call(signature: &str, args: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + args.len() * 32);
    out.extend_from_slice(&selector(signature));
    out.extend_from_slice(&encode(args));
    out
}

fn read_word(data: &[u8], at: usize) -> Result<[u8; 32], AbiError> {
    let slice = data.get(at..at + 32).ok_or(AbiError::Truncated)?;
    let mut w = [0u8; 32];
    w.copy_from_slice(slice);
    Ok(w)
}

/// Decodes a tuple of `types` from `data` (no selector). The encoding must
/// consume `data` exactly: unconsumed trailing bytes are corrupt returndata
/// and yield [`AbiError::TrailingData`] rather than being silently dropped.
pub fn decode(types: &[Type], data: &[u8]) -> Result<Vec<Value>, AbiError> {
    let head_len = types.len() * 32;
    // Everything the head consumes, plus the furthest tail byte any dynamic
    // value reaches (tails are 32-byte aligned, matching `encode`).
    let mut consumed_end = head_len;
    let mut out = Vec::with_capacity(types.len());
    for (i, ty) in types.iter().enumerate() {
        let word = read_word(data, i * 32)?;
        if ty.is_dynamic() {
            let offset = U256::from_be_bytes(&word)
                .to_u64()
                .ok_or(AbiError::BadOffset)? as usize;
            let len_word = read_word(data, offset)?;
            let len = U256::from_be_bytes(&len_word)
                .to_u64()
                .ok_or(AbiError::BadOffset)? as usize;
            let payload = data
                .get(offset + 32..offset + 32 + len)
                .ok_or(AbiError::Truncated)?;
            let padded = len.div_ceil(32) * 32;
            consumed_end = consumed_end.max(offset + 32 + padded);
            match ty {
                Type::String => {
                    let s =
                        String::from_utf8(payload.to_vec()).map_err(|_| AbiError::InvalidUtf8)?;
                    out.push(Value::String(s));
                }
                Type::Bytes => out.push(Value::Bytes(payload.to_vec())),
                _ => unreachable!(),
            }
        } else {
            match ty {
                Type::Uint => out.push(Value::Uint(U256::from_be_bytes(&word))),
                Type::Address => out.push(Value::Address(H160::from_slice(&word[12..]))),
                Type::Bool => {
                    let v = U256::from_be_bytes(&word);
                    if v == U256::ZERO {
                        out.push(Value::Bool(false));
                    } else if v == U256::ONE {
                        out.push(Value::Bool(true));
                    } else {
                        return Err(AbiError::InvalidBool);
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    if data.len() > consumed_end {
        return Err(AbiError::TrailingData);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_primitives::hex::to_hex;

    #[test]
    fn known_selectors() {
        // solc-computed selectors: transfer() is the canonical check; the
        // others pin determinism and distinctness.
        assert_eq!(to_hex(&selector("transfer(address,uint256)")), "a9059cbb");
        assert_eq!(to_hex(&selector("balanceOf(address)")), "70a08231");
        assert_ne!(selector("uploadCid(string)"), selector("getCid(uint256)"));
        assert_ne!(selector("cidCount()"), selector("uploadCid(string)"));
    }

    #[test]
    fn encode_uint_is_padded_be() {
        let enc = encode(&[Value::Uint(U256::from(0x1234u64))]);
        assert_eq!(enc.len(), 32);
        assert_eq!(&enc[30..], &[0x12, 0x34]);
        assert!(enc[..30].iter().all(|&b| b == 0));
    }

    #[test]
    fn encode_string_head_tail() {
        let enc = encode(&[Value::String("QmHash".into())]);
        // head: offset 0x20; tail: len 6, padded payload.
        assert_eq!(enc.len(), 32 + 32 + 32);
        assert_eq!(U256::from_be_slice(&enc[..32]), U256::from(32u64));
        assert_eq!(U256::from_be_slice(&enc[32..64]), U256::from(6u64));
        assert_eq!(&enc[64..70], b"QmHash");
        assert!(enc[70..].iter().all(|&b| b == 0));
    }

    #[test]
    fn mixed_static_dynamic_layout() {
        let enc = encode(&[
            Value::Uint(U256::from(7u64)),
            Value::String("abc".into()),
            Value::Bool(true),
        ]);
        // head = 3 words, string tail at offset 96.
        assert_eq!(U256::from_be_slice(&enc[32..64]), U256::from(96u64));
        let dec = decode(&[Type::Uint, Type::String, Type::Bool], &enc).unwrap();
        assert_eq!(dec[0].as_uint().unwrap(), U256::from(7u64));
        assert_eq!(dec[1].as_string().unwrap(), "abc");
        assert_eq!(dec[2], Value::Bool(true));
    }

    #[test]
    fn roundtrip_all_types() {
        let vals = vec![
            Value::Uint(U256::MAX),
            Value::Address(H160::from_slice(&[0xabu8; 20])),
            Value::Bool(false),
            Value::String("hello world, this is a longer string spanning multiple words".into()),
            Value::Bytes(vec![1, 2, 3, 4, 5]),
        ];
        let enc = encode(&vals);
        let dec = decode(
            &[
                Type::Uint,
                Type::Address,
                Type::Bool,
                Type::String,
                Type::Bytes,
            ],
            &enc,
        )
        .unwrap();
        assert_eq!(dec, vals);
    }

    #[test]
    fn encode_call_prepends_selector() {
        let call = encode_call("getCid(uint256)", &[Value::Uint(U256::from(3u64))]);
        assert_eq!(call.len(), 4 + 32);
        assert_eq!(&call[..4], &selector("getCid(uint256)"));
    }

    #[test]
    fn decode_rejects_truncation() {
        assert_eq!(decode(&[Type::Uint], &[0u8; 31]), Err(AbiError::Truncated));
        // Offset pointing past the end.
        let mut bad = U256::from(64u64).to_be_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 16]);
        assert!(decode(&[Type::String], &bad).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        // Static tuple with appended garbage: the old decoder silently
        // truncated; typed bindings need the corruption surfaced.
        let mut enc = encode(&[Value::Uint(U256::from(7u64))]);
        enc.push(0xff);
        assert_eq!(decode(&[Type::Uint], &enc), Err(AbiError::TrailingData));

        // Dynamic tuple with a whole extra word after the tail.
        let mut enc = encode(&[Value::String("QmHash".into())]);
        enc.extend_from_slice(&[0u8; 32]);
        assert_eq!(decode(&[Type::String], &enc), Err(AbiError::TrailingData));

        // Empty type list consumes nothing, so any byte is trailing.
        assert_eq!(decode(&[], &[0u8]), Err(AbiError::TrailingData));
        assert_eq!(decode(&[], &[]), Ok(vec![]));

        // Exact encodings still decode (including tail padding).
        let exact = encode(&[Value::Uint(U256::ONE), Value::String("abc".into())]);
        assert!(decode(&[Type::Uint, Type::String], &exact).is_ok());
    }

    #[test]
    fn decode_rejects_bad_bool() {
        let word = U256::from(2u64).to_be_bytes();
        assert_eq!(decode(&[Type::Bool], &word), Err(AbiError::InvalidBool));
    }

    #[test]
    fn empty_string_roundtrip() {
        let enc = encode(&[Value::String(String::new())]);
        let dec = decode(&[Type::String], &enc).unwrap();
        assert_eq!(dec[0].as_string().unwrap(), "");
    }

    #[test]
    fn cid_string_roundtrip() {
        // A realistic 46-char CIDv0 as sent by uploadCid.
        let cid = "QmYwAPJzv5CZsnA625s3Xf2nemtYgPpHdWEz79ojWnPbdG";
        let enc = encode(&[Value::String(cid.into())]);
        let dec = decode(&[Type::String], &enc).unwrap();
        assert_eq!(dec[0].as_string().unwrap(), cid);
    }
}
