//! A gas-metered EVM interpreter.
//!
//! Implements the arithmetic, control-flow, environment, memory, storage,
//! and logging opcodes that real Solidity dispatch code uses, with the
//! post-Berlin gas schedule from [`crate::gas`] (warm/cold access tracking
//! per EIP-2929, simplified EIP-2200 `SSTORE` pricing, EIP-3529 refund cap).
//!
//! Out of scope (documented in DESIGN.md): inter-contract `CALL`s,
//! `CREATE`-from-contract, `DELEGATECALL`/`STATICCALL`, precompiles, and
//! `SELFDESTRUCT` — the OFL-W3 contracts never use them.

use crate::gas;
use ofl_primitives::u256::U256;
use ofl_primitives::{keccak256, H160, H256};
use std::collections::{HashMap, HashSet};

/// Maximum stack depth, per the Yellow Paper.
pub const STACK_LIMIT: usize = 1024;

/// Execution environment for one message call.
#[derive(Debug, Clone)]
pub struct Env {
    /// Account whose code runs and whose storage is addressed.
    pub address: H160,
    /// Immediate caller.
    pub caller: H160,
    /// Transaction originator.
    pub origin: H160,
    /// Wei sent with the call.
    pub call_value: U256,
    /// Call input data.
    pub calldata: Vec<u8>,
    /// Effective gas price of the transaction.
    pub gas_price: U256,
    /// Current block number.
    pub block_number: u64,
    /// Current block timestamp (seconds).
    pub timestamp: u64,
    /// Block gas limit.
    pub gas_limit: u64,
    /// Chain id (Sepolia = 11155111).
    pub chain_id: u64,
    /// Current block base fee.
    pub base_fee: U256,
}

/// Storage and balance access the interpreter needs from the world state.
pub trait Host {
    /// Reads a storage slot of `address`.
    fn sload(&self, address: &H160, key: &H256) -> U256;
    /// Writes a storage slot of `address`.
    fn sstore(&mut self, address: &H160, key: &H256, value: U256);
    /// Account balance.
    fn balance(&self, address: &H160) -> U256;
}

/// A log record emitted by `LOG0`–`LOG4`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Emitting contract.
    pub address: H160,
    /// Indexed topics (0–4).
    pub topics: Vec<H256>,
    /// Unindexed data payload.
    pub data: Vec<u8>,
}

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `STOP` or `RETURN`; state changes commit.
    Success,
    /// `REVERT`; state changes roll back, unused gas returns.
    Revert,
    /// Gas exhausted; all gas consumed.
    OutOfGas,
    /// Invalid opcode / bad jump / stack violation; all gas consumed.
    Exception(ExecError),
}

/// Exceptional halt reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// Opcode not in our implemented subset (or designated INVALID).
    InvalidOpcode(u8),
    /// Jump target is not a JUMPDEST.
    BadJumpDestination,
    /// Stack underflow.
    StackUnderflow,
    /// Stack beyond 1024 items.
    StackOverflow,
    /// Memory or calldata offset overflowed usize.
    OffsetOverflow,
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::InvalidOpcode(op) => write!(f, "invalid opcode 0x{op:02x}"),
            ExecError::BadJumpDestination => write!(f, "bad jump destination"),
            ExecError::StackUnderflow => write!(f, "stack underflow"),
            ExecError::StackOverflow => write!(f, "stack overflow"),
            ExecError::OffsetOverflow => write!(f, "offset overflow"),
        }
    }
}

/// Result of executing one message call.
#[derive(Debug, Clone)]
pub struct ExecResult {
    /// Terminal state.
    pub outcome: Outcome,
    /// Gas consumed (net of nothing; refunds are applied by the caller).
    pub gas_used: u64,
    /// Accumulated `SSTORE` clearing refund (pre-cap).
    pub refund: u64,
    /// Return or revert payload.
    pub output: Vec<u8>,
    /// Logs emitted (only meaningful on success).
    pub logs: Vec<LogEntry>,
}

impl ExecResult {
    /// True iff the call ended in `Success`.
    pub fn is_success(&self) -> bool {
        self.outcome == Outcome::Success
    }
}

/// The interpreter for one call frame.
pub struct Interpreter<'h, H: Host> {
    host: &'h mut H,
    env: Env,
    code: Vec<u8>,
    valid_jumpdests: HashSet<usize>,
    stack: Vec<U256>,
    memory: Vec<u8>,
    pc: usize,
    gas_remaining: u64,
    gas_limit_call: u64,
    refund: u64,
    logs: Vec<LogEntry>,
    // EIP-2929 warm sets (per-transaction in real clients; per-call here,
    // which is identical for our single-frame transactions).
    warm_slots: HashSet<H256>,
    warm_accounts: HashSet<H160>,
    // Slot values at call entry, for SSTORE original-value pricing.
    original_slots: HashMap<H256, U256>,
}

enum Control {
    Continue,
    Stop(Outcome, Vec<u8>),
}

impl<'h, H: Host> Interpreter<'h, H> {
    /// Prepares a frame to run `code` with `gas` available.
    pub fn new(host: &'h mut H, env: Env, code: Vec<u8>, gas: u64) -> Self {
        let valid_jumpdests = scan_jumpdests(&code);
        Interpreter {
            host,
            env,
            code,
            valid_jumpdests,
            stack: Vec::with_capacity(64),
            memory: Vec::new(),
            pc: 0,
            gas_remaining: gas,
            gas_limit_call: gas,
            refund: 0,
            logs: Vec::new(),
            warm_slots: HashSet::new(),
            warm_accounts: HashSet::new(),
            original_slots: HashMap::new(),
        }
    }

    /// Runs to completion.
    pub fn run(mut self) -> ExecResult {
        loop {
            if self.pc >= self.code.len() {
                // Running off the end is an implicit STOP.
                return self.finish(Outcome::Success, Vec::new());
            }
            let op = self.code[self.pc];
            match self.step(op) {
                Ok(Control::Continue) => {}
                Ok(Control::Stop(outcome, output)) => return self.finish(outcome, output),
                Err(StepError::OutOfGas) => {
                    self.gas_remaining = 0;
                    return self.finish(Outcome::OutOfGas, Vec::new());
                }
                Err(StepError::Exception(e)) => {
                    self.gas_remaining = 0;
                    return self.finish(Outcome::Exception(e), Vec::new());
                }
            }
        }
    }

    fn finish(self, outcome: Outcome, output: Vec<u8>) -> ExecResult {
        ExecResult {
            gas_used: self.gas_limit_call - self.gas_remaining,
            refund: if outcome == Outcome::Success {
                self.refund
            } else {
                0
            },
            logs: if outcome == Outcome::Success {
                self.logs
            } else {
                Vec::new()
            },
            outcome,
            output,
        }
    }

    fn charge(&mut self, amount: u64) -> Result<(), StepError> {
        if self.gas_remaining < amount {
            return Err(StepError::OutOfGas);
        }
        self.gas_remaining -= amount;
        Ok(())
    }

    fn pop(&mut self) -> Result<U256, StepError> {
        self.stack
            .pop()
            .ok_or(StepError::Exception(ExecError::StackUnderflow))
    }

    fn push(&mut self, v: U256) -> Result<(), StepError> {
        if self.stack.len() >= STACK_LIMIT {
            return Err(StepError::Exception(ExecError::StackOverflow));
        }
        self.stack.push(v);
        Ok(())
    }

    /// Charges memory expansion to cover `[offset, offset+len)` and returns
    /// the resolved usize range. Zero-length accesses never expand.
    fn mem_expand(&mut self, offset: &U256, len: &U256) -> Result<(usize, usize), StepError> {
        if len.is_zero() {
            return Ok((0, 0));
        }
        let off = offset
            .to_u64()
            .ok_or(StepError::Exception(ExecError::OffsetOverflow))? as usize;
        let l = len
            .to_u64()
            .ok_or(StepError::Exception(ExecError::OffsetOverflow))? as usize;
        let end = off
            .checked_add(l)
            .ok_or(StepError::Exception(ExecError::OffsetOverflow))?;
        // Guard absurd expansions before computing quadratic cost: the cost
        // of 16 MiB already exceeds any block gas limit we configure.
        if end > (1 << 26) {
            return Err(StepError::OutOfGas);
        }
        let new_words = gas::words(end as u64);
        let old_words = gas::words(self.memory.len() as u64);
        if new_words > old_words {
            let delta = gas::memory_cost(new_words) - gas::memory_cost(old_words);
            self.charge(delta)?;
            self.memory.resize(new_words as usize * 32, 0);
        }
        Ok((off, l))
    }

    fn step(&mut self, op: u8) -> Result<Control, StepError> {
        self.pc += 1;
        match op {
            0x00 => return Ok(Control::Stop(Outcome::Success, Vec::new())), // STOP
            0x01..=0x0b => self.arithmetic(op)?,
            0x10..=0x1d => self.comparison_bitwise(op)?,
            0x20 => self.keccak()?, // KECCAK256
            0x30..=0x48 => self.environment(op)?,
            0x50..=0x5b => return self.memory_flow(op),
            0x5f => {
                // PUSH0
                self.charge(gas::BASE)?;
                self.push(U256::ZERO)?;
            }
            0x60..=0x7f => {
                // PUSH1..PUSH32
                self.charge(gas::VERY_LOW)?;
                let n = (op - 0x5f) as usize;
                let end = (self.pc + n).min(self.code.len());
                let bytes = &self.code[self.pc..end];
                let mut word = [0u8; 32];
                word[32 - n..32 - n + bytes.len()].copy_from_slice(bytes);
                // Missing trailing bytes read as zero, per spec: shift left.
                let mut v = U256::from_be_bytes(&word);
                if bytes.len() < n {
                    v = v.shl(8 * (n - bytes.len()) as u32);
                }
                self.push(v)?;
                self.pc = end;
            }
            0x80..=0x8f => {
                // DUP1..DUP16
                self.charge(gas::VERY_LOW)?;
                let depth = (op - 0x80) as usize + 1;
                if self.stack.len() < depth {
                    return Err(StepError::Exception(ExecError::StackUnderflow));
                }
                let v = self.stack[self.stack.len() - depth];
                self.push(v)?;
            }
            0x90..=0x9f => {
                // SWAP1..SWAP16
                self.charge(gas::VERY_LOW)?;
                let depth = (op - 0x90) as usize + 1;
                let len = self.stack.len();
                if len < depth + 1 {
                    return Err(StepError::Exception(ExecError::StackUnderflow));
                }
                self.stack.swap(len - 1, len - 1 - depth);
            }
            0xa0..=0xa4 => self.log(op)?,
            0xf3 => {
                // RETURN
                let offset = self.pop()?;
                let len = self.pop()?;
                let (off, l) = self.mem_expand(&offset, &len)?;
                let out = self.memory[off..off + l].to_vec();
                return Ok(Control::Stop(Outcome::Success, out));
            }
            0xfd => {
                // REVERT
                let offset = self.pop()?;
                let len = self.pop()?;
                let (off, l) = self.mem_expand(&offset, &len)?;
                let out = self.memory[off..off + l].to_vec();
                return Ok(Control::Stop(Outcome::Revert, out));
            }
            other => return Err(StepError::Exception(ExecError::InvalidOpcode(other))),
        }
        Ok(Control::Continue)
    }

    fn arithmetic(&mut self, op: u8) -> Result<(), StepError> {
        match op {
            0x01 => {
                // ADD
                self.charge(gas::VERY_LOW)?;
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(a.wrapping_add(&b))?;
            }
            0x02 => {
                // MUL
                self.charge(gas::LOW)?;
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(a.wrapping_mul(&b))?;
            }
            0x03 => {
                // SUB
                self.charge(gas::VERY_LOW)?;
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(a.wrapping_sub(&b))?;
            }
            0x04 => {
                // DIV (x/0 = 0)
                self.charge(gas::LOW)?;
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(a.div_rem(&b).0)?;
            }
            0x05 => {
                // SDIV
                self.charge(gas::LOW)?;
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(sdiv(&a, &b))?;
            }
            0x06 => {
                // MOD
                self.charge(gas::LOW)?;
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(a.div_rem(&b).1)?;
            }
            0x07 => {
                // SMOD
                self.charge(gas::LOW)?;
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(smod(&a, &b))?;
            }
            0x08 => {
                // ADDMOD
                self.charge(gas::MID)?;
                let (a, b, m) = (self.pop()?, self.pop()?, self.pop()?);
                let v = if m.is_zero() {
                    U256::ZERO
                } else {
                    a.add_mod(&b, &m)
                };
                self.push(v)?;
            }
            0x09 => {
                // MULMOD
                self.charge(gas::MID)?;
                let (a, b, m) = (self.pop()?, self.pop()?, self.pop()?);
                let v = if m.is_zero() {
                    U256::ZERO
                } else {
                    a.mul_mod(&b, &m)
                };
                self.push(v)?;
            }
            0x0a => {
                // EXP
                let (a, e) = (self.pop()?, self.pop()?);
                let exp_bytes = (e.bits() as u64).div_ceil(8);
                self.charge(gas::EXP + gas::EXP_BYTE * exp_bytes)?;
                self.push(a.wrapping_pow(&e))?;
            }
            0x0b => {
                // SIGNEXTEND
                self.charge(gas::LOW)?;
                let (k, x) = (self.pop()?, self.pop()?);
                self.push(signextend(&k, &x))?;
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    fn comparison_bitwise(&mut self, op: u8) -> Result<(), StepError> {
        self.charge(gas::VERY_LOW)?;
        match op {
            0x10 => {
                // LT
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(U256::from((a < b) as u64))?;
            }
            0x11 => {
                // GT
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(U256::from((a > b) as u64))?;
            }
            0x12 => {
                // SLT
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(U256::from(
                    (scmp(&a, &b) == std::cmp::Ordering::Less) as u64,
                ))?;
            }
            0x13 => {
                // SGT
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(U256::from(
                    (scmp(&a, &b) == std::cmp::Ordering::Greater) as u64,
                ))?;
            }
            0x14 => {
                // EQ
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(U256::from((a == b) as u64))?;
            }
            0x15 => {
                // ISZERO
                let a = self.pop()?;
                self.push(U256::from(a.is_zero() as u64))?;
            }
            0x16 => {
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(a & b)?;
            }
            0x17 => {
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(a | b)?;
            }
            0x18 => {
                let (a, b) = (self.pop()?, self.pop()?);
                self.push(a ^ b)?;
            }
            0x19 => {
                let a = self.pop()?;
                self.push(!a)?;
            }
            0x1a => {
                // BYTE: i'th byte of x, big-endian indexing
                let (i, x) = (self.pop()?, self.pop()?);
                let v = match i.to_u64() {
                    Some(idx) if idx < 32 => U256::from(x.to_be_bytes()[idx as usize] as u64),
                    _ => U256::ZERO,
                };
                self.push(v)?;
            }
            0x1b => {
                // SHL
                let (shift, v) = (self.pop()?, self.pop()?);
                let out = match shift.to_u64() {
                    Some(s) if s < 256 => v.shl(s as u32),
                    _ => U256::ZERO,
                };
                self.push(out)?;
            }
            0x1c => {
                // SHR
                let (shift, v) = (self.pop()?, self.pop()?);
                let out = match shift.to_u64() {
                    Some(s) if s < 256 => v.shr(s as u32),
                    _ => U256::ZERO,
                };
                self.push(out)?;
            }
            0x1d => {
                // SAR
                let (shift, v) = (self.pop()?, self.pop()?);
                self.push(sar(&shift, &v))?;
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    fn keccak(&mut self) -> Result<(), StepError> {
        let offset = self.pop()?;
        let len = self.pop()?;
        let word_count = gas::words(len.to_u64().unwrap_or(u64::MAX).min(1 << 32));
        self.charge(gas::KECCAK256 + gas::KECCAK256_WORD * word_count)?;
        let (off, l) = self.mem_expand(&offset, &len)?;
        let digest = keccak256(&self.memory[off..off + l]);
        self.push(U256::from_be_bytes(&digest))
    }

    fn environment(&mut self, op: u8) -> Result<(), StepError> {
        match op {
            0x30 => {
                // ADDRESS
                self.charge(gas::BASE)?;
                let w = self.env.address.to_word();
                self.push(w.to_u256())?;
            }
            0x31 => {
                // BALANCE
                let addr_word = self.pop()?;
                let addr = H160::from_word(&H256::from_u256(&addr_word));
                let cost = if self.warm_accounts.insert(addr) {
                    gas::ACCOUNT_COLD
                } else {
                    gas::ACCOUNT_WARM
                };
                self.charge(cost)?;
                let bal = self.host.balance(&addr);
                self.push(bal)?;
            }
            0x32 => {
                // ORIGIN
                self.charge(gas::BASE)?;
                let w = self.env.origin.to_word();
                self.push(w.to_u256())?;
            }
            0x33 => {
                // CALLER
                self.charge(gas::BASE)?;
                let w = self.env.caller.to_word();
                self.push(w.to_u256())?;
            }
            0x34 => {
                // CALLVALUE
                self.charge(gas::BASE)?;
                let v = self.env.call_value;
                self.push(v)?;
            }
            0x35 => {
                // CALLDATALOAD
                self.charge(gas::VERY_LOW)?;
                let offset = self.pop()?;
                let mut word = [0u8; 32];
                if let Some(off) = offset.to_u64() {
                    let off = off as usize;
                    for (i, byte) in word.iter_mut().enumerate() {
                        if let Some(&b) = self.env.calldata.get(off + i) {
                            *byte = b;
                        }
                    }
                }
                self.push(U256::from_be_bytes(&word))?;
            }
            0x36 => {
                // CALLDATASIZE
                self.charge(gas::BASE)?;
                let n = self.env.calldata.len();
                self.push(U256::from(n))?;
            }
            0x37 => {
                // CALLDATACOPY
                let dest = self.pop()?;
                let src = self.pop()?;
                let len = self.pop()?;
                let word_count = gas::words(len.to_u64().unwrap_or(u64::MAX).min(1 << 32));
                self.charge(gas::VERY_LOW + gas::COPY_WORD * word_count)?;
                let (doff, l) = self.mem_expand(&dest, &len)?;
                let soff = src.to_u64().unwrap_or(u64::MAX) as usize;
                for i in 0..l {
                    self.memory[doff + i] = self
                        .env
                        .calldata
                        .get(soff.saturating_add(i))
                        .copied()
                        .unwrap_or(0);
                }
            }
            0x38 => {
                // CODESIZE
                self.charge(gas::BASE)?;
                let n = self.code.len();
                self.push(U256::from(n))?;
            }
            0x39 => {
                // CODECOPY
                let dest = self.pop()?;
                let src = self.pop()?;
                let len = self.pop()?;
                let word_count = gas::words(len.to_u64().unwrap_or(u64::MAX).min(1 << 32));
                self.charge(gas::VERY_LOW + gas::COPY_WORD * word_count)?;
                let (doff, l) = self.mem_expand(&dest, &len)?;
                let soff = src.to_u64().unwrap_or(u64::MAX) as usize;
                for i in 0..l {
                    self.memory[doff + i] =
                        self.code.get(soff.saturating_add(i)).copied().unwrap_or(0);
                }
            }
            0x3a => {
                // GASPRICE
                self.charge(gas::BASE)?;
                let v = self.env.gas_price;
                self.push(v)?;
            }
            0x3d => {
                // RETURNDATASIZE — always 0 in our single-frame model
                self.charge(gas::BASE)?;
                self.push(U256::ZERO)?;
            }
            0x42 => {
                // TIMESTAMP
                self.charge(gas::BASE)?;
                let v = self.env.timestamp;
                self.push(U256::from(v))?;
            }
            0x43 => {
                // NUMBER
                self.charge(gas::BASE)?;
                let v = self.env.block_number;
                self.push(U256::from(v))?;
            }
            0x45 => {
                // GASLIMIT
                self.charge(gas::BASE)?;
                let v = self.env.gas_limit;
                self.push(U256::from(v))?;
            }
            0x46 => {
                // CHAINID
                self.charge(gas::BASE)?;
                let v = self.env.chain_id;
                self.push(U256::from(v))?;
            }
            0x47 => {
                // SELFBALANCE
                self.charge(gas::LOW)?;
                let bal = self.host.balance(&self.env.address);
                self.push(bal)?;
            }
            0x48 => {
                // BASEFEE
                self.charge(gas::BASE)?;
                let v = self.env.base_fee;
                self.push(v)?;
            }
            other => return Err(StepError::Exception(ExecError::InvalidOpcode(other))),
        }
        Ok(())
    }

    fn memory_flow(&mut self, op: u8) -> Result<Control, StepError> {
        match op {
            0x50 => {
                // POP
                self.charge(gas::BASE)?;
                self.pop()?;
            }
            0x51 => {
                // MLOAD
                self.charge(gas::VERY_LOW)?;
                let offset = self.pop()?;
                let (off, _) = self.mem_expand(&offset, &U256::from(32u64))?;
                let mut w = [0u8; 32];
                w.copy_from_slice(&self.memory[off..off + 32]);
                self.push(U256::from_be_bytes(&w))?;
            }
            0x52 => {
                // MSTORE
                self.charge(gas::VERY_LOW)?;
                let offset = self.pop()?;
                let value = self.pop()?;
                let (off, _) = self.mem_expand(&offset, &U256::from(32u64))?;
                self.memory[off..off + 32].copy_from_slice(&value.to_be_bytes());
            }
            0x53 => {
                // MSTORE8
                self.charge(gas::VERY_LOW)?;
                let offset = self.pop()?;
                let value = self.pop()?;
                let (off, _) = self.mem_expand(&offset, &U256::ONE)?;
                self.memory[off] = value.low_u64() as u8;
            }
            0x54 => {
                // SLOAD
                let key = H256::from_u256(&self.pop()?);
                let cost = if self.warm_slots.insert(key) {
                    gas::SLOAD_COLD
                } else {
                    gas::SLOAD_WARM
                };
                self.charge(cost)?;
                let v = self.host.sload(&self.env.address, &key);
                self.push(v)?;
            }
            0x55 => {
                // SSTORE (simplified EIP-2200/2929/3529)
                let key = H256::from_u256(&self.pop()?);
                let value = self.pop()?;
                let current = self.host.sload(&self.env.address, &key);
                let original = *self.original_slots.entry(key).or_insert(current);
                let cold = self.warm_slots.insert(key);
                let mut cost = if cold { gas::SSTORE_COLD_SURCHARGE } else { 0 };
                cost += if value == current {
                    gas::SSTORE_WARM
                } else if current == original {
                    if original.is_zero() {
                        gas::SSTORE_SET
                    } else {
                        gas::SSTORE_RESET
                    }
                } else {
                    gas::SSTORE_WARM
                };
                self.charge(cost)?;
                // Refund when a previously nonzero slot is cleared.
                if !current.is_zero() && value.is_zero() {
                    self.refund += gas::SSTORE_CLEAR_REFUND;
                }
                self.host.sstore(&self.env.address, &key, value);
            }
            0x56 => {
                // JUMP
                self.charge(gas::MID)?;
                let dest = self.pop()?;
                self.jump(&dest)?;
            }
            0x57 => {
                // JUMPI
                self.charge(gas::HIGH)?;
                let dest = self.pop()?;
                let cond = self.pop()?;
                if !cond.is_zero() {
                    self.jump(&dest)?;
                }
            }
            0x58 => {
                // PC (pc was already advanced past this opcode)
                self.charge(gas::BASE)?;
                let v = self.pc - 1;
                self.push(U256::from(v))?;
            }
            0x59 => {
                // MSIZE
                self.charge(gas::BASE)?;
                let n = self.memory.len();
                self.push(U256::from(n))?;
            }
            0x5a => {
                // GAS
                self.charge(gas::BASE)?;
                let g = self.gas_remaining;
                self.push(U256::from(g))?;
            }
            0x5b => {
                // JUMPDEST
                self.charge(gas::JUMPDEST)?;
            }
            _ => unreachable!(),
        }
        Ok(Control::Continue)
    }

    fn jump(&mut self, dest: &U256) -> Result<(), StepError> {
        let d = dest
            .to_u64()
            .ok_or(StepError::Exception(ExecError::BadJumpDestination))? as usize;
        if !self.valid_jumpdests.contains(&d) {
            return Err(StepError::Exception(ExecError::BadJumpDestination));
        }
        self.pc = d;
        Ok(())
    }

    fn log(&mut self, op: u8) -> Result<(), StepError> {
        let topic_count = (op - 0xa0) as usize;
        let offset = self.pop()?;
        let len = self.pop()?;
        let data_len = len.to_u64().unwrap_or(u64::MAX).min(1 << 32);
        self.charge(gas::LOG + gas::LOG_TOPIC * topic_count as u64 + gas::LOG_DATA * data_len)?;
        let mut topics = Vec::with_capacity(topic_count);
        for _ in 0..topic_count {
            topics.push(H256::from_u256(&self.pop()?));
        }
        let (off, l) = self.mem_expand(&offset, &len)?;
        let data = self.memory[off..off + l].to_vec();
        self.logs.push(LogEntry {
            address: self.env.address,
            topics,
            data,
        });
        Ok(())
    }
}

enum StepError {
    OutOfGas,
    Exception(ExecError),
}

/// Scans code for valid JUMPDEST positions, skipping PUSH immediates.
fn scan_jumpdests(code: &[u8]) -> HashSet<usize> {
    let mut out = HashSet::new();
    let mut i = 0;
    while i < code.len() {
        let op = code[i];
        if op == 0x5b {
            out.insert(i);
        }
        if (0x60..=0x7f).contains(&op) {
            i += (op - 0x5f) as usize;
        }
        i += 1;
    }
    out
}

/// Two's-complement helpers for the signed opcodes.
fn is_neg(v: &U256) -> bool {
    v.bit(255)
}

fn neg(v: &U256) -> U256 {
    (!*v).wrapping_add(&U256::ONE)
}

fn scmp(a: &U256, b: &U256) -> std::cmp::Ordering {
    match (is_neg(a), is_neg(b)) {
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        _ => a.cmp(b),
    }
}

fn sdiv(a: &U256, b: &U256) -> U256 {
    if b.is_zero() {
        return U256::ZERO;
    }
    let (abs_a, sa) = if is_neg(a) {
        (neg(a), true)
    } else {
        (*a, false)
    };
    let (abs_b, sb) = if is_neg(b) {
        (neg(b), true)
    } else {
        (*b, false)
    };
    let q = abs_a.div_rem(&abs_b).0;
    if sa ^ sb {
        neg(&q)
    } else {
        q
    }
}

fn smod(a: &U256, b: &U256) -> U256 {
    if b.is_zero() {
        return U256::ZERO;
    }
    let (abs_a, sa) = if is_neg(a) {
        (neg(a), true)
    } else {
        (*a, false)
    };
    let abs_b = if is_neg(b) { neg(b) } else { *b };
    let r = abs_a.div_rem(&abs_b).1;
    if sa && !r.is_zero() {
        neg(&r)
    } else {
        r
    }
}

fn sar(shift: &U256, v: &U256) -> U256 {
    let negative = is_neg(v);
    match shift.to_u64() {
        Some(s) if s < 256 => {
            let shifted = v.shr(s as u32);
            if negative && s > 0 {
                // Fill the vacated top bits with ones.
                let mask = U256::MAX.shl(256 - s as u32);
                shifted | mask
            } else {
                shifted
            }
        }
        _ => {
            if negative {
                U256::MAX
            } else {
                U256::ZERO
            }
        }
    }
}

/// SIGNEXTEND: extend the sign of the (k+1)-byte value x to 32 bytes.
fn signextend(k: &U256, x: &U256) -> U256 {
    match k.to_u64() {
        Some(kk) if kk < 31 => {
            let bit_index = (8 * (kk + 1) - 1) as usize;
            if x.bit(bit_index) {
                *x | U256::MAX.shl(bit_index as u32 + 1)
            } else {
                *x & !(U256::MAX.shl(bit_index as u32 + 1))
            }
        }
        _ => *x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory host for unit tests.
    #[derive(Default)]
    struct TestHost {
        storage: HashMap<(H160, H256), U256>,
        balances: HashMap<H160, U256>,
    }

    impl Host for TestHost {
        fn sload(&self, address: &H160, key: &H256) -> U256 {
            self.storage
                .get(&(*address, *key))
                .copied()
                .unwrap_or(U256::ZERO)
        }
        fn sstore(&mut self, address: &H160, key: &H256, value: U256) {
            self.storage.insert((*address, *key), value);
        }
        fn balance(&self, address: &H160) -> U256 {
            self.balances.get(address).copied().unwrap_or(U256::ZERO)
        }
    }

    fn test_env() -> Env {
        Env {
            address: H160::from_slice(&[0x11; 20]),
            caller: H160::from_slice(&[0x22; 20]),
            origin: H160::from_slice(&[0x22; 20]),
            call_value: U256::ZERO,
            calldata: Vec::new(),
            gas_price: U256::from(1_000_000_000u64),
            block_number: 1,
            timestamp: 1_700_000_000,
            gas_limit: 30_000_000,
            chain_id: 11155111,
            base_fee: U256::from(1_000_000_000u64),
        }
    }

    fn run(code: &[u8]) -> ExecResult {
        run_with(code, test_env(), 1_000_000)
    }

    fn run_with(code: &[u8], env: Env, gas: u64) -> ExecResult {
        let mut host = TestHost::default();
        Interpreter::new(&mut host, env, code.to_vec(), gas).run()
    }

    fn ret_top() -> Vec<u8> {
        // MSTORE result at 0 and RETURN 32 bytes: PUSH1 0 MSTORE PUSH1 32 PUSH1 0 RETURN
        vec![0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3]
    }

    fn output_u256(r: &ExecResult) -> U256 {
        assert!(r.is_success(), "{:?}", r.outcome);
        U256::from_be_slice(&r.output)
    }

    #[test]
    fn add_and_return() {
        // PUSH1 2 PUSH1 3 ADD → 5
        let mut code = vec![0x60, 0x02, 0x60, 0x03, 0x01];
        code.extend(ret_top());
        let r = run(&code);
        assert_eq!(output_u256(&r), U256::from(5u64));
        // gas: 3 + 3 + 3 (add) + 3+3 (mstore pushes... count below)
        assert!(r.gas_used > 0);
    }

    #[test]
    fn arithmetic_ops() {
        // 10 / 3 = 3
        let mut code = vec![0x60, 0x03, 0x60, 0x0a, 0x04];
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::from(3u64));
        // 10 % 3 = 1
        let mut code = vec![0x60, 0x03, 0x60, 0x0a, 0x06];
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::from(1u64));
        // div by zero = 0
        let mut code = vec![0x60, 0x00, 0x60, 0x0a, 0x04];
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::ZERO);
        // 2^10 = 1024 (EXP pops base then exponent: stack [exp, base] top=base)
        let mut code = vec![0x60, 0x0a, 0x60, 0x02, 0x0a];
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::from(1024u64));
    }

    #[test]
    fn signed_ops() {
        let minus_one = U256::MAX;
        // SDIV: -4 / 2 = -2
        let minus_four = neg(&U256::from(4u64));
        let mut code = vec![0x60, 0x02];
        code.push(0x7f);
        code.extend(minus_four.to_be_bytes());
        code.push(0x05);
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), neg(&U256::from(2u64)));
        // SLT: -1 < 1
        let mut code = vec![0x60, 0x01];
        code.push(0x7f);
        code.extend(minus_one.to_be_bytes());
        code.push(0x12);
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::ONE);
        // SAR: -8 >> 1 = -4
        let minus_eight = neg(&U256::from(8u64));
        let mut code = vec![0x7f];
        code.extend(minus_eight.to_be_bytes());
        code.extend([0x60, 0x01, 0x1d]);
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), neg(&U256::from(4u64)));
    }

    #[test]
    fn signextend_byte0() {
        // signextend(0, 0xff) = -1
        let mut code = vec![0x60, 0xff, 0x60, 0x00, 0x0b];
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::MAX);
        // signextend(0, 0x7f) = 0x7f
        let mut code = vec![0x60, 0x7f, 0x60, 0x00, 0x0b];
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::from(0x7fu64));
    }

    #[test]
    fn storage_roundtrip_and_gas() {
        // SSTORE slot1 = 0x42 then SLOAD slot1
        let code = vec![
            0x60, 0x42, 0x60, 0x01, 0x55, // SSTORE(1, 0x42)
            0x60, 0x01, 0x54, // SLOAD(1)
            0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let mut host = TestHost::default();
        let r = Interpreter::new(&mut host, test_env(), code, 1_000_000).run();
        assert_eq!(output_u256(&r), U256::from(0x42u64));
        // Cold SSTORE-set: 2100 + 20000; warm SLOAD (same slot): 100.
        // Plus pushes/mstore/return overhead (3*7 + 3 = 24ish).
        assert!(r.gas_used > 22_100, "gas {}", r.gas_used);
        assert!(r.gas_used < 23_000, "gas {}", r.gas_used);
    }

    #[test]
    fn sstore_refund_on_clear() {
        // Pre-set slot 1 = 5 in host, then SSTORE(1, 0).
        let mut host = TestHost::default();
        let addr = test_env().address;
        host.sstore(&addr, &H256::from_u256(&U256::ONE), U256::from(5u64));
        let code = vec![0x60, 0x00, 0x60, 0x01, 0x55, 0x00];
        let r = Interpreter::new(&mut host, test_env(), code, 100_000).run();
        assert!(r.is_success());
        assert_eq!(r.refund, gas::SSTORE_CLEAR_REFUND);
    }

    #[test]
    fn jump_and_jumpi() {
        // PUSH1 dest JUMP; INVALID; JUMPDEST PUSH1 7 ...return
        let code = vec![
            0x60, 0x04, 0x56, // JUMP to 4
            0xfe, // INVALID (skipped)
            0x5b, // JUMPDEST at 4
            0x60, 0x07, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        assert_eq!(output_u256(&run(&code)), U256::from(7u64));
    }

    #[test]
    fn bad_jump_is_exception() {
        let code = vec![0x60, 0x03, 0x56, 0x00]; // JUMP to 3 (not a JUMPDEST)
        let r = run(&code);
        assert_eq!(r.outcome, Outcome::Exception(ExecError::BadJumpDestination));
        assert_eq!(r.gas_used, 1_000_000); // consumes all gas
    }

    #[test]
    fn jump_into_push_data_rejected() {
        // PUSH2 0x5b00 — the 0x5b at offset 1 is push data, not a JUMPDEST.
        let code = vec![0x60, 0x04, 0x56, 0x00, 0x61, 0x5b, 0x00];
        let r = run(&code);
        assert!(matches!(
            r.outcome,
            Outcome::Exception(ExecError::BadJumpDestination)
        ));
    }

    #[test]
    fn calldata_ops() {
        let mut env = test_env();
        env.calldata = vec![0xaa, 0xbb, 0xcc, 0xdd];
        // CALLDATASIZE
        let mut code = vec![0x36];
        code.extend(ret_top());
        let r = run_with(&code, env.clone(), 100_000);
        assert_eq!(output_u256(&r), U256::from(4u64));
        // CALLDATALOAD(0) — zero padded on the right
        let mut code = vec![0x60, 0x00, 0x35];
        code.extend(ret_top());
        let r = run_with(&code, env.clone(), 100_000);
        let mut expect = [0u8; 32];
        expect[..4].copy_from_slice(&[0xaa, 0xbb, 0xcc, 0xdd]);
        assert_eq!(output_u256(&r), U256::from_be_bytes(&expect));
        // CALLDATACOPY then return the memory
        let code = vec![
            0x60, 0x04, 0x60, 0x00, 0x60, 0x00, 0x37, // calldatacopy(0,0,4)
            0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let r = run_with(&code, env, 100_000);
        assert!(r.is_success());
        assert_eq!(&r.output[..4], &[0xaa, 0xbb, 0xcc, 0xdd]);
    }

    #[test]
    fn keccak_of_memory() {
        // store "abc" via MSTORE8 ×3 then hash 3 bytes
        let code = vec![
            0x60, b'a', 0x60, 0x00, 0x53, // mstore8(0,'a')
            0x60, b'b', 0x60, 0x01, 0x53, 0x60, b'c', 0x60, 0x02, 0x53, 0x60, 0x03, 0x60, 0x00,
            0x20, // keccak256(0,3)
            0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3,
        ];
        let r = run(&code);
        assert_eq!(r.output, keccak256(b"abc").to_vec());
    }

    #[test]
    fn env_opcodes() {
        let env = test_env();
        // CALLER
        let mut code = vec![0x33];
        code.extend(ret_top());
        let r = run_with(&code, env.clone(), 100_000);
        assert_eq!(H160::from_word(&H256::from_slice(&r.output)), env.caller);
        // CHAINID
        let mut code = vec![0x46];
        code.extend(ret_top());
        let r = run_with(&code, env.clone(), 100_000);
        assert_eq!(output_u256(&r), U256::from(11155111u64));
        // NUMBER / TIMESTAMP
        let mut code = vec![0x43];
        code.extend(ret_top());
        assert_eq!(
            output_u256(&run_with(&code, env.clone(), 100_000)),
            U256::ONE
        );
    }

    #[test]
    fn logs_collected_on_success_only() {
        // LOG1 with topic 0x99, empty data, then STOP
        let log_then_stop = vec![0x60, 0x99, 0x60, 0x00, 0x60, 0x00, 0xa1, 0x00];
        let r = run(&log_then_stop);
        assert!(r.is_success());
        assert_eq!(r.logs.len(), 1);
        assert_eq!(r.logs[0].topics[0].to_u256(), U256::from(0x99u64));

        // Same log followed by REVERT discards it.
        let log_then_revert = vec![
            0x60, 0x99, 0x60, 0x00, 0x60, 0x00, 0xa1, 0x60, 0x00, 0x60, 0x00, 0xfd,
        ];
        let r = run(&log_then_revert);
        assert_eq!(r.outcome, Outcome::Revert);
        assert!(r.logs.is_empty());
    }

    #[test]
    fn revert_returns_payload_and_unused_gas() {
        // MSTORE8(0, 0x42); REVERT(0, 1)
        let code = vec![0x60, 0x42, 0x60, 0x00, 0x53, 0x60, 0x01, 0x60, 0x00, 0xfd];
        let r = run(&code);
        assert_eq!(r.outcome, Outcome::Revert);
        assert_eq!(r.output, vec![0x42]);
        assert!(r.gas_used < 100); // only what was executed
    }

    #[test]
    fn out_of_gas_consumes_everything() {
        // Infinite loop: JUMPDEST PUSH1 0 JUMP
        let code = vec![0x5b, 0x60, 0x00, 0x56];
        let r = run_with(&code, test_env(), 10_000);
        assert_eq!(r.outcome, Outcome::OutOfGas);
        assert_eq!(r.gas_used, 10_000);
    }

    #[test]
    fn stack_underflow_detected() {
        let r = run(&[0x01]); // ADD on empty stack
        assert_eq!(r.outcome, Outcome::Exception(ExecError::StackUnderflow));
    }

    #[test]
    fn stack_overflow_detected() {
        // Push 1 then DUP1 in a loop beyond 1024: JUMPDEST DUP1 PUSH1 0 JUMP
        let code = vec![0x60, 0x01, 0x5b, 0x80, 0x60, 0x02, 0x56];
        let r = run_with(&code, test_env(), 10_000_000);
        assert_eq!(r.outcome, Outcome::Exception(ExecError::StackOverflow));
    }

    #[test]
    fn push_dup_swap() {
        // PUSH1 1 PUSH1 2 SWAP1 → top is 1; DUP2 → top is 2
        let mut code = vec![0x60, 0x01, 0x60, 0x02, 0x90, 0x81];
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::from(2u64));
    }

    #[test]
    fn push32_full_word() {
        let mut code = vec![0x7f];
        code.extend([0xabu8; 32]);
        code.extend(ret_top());
        assert_eq!(output_u256(&run(&code)), U256::from_be_bytes(&[0xab; 32]));
    }

    #[test]
    fn truncated_push_reads_zero() {
        // PUSH2 with only one byte of immediate left: value = 0xaa00.
        let code = vec![0x61, 0xaa];
        let r = run(&code);
        assert!(r.is_success()); // implicit stop at end
    }

    #[test]
    fn memory_expansion_gas_charged() {
        // MSTORE at offset 0 vs offset 10000 must differ in gas by the
        // quadratic expansion cost.
        let near = vec![0x60, 0x01, 0x60, 0x00, 0x52, 0x00];
        let far = vec![0x60, 0x01, 0x61, 0x27, 0x10, 0x52, 0x00];
        let g_near = run(&near).gas_used;
        let g_far = run(&far).gas_used;
        let words = gas::words(10_000 + 32);
        let expect_delta = gas::memory_cost(words) - gas::memory_cost(1);
        // far also pays one extra byte of PUSH2 vs PUSH1 (same 3 gas).
        assert_eq!(g_far - g_near, expect_delta);
    }

    #[test]
    fn balance_cold_then_warm() {
        let mut host = TestHost::default();
        let who = H160::from_slice(&[0x77; 20]);
        host.balances.insert(who, U256::from(123u64));
        // BALANCE(who) twice; return second result.
        let mut code = vec![0x73];
        code.extend(who.0);
        code.push(0x31); // cold
        code.push(0x50); // pop
        code.push(0x73);
        code.extend(who.0);
        code.push(0x31); // warm
        code.extend(ret_top());
        let r = Interpreter::new(&mut host, test_env(), code, 100_000).run();
        assert_eq!(output_u256(&r), U256::from(123u64));
        // cost contains one cold (2600) + one warm (100)
        assert!(r.gas_used > 2_700);
        assert!(r.gas_used < 2_900);
    }
}
