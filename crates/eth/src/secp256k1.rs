//! secp256k1 elliptic-curve arithmetic and ECDSA, from scratch.
//!
//! Implements the curve `y² = x³ + 7` over the field `F_p` with
//! `p = 2^256 - 2^32 - 977`, Jacobian-coordinate group law, deterministic
//! RFC-6979 nonces, low-`s` normalized signatures, and public-key recovery
//! (the `ecrecover` primitive that lets the chain derive a transaction's
//! sender from its signature alone).

use ofl_primitives::hotpath::{HotPhase, PhaseTimer};
use ofl_primitives::u256::{U256, U512};
use ofl_primitives::{hmac_sha256, keccak256, H160};
use std::sync::OnceLock;

/// The field prime `p = 2^256 - 2^32 - 977`.
pub const P: U256 = U256([
    0xfffffffefffffc2f,
    0xffffffffffffffff,
    0xffffffffffffffff,
    0xffffffffffffffff,
]);

/// The group order `n`.
pub const N: U256 = U256([
    0xbfd25e8cd0364141,
    0xbaaedce6af48a03b,
    0xfffffffffffffffe,
    0xffffffffffffffff,
]);

/// Generator x-coordinate.
pub const GX: U256 = U256([
    0x59f2815b16f81798,
    0x029bfcdb2dce28d9,
    0x55a06295ce870b07,
    0x79be667ef9dcbbac,
]);

/// Generator y-coordinate.
pub const GY: U256 = U256([
    0x9c47d08ffb10d4b8,
    0xfd17b448a6855419,
    0x5da4fbfc0e1108a8,
    0x483ada7726a3c465,
]);

/// `2^256 - p = 2^32 + 977`, the folding constant for fast reduction.
const C: U256 = U256([0x1000003d1, 0, 0, 0]);

/// `2^256 - n` (about 2^129), the folding constant for fast scalar
/// reduction mod the group order.
const N_C: U256 = U256([0x402da1732fc9bebf, 0x4551231950b75fc4, 0x1, 0]);

/// 512-bit addition with carry out (carry can only be 0 or 1 here because we
/// only ever add values far below 2^512).
fn u512_add(a: &U512, b: &U512) -> U512 {
    let mut out = [0u64; 8];
    let mut carry = 0u128;
    for (i, limb) in out.iter_mut().enumerate() {
        let sum = a.0[i] as u128 + b.0[i] as u128 + carry;
        *limb = sum as u64;
        carry = sum >> 64;
    }
    debug_assert_eq!(carry, 0, "u512_add overflow");
    U512(out)
}

/// Reduces a 512-bit product modulo `p` using the special form of the
/// secp256k1 prime: `2^256 ≡ 2^32 + 977 (mod p)`, so the high half folds
/// into the low half with one small multiplication. Two folds plus at most
/// two conditional subtractions suffice.
fn reduce_p(w: &U512) -> U256 {
    let mut cur = *w;
    // Fold until the high 256 bits are zero (at most 2 iterations: the first
    // fold leaves hi ≤ 2^34, the second leaves hi = 0).
    loop {
        let hi = U256([cur.0[4], cur.0[5], cur.0[6], cur.0[7]]);
        let lo = U256([cur.0[0], cur.0[1], cur.0[2], cur.0[3]]);
        if hi.is_zero() {
            let mut r = lo;
            while r >= P {
                r = r.wrapping_sub(&P);
            }
            return r;
        }
        cur = u512_add(&hi.widening_mul(&C), &U512::from_u256(&lo));
    }
}

/// Reduces a 512-bit product modulo the group order `n` by the same
/// folding trick as [`reduce_p`]: `2^256 ≡ 2^256 - n (mod n)` and the
/// difference is only ~2^129, so a handful of folds replace bit-by-bit
/// long division. Every ECDSA sign and recover runs hundreds of scalar
/// multiplies through here (the Fermat inversions), so this is squarely
/// on the fleet's signing hot path.
fn reduce_n(w: &U512) -> U256 {
    let mut cur = *w;
    loop {
        let hi = U256([cur.0[4], cur.0[5], cur.0[6], cur.0[7]]);
        let lo = U256([cur.0[0], cur.0[1], cur.0[2], cur.0[3]]);
        if hi.is_zero() {
            let mut r = lo;
            while r >= N {
                r = r.wrapping_sub(&N);
            }
            return r;
        }
        cur = u512_add(&hi.widening_mul(&N_C), &U512::from_u256(&lo));
    }
}

/// Field element in `F_p`, kept reduced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fe(U256);

// Field arithmetic reads as math (`a.add(b)`, `a.mul(b)`); these are not
// the operator traits and deliberately take/return by value.
#[allow(clippy::should_implement_trait)]
impl Fe {
    pub const ZERO: Fe = Fe(U256::ZERO);
    pub const ONE: Fe = Fe(U256::ONE);

    /// Constructs from an integer, reducing mod `p`.
    pub fn new(v: U256) -> Fe {
        if v >= P {
            Fe(v.wrapping_sub(&P))
        } else {
            Fe(v)
        }
    }

    /// The underlying reduced integer.
    pub fn to_u256(self) -> U256 {
        self.0
    }

    pub fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// True iff the canonical representative is odd (used for point
    /// compression parity / recovery ids).
    pub fn is_odd(self) -> bool {
        self.0.bit(0)
    }

    pub fn add(self, rhs: Fe) -> Fe {
        let (sum, carry) = self.0.overflowing_add(&rhs.0);
        let mut r = sum;
        if carry || r >= P {
            r = r.wrapping_sub(&P);
        }
        Fe(r)
    }

    pub fn sub(self, rhs: Fe) -> Fe {
        if self.0 >= rhs.0 {
            Fe(self.0.wrapping_sub(&rhs.0))
        } else {
            Fe(P.wrapping_sub(&rhs.0).wrapping_add(&self.0))
        }
    }

    pub fn neg(self) -> Fe {
        if self.0.is_zero() {
            self
        } else {
            Fe(P.wrapping_sub(&self.0))
        }
    }

    pub fn mul(self, rhs: Fe) -> Fe {
        Fe(reduce_p(&self.0.widening_mul(&rhs.0)))
    }

    pub fn square(self) -> Fe {
        self.mul(self)
    }

    /// Small-scalar multiply (for the 2·, 3·, 8· constants in the group law).
    pub fn mul_small(self, k: u64) -> Fe {
        Fe(reduce_p(&self.0.widening_mul(&U256::from_u64(k))))
    }

    /// Multiplicative inverse by Fermat (p is prime); `None` for zero.
    pub fn inv(self) -> Option<Fe> {
        if self.is_zero() {
            return None;
        }
        Some(self.pow(&P.wrapping_sub(&U256::from_u64(2))))
    }

    /// Exponentiation by squaring.
    pub fn pow(self, e: &U256) -> Fe {
        let mut result = Fe::ONE;
        let mut base = self;
        for i in 0..e.bits() {
            if e.bit(i as usize) {
                result = result.mul(base);
            }
            base = base.square();
        }
        result
    }

    /// Square root via `a^((p+1)/4)` (valid because `p ≡ 3 mod 4`);
    /// `None` when `a` is a non-residue.
    pub fn sqrt(self) -> Option<Fe> {
        // (p + 1) / 4
        let exp = U256([
            0xffffffffbfffff0c,
            0xffffffffffffffff,
            0xffffffffffffffff,
            0x3fffffffffffffff,
        ]);
        let cand = self.pow(&exp);
        if cand.square() == self {
            Some(cand)
        } else {
            None
        }
    }
}

/// Scalar in `Z_n`, kept reduced. Arithmetic uses the `reduce_n` folding
/// reduction — the Fermat inversions inside sign/recover run hundreds of
/// scalar multiplies each, so generic long-division reduction here would
/// dominate the whole signing path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scalar(U256);

#[allow(clippy::should_implement_trait)]
impl Scalar {
    pub const ZERO: Scalar = Scalar(U256::ZERO);

    /// Constructs reducing mod `n`. One conditional subtraction is a full
    /// reduction: `2n > 2^256`, so any `U256` is below `2n`.
    pub fn new(v: U256) -> Scalar {
        if v >= N {
            Scalar(v.wrapping_sub(&N))
        } else {
            Scalar(v)
        }
    }

    /// Constructs only if already reduced and nonzero (strict validation for
    /// externally supplied `r`/`s`/private keys).
    pub fn from_canonical(v: U256) -> Option<Scalar> {
        if v.is_zero() || v >= N {
            None
        } else {
            Some(Scalar(v))
        }
    }

    pub fn to_u256(self) -> U256 {
        self.0
    }

    pub fn is_zero(self) -> bool {
        self.0.is_zero()
    }

    /// True iff the scalar exceeds `n/2` (high-`s` signatures are malleable
    /// and rejected by Ethereum since EIP-2).
    pub fn is_high(self) -> bool {
        // n/2 rounded down
        let half_n = U256([
            0xdfe92f46681b20a0,
            0x5d576e7357a4501d,
            0xffffffffffffffff,
            0x7fffffffffffffff,
        ]);
        self.0 > half_n
    }

    pub fn add(self, rhs: Scalar) -> Scalar {
        let (sum, carry) = self.0.overflowing_add(&rhs.0);
        let mut r = sum;
        if carry || r >= N {
            r = r.wrapping_sub(&N);
        }
        Scalar(r)
    }

    pub fn mul(self, rhs: Scalar) -> Scalar {
        Scalar(reduce_n(&self.0.widening_mul(&rhs.0)))
    }

    pub fn neg(self) -> Scalar {
        if self.0.is_zero() {
            self
        } else {
            Scalar(N.wrapping_sub(&self.0))
        }
    }

    /// Inverse by Fermat (n is prime), over the folding multiply; `None`
    /// for zero.
    pub fn inv(self) -> Option<Scalar> {
        if self.is_zero() {
            return None;
        }
        let e = N.wrapping_sub(&U256::from_u64(2));
        let mut result = Scalar(U256::ONE);
        let mut base = self;
        for i in 0..e.bits() {
            if e.bit(i as usize) {
                result = result.mul(base);
            }
            base = base.mul(base);
        }
        Some(result)
    }
}

/// A point on the curve in affine coordinates, or infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Affine {
    /// The identity element.
    Infinity,
    /// A finite point (x, y) satisfying the curve equation.
    Point { x: Fe, y: Fe },
}

impl Affine {
    /// The generator `G`.
    pub fn generator() -> Affine {
        Affine::Point {
            x: Fe::new(GX),
            y: Fe::new(GY),
        }
    }

    /// Validates the curve equation `y² = x³ + 7`.
    pub fn is_on_curve(&self) -> bool {
        match self {
            Affine::Infinity => true,
            Affine::Point { x, y } => {
                let lhs = y.square();
                let rhs = x.square().mul(*x).add(Fe::new(U256::from_u64(7)));
                lhs == rhs
            }
        }
    }

    /// Lifts an x-coordinate to a point with the requested y parity
    /// (`ecrecover`'s core step). `None` if x is not on the curve.
    pub fn lift_x(x: Fe, odd_y: bool) -> Option<Affine> {
        let y2 = x.square().mul(x).add(Fe::new(U256::from_u64(7)));
        let mut y = y2.sqrt()?;
        if y.is_odd() != odd_y {
            y = y.neg();
        }
        Some(Affine::Point { x, y })
    }

    /// Uncompressed SEC1 encoding (0x04 || X || Y); `None` for infinity.
    pub fn to_uncompressed(&self) -> Option<[u8; 65]> {
        match self {
            Affine::Infinity => None,
            Affine::Point { x, y } => {
                let mut out = [0u8; 65];
                out[0] = 0x04;
                out[1..33].copy_from_slice(&x.to_u256().to_be_bytes());
                out[33..65].copy_from_slice(&y.to_u256().to_be_bytes());
                Some(out)
            }
        }
    }

    /// The Ethereum address of this public key: low 20 bytes of
    /// `keccak256(X || Y)`.
    pub fn to_eth_address(&self) -> Option<H160> {
        let enc = self.to_uncompressed()?;
        let digest = keccak256(&enc[1..]);
        Some(H160::from_slice(&digest[12..]))
    }
}

/// Jacobian-coordinate point `(X/Z², Y/Z³)` for inversion-free group law.
#[derive(Clone, Copy, Debug)]
pub struct Jacobian {
    x: Fe,
    y: Fe,
    z: Fe,
}

impl Jacobian {
    /// The identity (encoded with Z = 0).
    pub const INFINITY: Jacobian = Jacobian {
        x: Fe::ONE,
        y: Fe::ONE,
        z: Fe::ZERO,
    };

    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Converts from affine.
    pub fn from_affine(p: &Affine) -> Jacobian {
        match p {
            Affine::Infinity => Jacobian::INFINITY,
            Affine::Point { x, y } => Jacobian {
                x: *x,
                y: *y,
                z: Fe::ONE,
            },
        }
    }

    /// Converts to affine (one field inversion).
    pub fn to_affine(&self) -> Affine {
        if self.is_infinity() {
            return Affine::Infinity;
        }
        let zinv = self.z.inv().expect("nonzero z");
        let zinv2 = zinv.square();
        let zinv3 = zinv2.mul(zinv);
        Affine::Point {
            x: self.x.mul(zinv2),
            y: self.y.mul(zinv3),
        }
    }

    /// Point doubling (a = 0 specialization, dbl-2009-l formulas).
    pub fn double(&self) -> Jacobian {
        if self.is_infinity() || self.y.is_zero() {
            return Jacobian::INFINITY;
        }
        let a = self.x.square();
        let b = self.y.square();
        let c = b.square();
        let d = self.x.add(b).square().sub(a).sub(c).mul_small(2);
        let e = a.mul_small(3);
        let f = e.square();
        let x3 = f.sub(d.mul_small(2));
        let y3 = e.mul(d.sub(x3)).sub(c.mul_small(8));
        let z3 = self.y.mul(self.z).mul_small(2);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian addition (add-2007-bl).
    pub fn add(&self, other: &Jacobian) -> Jacobian {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        let u1 = self.x.mul(z2z2);
        let u2 = other.x.mul(z1z1);
        let s1 = self.y.mul(other.z).mul(z2z2);
        let s2 = other.y.mul(self.z).mul(z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Jacobian::INFINITY;
        }
        let h = u2.sub(u1);
        let i = h.mul_small(2).square();
        let j = h.mul(i);
        let r = s2.sub(s1).mul_small(2);
        let v = u1.mul(i);
        let x3 = r.square().sub(j).sub(v.mul_small(2));
        let y3 = r.mul(v.sub(x3)).sub(s1.mul(j).mul_small(2));
        let z3 = self.z.add(other.z).square().sub(z1z1).sub(z2z2).mul(h);
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication via a 4-bit window: 15 precomputed multiples,
    /// then four doublings plus at most one addition per scalar nibble —
    /// about half the additions of plain double-and-add for a full-width
    /// scalar. Same group element as [`Jacobian::scalar_mul_binary`]
    /// (regression-pinned in the tests); `ecrecover` runs one of these per
    /// mined transaction.
    pub fn scalar_mul(&self, k: &Scalar) -> Jacobian {
        let e = k.to_u256();
        if e.is_zero() || self.is_infinity() {
            return Jacobian::INFINITY;
        }
        let mut multiples = [*self; 15];
        for i in 1..15 {
            multiples[i] = multiples[i - 1].add(self);
        }
        let top_window = (e.bits() as usize).div_ceil(4);
        let mut acc = Jacobian::INFINITY;
        for w in (0..top_window).rev() {
            acc = acc.double().double().double().double();
            let digit = ((e.0[w / 16] >> ((w % 16) * 4)) & 0xf) as usize;
            if digit != 0 {
                acc = acc.add(&multiples[digit - 1]);
            }
        }
        acc
    }

    /// Scalar multiplication by plain left-to-right double-and-add — the
    /// reference path the windowed ladder is verified against.
    pub fn scalar_mul_binary(&self, k: &Scalar) -> Jacobian {
        let e = k.to_u256();
        let mut acc = Jacobian::INFINITY;
        let nbits = e.bits();
        for i in (0..nbits).rev() {
            acc = acc.double();
            if e.bit(i as usize) {
                acc = acc.add(self);
            }
        }
        acc
    }
}

/// Fixed-base precomputation for the generator: `TABLE[w][d - 1]` holds
/// `(d · 16^w) · G` for windows `w ∈ 0..64` and digits `d ∈ 1..=15`, so a
/// generator multiply is at most 63 additions with **zero doublings** —
/// every transaction signature pays two generator multiplies (nonce point
/// + RFC-6979 retries), and fleets sign tens of thousands of them.
static G_TABLE: OnceLock<Vec<[Jacobian; 15]>> = OnceLock::new();

fn g_table() -> &'static [[Jacobian; 15]] {
    G_TABLE.get_or_init(|| {
        let mut table = Vec::with_capacity(64);
        let mut base = Jacobian::from_affine(&Affine::generator());
        for _ in 0..64 {
            let mut entries = [Jacobian::INFINITY; 15];
            let mut acc = base;
            for slot in entries.iter_mut() {
                *slot = acc;
                acc = acc.add(&base);
            }
            // After 15 additions acc = 16·base: the next window's unit.
            table.push(entries);
            base = acc;
        }
        table
    })
}

/// Multiplies the generator by `k` via the 4-bit fixed-base table. The
/// result is the same group element as [`g_mul_double_and_add`], so every
/// affine coordinate — and therefore every signature byte — is identical;
/// only the wall-clock cost changes (regression-pinned in the tests).
pub fn g_mul(k: &Scalar) -> Jacobian {
    let table = g_table();
    let e = k.to_u256();
    let mut acc = Jacobian::INFINITY;
    for (w, entries) in table.iter().enumerate() {
        let digit = ((e.0[w / 16] >> ((w % 16) * 4)) & 0xf) as usize;
        if digit != 0 {
            acc = acc.add(&entries[digit - 1]);
        }
    }
    acc
}

/// Multiplies the generator by `k` with plain left-to-right
/// double-and-add — the reference path the precomputed table is verified
/// against.
pub fn g_mul_double_and_add(k: &Scalar) -> Jacobian {
    Jacobian::from_affine(&Affine::generator()).scalar_mul_binary(k)
}

/// An ECDSA signature with recovery information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature {
    /// x-coordinate of the nonce point, mod n.
    pub r: U256,
    /// Low-normalized proof scalar.
    pub s: U256,
    /// Recovery id: bit 0 = parity of the (possibly negated) nonce point's y.
    pub recovery_id: u8,
}

/// Errors from ECDSA operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcdsaError {
    /// Private key is zero or ≥ n.
    InvalidPrivateKey,
    /// r or s outside [1, n-1].
    InvalidSignature,
    /// Recovery produced no valid point.
    RecoveryFailed,
}

impl core::fmt::Display for EcdsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let msg = match self {
            EcdsaError::InvalidPrivateKey => "invalid private key",
            EcdsaError::InvalidSignature => "invalid signature scalars",
            EcdsaError::RecoveryFailed => "public key recovery failed",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for EcdsaError {}

/// RFC-6979 deterministic nonce derivation (HMAC-SHA256 DRBG), with an
/// optional `extra` counter for the retry loop.
fn rfc6979_nonce(private_key: &U256, msg_hash: &[u8; 32], attempt: u32) -> Scalar {
    let x = private_key.to_be_bytes();
    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    let mut seed = Vec::with_capacity(97);
    seed.extend_from_slice(&v);
    seed.push(0x00);
    seed.extend_from_slice(&x);
    seed.extend_from_slice(msg_hash);
    if attempt > 0 {
        seed.extend_from_slice(&attempt.to_be_bytes());
    }
    k = hmac_sha256(&k, &seed);
    v = hmac_sha256(&k, &v);

    let mut seed2 = Vec::with_capacity(97);
    seed2.extend_from_slice(&v);
    seed2.push(0x01);
    seed2.extend_from_slice(&x);
    seed2.extend_from_slice(msg_hash);
    if attempt > 0 {
        seed2.extend_from_slice(&attempt.to_be_bytes());
    }
    k = hmac_sha256(&k, &seed2);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        let cand = U256::from_be_bytes(&v);
        if let Some(s) = Scalar::from_canonical(cand) {
            return s;
        }
        let mut retry = Vec::with_capacity(33);
        retry.extend_from_slice(&v);
        retry.push(0x00);
        k = hmac_sha256(&k, &retry);
        v = hmac_sha256(&k, &v);
    }
}

/// Derives the public key for a private scalar.
pub fn public_key(private_key: &U256) -> Result<Affine, EcdsaError> {
    let d = Scalar::from_canonical(*private_key).ok_or(EcdsaError::InvalidPrivateKey)?;
    Ok(g_mul(&d).to_affine())
}

/// Signs a 32-byte message hash, producing a low-`s` signature with a
/// recovery id. Deterministic: the same key and hash always yield the same
/// signature (RFC 6979).
pub fn sign(private_key: &U256, msg_hash: &[u8; 32]) -> Result<Signature, EcdsaError> {
    let _t = PhaseTimer::start(HotPhase::Sign);
    let d = Scalar::from_canonical(*private_key).ok_or(EcdsaError::InvalidPrivateKey)?;
    let z = Scalar::new(U256::from_be_bytes(msg_hash));
    for attempt in 0..128 {
        let k = rfc6979_nonce(private_key, msg_hash, attempt);
        let point = g_mul(&k).to_affine();
        let (rx, ry) = match point {
            Affine::Infinity => continue,
            Affine::Point { x, y } => (x, y),
        };
        // r = x(R) mod n. We reject the (astronomically rare) r ≥ n case
        // rather than carrying the extra recovery bit.
        if rx.to_u256() >= N {
            continue;
        }
        let r = match Scalar::from_canonical(rx.to_u256()) {
            Some(r) => r,
            None => continue,
        };
        let kinv = k.inv().expect("nonce is nonzero");
        let mut s = kinv.mul(z.add(r.mul(d)));
        if s.is_zero() {
            continue;
        }
        let mut rec_id = ry.is_odd() as u8;
        if s.is_high() {
            s = s.neg();
            rec_id ^= 1;
        }
        return Ok(Signature {
            r: r.to_u256(),
            s: s.to_u256(),
            recovery_id: rec_id,
        });
    }
    Err(EcdsaError::RecoveryFailed)
}

/// Verifies a signature against a public key. High-`s` signatures are
/// rejected (EIP-2 semantics).
pub fn verify(public_key: &Affine, msg_hash: &[u8; 32], sig: &Signature) -> bool {
    let (r, s) = match (Scalar::from_canonical(sig.r), Scalar::from_canonical(sig.s)) {
        (Some(r), Some(s)) => (r, s),
        _ => return false,
    };
    if s.is_high() {
        return false;
    }
    if !public_key.is_on_curve() || *public_key == Affine::Infinity {
        return false;
    }
    let z = Scalar::new(U256::from_be_bytes(msg_hash));
    let sinv = match s.inv() {
        Some(v) => v,
        None => return false,
    };
    let u1 = z.mul(sinv);
    let u2 = r.mul(sinv);
    let point = g_mul(&u1)
        .add(&Jacobian::from_affine(public_key).scalar_mul(&u2))
        .to_affine();
    match point {
        Affine::Infinity => false,
        Affine::Point { x, .. } => Scalar::new(x.to_u256()) == r,
    }
}

/// Recovers the signing public key from a signature (`ecrecover`).
pub fn recover(msg_hash: &[u8; 32], sig: &Signature) -> Result<Affine, EcdsaError> {
    let r = Scalar::from_canonical(sig.r).ok_or(EcdsaError::InvalidSignature)?;
    let s = Scalar::from_canonical(sig.s).ok_or(EcdsaError::InvalidSignature)?;
    if sig.recovery_id > 1 {
        return Err(EcdsaError::InvalidSignature);
    }
    let x = Fe::new(sig.r);
    let r_point = Affine::lift_x(x, sig.recovery_id & 1 == 1).ok_or(EcdsaError::RecoveryFailed)?;
    let z = Scalar::new(U256::from_be_bytes(msg_hash));
    let rinv = r.inv().ok_or(EcdsaError::InvalidSignature)?;
    // Q = r⁻¹(s·R − z·G) = (r⁻¹s)·R + (r⁻¹(−z))·G — folding the inverse
    // into the scalars costs one arbitrary-point multiply plus one
    // table-accelerated generator multiply, instead of two arbitrary-point
    // multiplies on top of the generator one.
    let u1 = rinv.mul(s);
    let u2 = rinv.mul(z.neg());
    let q = Jacobian::from_affine(&r_point)
        .scalar_mul(&u1)
        .add(&g_mul(&u2))
        .to_affine();
    if q == Affine::Infinity {
        return Err(EcdsaError::RecoveryFailed);
    }
    Ok(q)
}

/// Recovers the Ethereum sender address from a signature.
pub fn recover_address(msg_hash: &[u8; 32], sig: &Signature) -> Result<H160, EcdsaError> {
    recover(msg_hash, sig)?
        .to_eth_address()
        .ok_or(EcdsaError::RecoveryFailed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofl_primitives::hex::to_hex;

    fn fe_hex(s: &str) -> Fe {
        Fe::new(U256::from_hex_str(s).unwrap())
    }

    #[test]
    fn generator_on_curve() {
        assert!(Affine::generator().is_on_curve());
    }

    #[test]
    fn two_g_known_value() {
        let g2 = Jacobian::from_affine(&Affine::generator())
            .double()
            .to_affine();
        match g2 {
            Affine::Point { x, y } => {
                assert_eq!(
                    x,
                    fe_hex("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5")
                );
                assert_eq!(
                    y,
                    fe_hex("1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a")
                );
            }
            _ => panic!("2G is finite"),
        }
        assert!(g2.is_on_curve());
    }

    #[test]
    fn scalar_mul_matches_repeated_add() {
        let g = Jacobian::from_affine(&Affine::generator());
        let mut acc = Jacobian::INFINITY;
        for k in 1..=20u64 {
            acc = acc.add(&g);
            let direct = g.scalar_mul(&Scalar::new(U256::from_u64(k)));
            assert_eq!(acc.to_affine(), direct.to_affine(), "k={k}");
        }
    }

    #[test]
    fn fixed_base_table_matches_double_and_add() {
        // Small scalars, structured scalars (one digit per window
        // boundary), and group-order edge cases.
        let mut scalars = vec![
            U256::ONE,
            U256::from_u64(2),
            U256::from_u64(15),
            U256::from_u64(16),
            U256::from_u64(0xdeadbeef),
            U256::from_hex_str("4c0883a69102937d6231471b5dbb6204fe512961708279feb1be6ae5538da033")
                .unwrap(),
            N.wrapping_sub(&U256::ONE),
        ];
        for w in [1u32, 15, 16, 31, 32, 63] {
            scalars.push(U256::ONE.shl(w * 4));
        }
        for v in scalars {
            let k = Scalar::new(v);
            assert_eq!(
                g_mul(&k).to_affine(),
                g_mul_double_and_add(&k).to_affine(),
                "k={v:?}"
            );
        }
    }

    #[test]
    fn precomputed_signatures_are_byte_identical_to_double_and_add() {
        // The table changes the cost of g·k, never its value: recompute
        // each signature with the reference scalar-mul path inlined and
        // compare every byte.
        for i in 1..16u64 {
            let key = U256::from_u64(i * 7919 + 13);
            let h = keccak256(&i.to_be_bytes());
            let fast = sign(&key, &h).unwrap();
            // Reference signature via double-and-add, same RFC-6979 nonce.
            let d = Scalar::from_canonical(key).unwrap();
            let z = Scalar::new(U256::from_be_bytes(&h));
            let k = rfc6979_nonce(&key, &h, 0);
            let (rx, ry) = match g_mul_double_and_add(&k).to_affine() {
                Affine::Point { x, y } => (x, y),
                Affine::Infinity => panic!("nonce point is finite"),
            };
            let r = Scalar::from_canonical(rx.to_u256()).unwrap();
            let mut s = k.inv().unwrap().mul(z.add(r.mul(d)));
            let mut rec_id = ry.is_odd() as u8;
            if s.is_high() {
                s = s.neg();
                rec_id ^= 1;
            }
            assert_eq!(fast.r.to_be_bytes(), r.to_u256().to_be_bytes(), "i={i}");
            assert_eq!(fast.s.to_be_bytes(), s.to_u256().to_be_bytes(), "i={i}");
            assert_eq!(fast.recovery_id, rec_id, "i={i}");
        }
    }

    #[test]
    fn windowed_scalar_mul_matches_double_and_add() {
        // An arbitrary point (7·G) against edge scalars: tiny, nibble
        // boundaries, and order-adjacent values.
        let p = g_mul(&Scalar::new(U256::from_u64(7)));
        let mut scalars = vec![
            U256::ZERO,
            U256::ONE,
            U256::from_u64(15),
            U256::from_u64(16),
            U256::from_u64(0xdeadbeef),
            U256::from_hex_str("4c0883a69102937d6231471b5dbb6204fe512961708279feb1be6ae5538da033")
                .unwrap(),
            N.wrapping_sub(&U256::ONE),
        ];
        for w in [1u32, 15, 16, 31, 32, 63] {
            scalars.push(U256::ONE.shl(w * 4));
        }
        for v in scalars {
            let k = Scalar::new(v);
            assert_eq!(
                p.scalar_mul(&k).to_affine(),
                p.scalar_mul_binary(&k).to_affine(),
                "k={v:?}"
            );
        }
    }

    #[test]
    fn scalar_folding_reduction_matches_long_division() {
        // reduce_n against the generic div_rem reduction over products of
        // order-adjacent and structured operands.
        let values = [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(0xffff_ffff),
            N.wrapping_sub(&U256::ONE),
            N.wrapping_add(&U256::ONE), // wraps mod 2^256: exercises Scalar::new too
            U256::MAX,
            U256::from_hex_str("8000000000000000000000000000000000000000000000000000000000000001")
                .unwrap(),
        ];
        for a in values {
            assert_eq!(Scalar::new(a).to_u256(), a.div_rem(&N).1, "new a={a:?}");
            for b in values {
                let fast = Scalar::new(a).mul(Scalar::new(b)).to_u256();
                let slow = a.div_rem(&N).1.mul_mod(&b.div_rem(&N).1, &N);
                assert_eq!(fast, slow, "a={a:?} b={b:?}");
            }
        }
        // Addition overflow fold: (n-1) + (n-1) ≡ n-2.
        let nm1 = Scalar::new(N.wrapping_sub(&U256::ONE));
        assert_eq!(nm1.add(nm1).to_u256(), N.wrapping_sub(&U256::from_u64(2)));
        // Fermat inverse over the folding multiply agrees with the generic
        // path and satisfies the inverse law.
        for v in [
            U256::from_u64(2),
            U256::from_u64(0xdead),
            N.wrapping_sub(&U256::ONE),
        ] {
            let s = Scalar::new(v);
            let inv = s.inv().unwrap();
            assert_eq!(inv.to_u256(), v.inv_mod_prime(&N).unwrap());
            assert_eq!(s.mul(inv).to_u256(), U256::ONE);
        }
    }

    #[test]
    fn n_times_g_is_infinity() {
        // (n-1)G + G = O
        let n_minus_1 = Scalar::new(N.wrapping_sub(&U256::ONE));
        let p = g_mul(&n_minus_1);
        let sum = p.add(&Jacobian::from_affine(&Affine::generator()));
        assert!(sum.to_affine() == Affine::Infinity);
    }

    #[test]
    fn pubkey_of_one_is_g() {
        let pk = public_key(&U256::ONE).unwrap();
        assert_eq!(pk, Affine::generator());
    }

    #[test]
    fn known_eth_address_for_key_one() {
        // Widely known: privkey 0x...01 → address 0x7E5F4552091A69125d5DfCb7b8C2659029395Bdf
        let addr = public_key(&U256::ONE).unwrap().to_eth_address().unwrap();
        assert_eq!(
            addr.to_checksum(),
            "0x7E5F4552091A69125d5DfCb7b8C2659029395Bdf"
        );
    }

    #[test]
    fn rfc6979_satoshi_vector() {
        // Classic secp256k1+SHA-256 RFC6979 vector: d=1, msg="Satoshi Nakamoto".
        let msg_hash = ofl_primitives::sha256(b"Satoshi Nakamoto");
        let sig = sign(&U256::ONE, &msg_hash).unwrap();
        assert_eq!(
            to_hex(&sig.r.to_be_bytes()),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8"
        );
        assert_eq!(
            to_hex(&sig.s.to_be_bytes()),
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5"
        );
    }

    #[test]
    fn sign_verify_roundtrip() {
        let keys = [
            U256::from_u64(0xdeadbeef),
            U256::from_hex_str("4c0883a69102937d6231471b5dbb6204fe512961708279feb1be6ae5538da033")
                .unwrap(),
            N.wrapping_sub(&U256::ONE), // largest valid key
        ];
        for key in keys {
            let pk = public_key(&key).unwrap();
            for msg in [&b"hello"[..], b"", b"another message"] {
                let h = keccak256(msg);
                let sig = sign(&key, &h).unwrap();
                assert!(verify(&pk, &h, &sig));
                // Perturbed hash fails.
                let mut h2 = h;
                h2[0] ^= 1;
                assert!(!verify(&pk, &h2, &sig));
            }
        }
    }

    #[test]
    fn signatures_are_low_s() {
        for i in 1..20u64 {
            let key = U256::from_u64(i * 7 + 1);
            let h = keccak256(&i.to_be_bytes());
            let sig = sign(&key, &h).unwrap();
            assert!(!Scalar::from_canonical(sig.s).unwrap().is_high());
        }
    }

    #[test]
    fn high_s_rejected_by_verify() {
        let key = U256::from_u64(42);
        let pk = public_key(&key).unwrap();
        let h = keccak256(b"malleability");
        let sig = sign(&key, &h).unwrap();
        // Flip to the high-s twin: s' = n - s, still algebraically valid.
        let high = Signature {
            r: sig.r,
            s: N.wrapping_sub(&sig.s),
            recovery_id: sig.recovery_id ^ 1,
        };
        assert!(!verify(&pk, &h, &high));
    }

    #[test]
    fn recovery_roundtrip() {
        for i in 1..10u64 {
            let key = U256::from_u64(i * 1000 + 3);
            let expect = public_key(&key).unwrap();
            let h = keccak256(&i.to_le_bytes());
            let sig = sign(&key, &h).unwrap();
            let got = recover(&h, &sig).unwrap();
            assert_eq!(got, expect, "i={i}");
            assert_eq!(
                recover_address(&h, &sig).unwrap(),
                expect.to_eth_address().unwrap()
            );
        }
    }

    #[test]
    fn recover_rejects_garbage() {
        let h = keccak256(b"x");
        assert!(recover(
            &h,
            &Signature {
                r: U256::ZERO,
                s: U256::ONE,
                recovery_id: 0
            }
        )
        .is_err());
        assert!(recover(
            &h,
            &Signature {
                r: N,
                s: U256::ONE,
                recovery_id: 0
            }
        )
        .is_err());
        assert!(recover(
            &h,
            &Signature {
                r: U256::ONE,
                s: U256::ONE,
                recovery_id: 5
            }
        )
        .is_err());
    }

    #[test]
    fn invalid_private_keys_rejected() {
        assert_eq!(public_key(&U256::ZERO), Err(EcdsaError::InvalidPrivateKey));
        assert_eq!(public_key(&N), Err(EcdsaError::InvalidPrivateKey));
        assert!(public_key(&N.wrapping_sub(&U256::ONE)).is_ok());
    }

    #[test]
    fn field_sqrt() {
        // 4 has root 2 (or p-2).
        let four = Fe::new(U256::from_u64(4));
        let r = four.sqrt().unwrap();
        assert!(r == Fe::new(U256::from_u64(2)) || r == Fe::new(U256::from_u64(2)).neg());
        // 5 is a known non-residue mod p? Verify via Euler criterion instead of
        // assuming: a^((p-1)/2) == p-1 for non-residues.
        let exp = P.wrapping_sub(&U256::ONE).shr(1);
        let five = Fe::new(U256::from_u64(5));
        let euler = five.pow(&exp);
        if euler == Fe::ONE {
            assert!(five.sqrt().is_some());
        } else {
            assert!(five.sqrt().is_none());
        }
    }

    #[test]
    fn field_inverse_law() {
        for i in 1..50u64 {
            let a = Fe::new(U256::from_u64(i * 977 + 5));
            assert_eq!(a.mul(a.inv().unwrap()), Fe::ONE);
        }
    }

    #[test]
    fn reduce_p_extremes() {
        // (p-1)² mod p = 1
        let pm1 = Fe::new(P.wrapping_sub(&U256::ONE));
        assert_eq!(pm1.square(), Fe::ONE);
        // MAX * MAX reduces consistently with the generic path.
        let m = Fe::new(U256::MAX); // reduces to 2^256-1-p
        let fast = m.square().to_u256();
        let slow = m.to_u256().mul_mod(&m.to_u256(), &P);
        assert_eq!(fast, slow);
    }
}
