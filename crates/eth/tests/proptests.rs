//! Property-based tests over the blockchain substrate: transaction codec
//! laws, ABI roundtrips, EVM arithmetic vs reference semantics, and ECDSA
//! sign/verify/recover for arbitrary keys and messages.

use ofl_eth::abi::{self, Type, Value};
use ofl_eth::secp256k1::{self, N};
use ofl_eth::tx::{sign_tx, SignedTx, TxRequest};
use ofl_primitives::u256::U256;
use ofl_primitives::{keccak256, H160};
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    proptest::array::uniform4(any::<u64>()).prop_map(U256)
}

fn arb_address() -> impl Strategy<Value = H160> {
    proptest::array::uniform20(any::<u8>()).prop_map(H160::from_bytes)
}

fn arb_private_key() -> impl Strategy<Value = U256> {
    // Almost any 256-bit value is a valid key; filter the measure-zero rest.
    arb_u256().prop_filter("in [1, n-1]", |k| !k.is_zero() && *k < N)
}

fn arb_tx_request() -> impl Strategy<Value = TxRequest> {
    (
        1u64..1u64 << 40,
        any::<u64>(),
        arb_u256(),
        arb_u256(),
        21_000u64..30_000_000,
        proptest::option::of(arb_address()),
        arb_u256(),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(
            |(chain_id, nonce, tip, fee, gas_limit, to, value, data)| TxRequest {
                chain_id,
                nonce,
                max_priority_fee_per_gas: tip,
                max_fee_per_gas: fee,
                gas_limit,
                to,
                value,
                data,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tx_sign_encode_decode_recover_roundtrip(
        req in arb_tx_request(),
        key in arb_private_key(),
    ) {
        let expected_sender = secp256k1::public_key(&key)
            .unwrap()
            .to_eth_address()
            .unwrap();
        let tx = sign_tx(req, &key).unwrap();
        let raw = tx.encode();
        let decoded = SignedTx::decode(&raw).unwrap();
        prop_assert_eq!(&decoded, &tx);
        prop_assert_eq!(decoded.recover_sender().unwrap(), expected_sender);
        prop_assert_eq!(decoded.hash(), tx.hash());
    }

    #[test]
    fn ecdsa_sign_verify_recover(
        key in arb_private_key(),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let hash = keccak256(&msg);
        let pk = secp256k1::public_key(&key).unwrap();
        let sig = secp256k1::sign(&key, &hash).unwrap();
        prop_assert!(secp256k1::verify(&pk, &hash, &sig));
        prop_assert_eq!(secp256k1::recover(&hash, &sig).unwrap(), pk);
        // Signature is deterministic (RFC 6979).
        let sig2 = secp256k1::sign(&key, &hash).unwrap();
        prop_assert_eq!(sig, sig2);
    }

    #[test]
    fn ecdsa_rejects_wrong_message(
        key in arb_private_key(),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
        flip in 0usize..32,
    ) {
        let hash = keccak256(&msg);
        let pk = secp256k1::public_key(&key).unwrap();
        let sig = secp256k1::sign(&key, &hash).unwrap();
        let mut other = hash;
        other[flip % 32] ^= 0x01;
        prop_assert!(!secp256k1::verify(&pk, &other, &sig));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn abi_uint_roundtrip(v in arb_u256()) {
        let enc = abi::encode(&[Value::Uint(v)]);
        let dec = abi::decode(&[Type::Uint], &enc).unwrap();
        prop_assert_eq!(dec[0].as_uint().unwrap(), v);
    }

    #[test]
    fn abi_mixed_tuple_roundtrip(
        v in arb_u256(),
        addr in arb_address(),
        flag in any::<bool>(),
        s in "[a-zA-Z0-9]{0,80}",
        b in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let vals = vec![
            Value::Uint(v),
            Value::String(s.clone()),
            Value::Address(addr),
            Value::Bytes(b.clone()),
            Value::Bool(flag),
        ];
        let enc = abi::encode(&vals);
        let dec = abi::decode(
            &[Type::Uint, Type::String, Type::Address, Type::Bytes, Type::Bool],
            &enc,
        ).unwrap();
        prop_assert_eq!(dec, vals);
    }

    #[test]
    fn selector_is_prefix_of_topic(sig in "[a-z]{1,12}\\((uint256|string|address)?\\)") {
        let sel = abi::selector(&sig);
        let topic = abi::event_topic(&sig);
        prop_assert_eq!(&sel[..], &topic[..4]);
    }
}

/// EVM arithmetic opcodes agree with U256 reference semantics for arbitrary
/// operands pushed as immediates.
mod evm_semantics {
    use super::*;
    use ofl_eth::evm::{Env, Host, Interpreter};
    use ofl_primitives::H256;
    use std::collections::HashMap;

    #[derive(Default)]
    struct NullHost(HashMap<(H160, H256), U256>);

    impl Host for NullHost {
        fn sload(&self, a: &H160, k: &H256) -> U256 {
            self.0.get(&(*a, *k)).copied().unwrap_or(U256::ZERO)
        }
        fn sstore(&mut self, a: &H160, k: &H256, v: U256) {
            self.0.insert((*a, *k), v);
        }
        fn balance(&self, _: &H160) -> U256 {
            U256::ZERO
        }
    }

    fn run_binop(op: u8, a: U256, b: U256) -> U256 {
        // PUSH32 b, PUSH32 a, OP, MSTORE, RETURN — stack top is `a`.
        let mut code = vec![0x7f];
        code.extend(b.to_be_bytes());
        code.push(0x7f);
        code.extend(a.to_be_bytes());
        code.push(op);
        code.extend([0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3]);
        let env = Env {
            address: H160::ZERO,
            caller: H160::ZERO,
            origin: H160::ZERO,
            call_value: U256::ZERO,
            calldata: vec![],
            gas_price: U256::ZERO,
            block_number: 0,
            timestamp: 0,
            gas_limit: 30_000_000,
            chain_id: 1,
            base_fee: U256::ZERO,
        };
        let mut host = NullHost::default();
        let result = Interpreter::new(&mut host, env, code, 1_000_000).run();
        assert!(result.is_success(), "{:?}", result.outcome);
        U256::from_be_slice(&result.output)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn add_matches_reference(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(run_binop(0x01, a, b), a.wrapping_add(&b));
        }

        #[test]
        fn mul_matches_reference(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(run_binop(0x02, a, b), a.wrapping_mul(&b));
        }

        #[test]
        fn sub_matches_reference(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(run_binop(0x03, a, b), a.wrapping_sub(&b));
        }

        #[test]
        fn div_mod_match_reference(a in arb_u256(), b in arb_u256()) {
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(run_binop(0x04, a, b), q);
            prop_assert_eq!(run_binop(0x06, a, b), r);
        }

        #[test]
        fn comparison_matches_reference(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(run_binop(0x10, a, b), U256::from((a < b) as u64));
            prop_assert_eq!(run_binop(0x11, a, b), U256::from((a > b) as u64));
            prop_assert_eq!(run_binop(0x14, a, b), U256::from((a == b) as u64));
        }

        #[test]
        fn bitwise_matches_reference(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(run_binop(0x16, a, b), a & b);
            prop_assert_eq!(run_binop(0x17, a, b), a | b);
            prop_assert_eq!(run_binop(0x18, a, b), a ^ b);
        }

        #[test]
        fn shifts_match_reference(a in arb_u256(), s in 0u64..512) {
            // SHL/SHR pop shift from the top.
            let shift = U256::from(s);
            let expect_shl = if s < 256 { a.shl(s as u32) } else { U256::ZERO };
            let expect_shr = if s < 256 { a.shr(s as u32) } else { U256::ZERO };
            prop_assert_eq!(run_binop(0x1b, shift, a), expect_shl);
            prop_assert_eq!(run_binop(0x1c, shift, a), expect_shr);
        }
    }
}
